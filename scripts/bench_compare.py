#!/usr/bin/env python3
"""Perf-regression harness: run a named bench set, write ``BENCH_PR<N>.json``,
and fail on regressions against the previous ``BENCH_*.json``.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/bench_compare.py                  # default set
    PYTHONPATH=src python scripts/bench_compare.py --set kernel
    PYTHONPATH=src python scripts/bench_compare.py --output BENCH_PR4.json
    PYTHONPATH=src python scripts/bench_compare.py --baseline none  # measure only

Bench sets:

``kernel``
    the :mod:`benchmarks.bench_kernel` micro-benchmarks (``binary_operation``,
    ``restrict``, ``reduce`` at several qubit sizes);
``grover``
    Table 2 style end-to-end verification of Grover-Sing in hybrid and
    composition modes (the rows the PR-3 speedup target is judged on);
``campaign``
    one uncached hybrid-mode bug-hunting campaign row (10 mutants);
``store``
    the cross-process automaton store: the same campaign against a cold store
    (publish overhead included) and against a warm store with every
    per-process cache cleared (the fresh-worker / second-run case);
``service``
    the verification daemon: the same verify queries against a warm
    ``repro serve`` instance (HTTP round trips on a primed runtime) vs one
    cold ``python -m repro.cli`` subprocess per query;
``fabric``
    the distributed campaign fabric: one planned matrix sweep drained by
    1 / 2 / 4 real ``campaign --join`` worker subprocesses, with a cold
    per-joiner store and with a warm shared remote store behind a serve
    daemon; the 2-joiner row must beat the 1-joiner row by at least
    :data:`FABRIC_MIN_SCALING` or the run fails;
``default``
    all of the above; ``smoke`` is a fast subset for CI.

Every workload is timed best-of-``repeat`` with per-process kernel caches
cleared by its setup, so numbers are comparable across kernels.  The previous
baseline is auto-discovered as the ``BENCH_PR<M>.json`` with the largest
``M`` below the output's own number (override with ``--baseline``); rows
slower than ``baseline * (1 + threshold)`` fail the run with exit code 1.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import re
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

SCHEMA_VERSION = 1
_PR_PATTERN = re.compile(r"BENCH_PR(\d+)\.json$")

#: minimum throughput gain 2 fabric joiners must show over 1 — anything less
#: means the lease queue's coordination overhead is eating the parallelism
FABRIC_MIN_SCALING = 1.6

#: workload name -> (repeat, setup, run); run(setup()) is the timed call
Workload = Tuple[int, Callable[[], object], Callable[[object], object]]


def _verify_workload(family: str, size: int, mode: str) -> Workload:
    from bench_kernel import clear_kernel_caches

    from repro.benchgen import build_family
    from repro.core import verify_triple

    def setup():
        bench = build_family(family, size)
        clear_kernel_caches()
        return bench

    def run(bench):
        result = verify_triple(
            bench.precondition, bench.circuit, bench.postcondition, mode=mode
        )
        if not result.holds:
            raise AssertionError(f"{bench.name} ({mode}) must hold during benchmarking")
        return result

    return (2, setup, run)


def _campaign_workload(family: str, mode: str, mutants: int) -> Workload:
    from bench_kernel import clear_kernel_caches

    from repro.campaign import CampaignConfig, run_campaign

    def setup():
        clear_kernel_caches()
        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".jsonl", prefix="bench_campaign_", delete=False
        )
        handle.close()
        return CampaignConfig(
            family=family,
            mutants=mutants,
            mutation_kinds=("insert", "remove", "swap-operands"),
            mode=mode,
            workers=1,
            report_path=handle.name,
            cache_dir="",  # a cache hit would time dict lookups, not the kernel
        )

    def run(config):
        try:
            summary = run_campaign(config)
            if summary.errors:
                raise AssertionError(f"campaign benchmark had {summary.errors} error(s)")
            return summary
        finally:
            if os.path.exists(config.report_path):
                os.unlink(config.report_path)

    return (1, setup, run)


def _store_campaign_workload(family: str, mode: str, mutants: int, warm: bool) -> Workload:
    """Campaign against the cross-process automaton store, cold or warm.

    Cold: empty store, so the run pays fingerprinting + publish I/O on top of
    the verification work.  Warm: the store is pre-populated by an identical
    run, then every per-process cache is cleared — the measured run is the
    "fresh worker process / second campaign" case and should be store-bound.
    """
    import shutil

    from bench_kernel import clear_kernel_caches

    from repro.campaign import CampaignConfig, run_campaign

    def make_config(scratch: str) -> "CampaignConfig":
        return CampaignConfig(
            family=family,
            mutants=mutants,
            mutation_kinds=("insert", "remove", "swap-operands"),
            mode=mode,
            workers=1,
            report_path=os.path.join(scratch, "report.jsonl"),
            cache_dir="",  # verdict-cache hits would bypass the store entirely
            store_dir=os.path.join(scratch, "store"),
        )

    def setup():
        scratch = tempfile.mkdtemp(prefix="bench_store_")
        clear_kernel_caches()
        if warm:
            run_campaign(make_config(scratch))  # populate the store ...
            clear_kernel_caches()  # ... then forget everything in-process
        return make_config(scratch)

    def run(config):
        scratch = os.path.dirname(config.report_path)
        try:
            summary = run_campaign(config)
            if summary.errors:
                raise AssertionError(f"store benchmark had {summary.errors} error(s)")
            if warm and not summary.store_hits:
                raise AssertionError("warm-store benchmark had no store hits")
            if not warm and not summary.store_publishes:
                raise AssertionError("cold-store benchmark published nothing")
            return summary
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    return (2 if warm else 1, setup, run)


def _service_workload(warm: bool, queries: int = 5) -> Workload:
    """The same verify queries against a warm daemon vs a cold CLI process.

    Warm: a ``ServiceServer`` is booted (and primed with one identical
    request) in setup, so the timed region is ``queries`` HTTP round trips
    answered from the shared gate memo.  Cold: each query is a fresh
    ``python -m repro.cli`` subprocess — interpreter start-up, imports, and
    an empty cache hierarchy every time, i.e. the workflow the daemon
    replaces.  The warm row should beat the cold row by a wide margin.
    """
    import subprocess

    family, size = "bv", 10

    if warm:

        def setup():
            from repro.api import CircuitSource, SessionConfig, VerifyProblem
            from repro.api.client import ServiceClient
            from repro.service import ServiceConfig, ServiceServer

            server = ServiceServer(ServiceConfig(
                port=0, session=SessionConfig(cache_dir="", store_dir="")
            )).start()
            client = ServiceClient(server.url)
            problem = VerifyProblem(circuit=CircuitSource.from_family(family, size))
            client.run(problem)  # prime the warm runtime
            return server, client, problem

        def run(state):
            server, client, problem = state
            try:
                for _ in range(queries):
                    if not client.run(problem).holds:
                        raise AssertionError("service verify unexpectedly failed")
            finally:
                server.stop()

        return (3, setup, run)

    def setup():
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        env.pop("AUTOQ_REPRO_SERVER", None)  # a cold run must not find a daemon
        return env

    def run(env):
        for _ in range(queries):
            outcome = subprocess.run(
                [sys.executable, "-m", "repro.cli", "verify",
                 "--family", family, "--size", str(size)],
                capture_output=True, env=env, cwd=REPO_ROOT,
            )
            if outcome.returncode != 0:
                raise AssertionError(outcome.stderr.decode("utf-8", "replace"))

    return (1, setup, run)


def _fabric_workload(joiners: int, store: str = "cold") -> Workload:
    """Drain one planned matrix sweep with N ``campaign --join`` subprocesses.

    The timed region is the joiner fan-out: N real worker subprocesses attach
    to the planned campaign's lease queue (``docs/distributed.md``) and drain
    it concurrently; the run is over when the last joiner exits with every
    cell completed.  Every verification job carries a deterministic injected
    delay (the fault framework's ``delay`` kind), giving each cell a fixed
    latency floor — the rows measure the *fabric's* ability to overlap cells
    and the coordination overhead of claiming/completing them, not raw CPU
    parallelism, so the scaling floor holds on single-core CI runners too.
    ``store`` picks the store tier the joiners use — ``"cold"`` gives every
    joiner its own empty local store (publish overhead included),
    ``"remote-warm"`` boots a serve daemon whose HTTP store was populated by
    an identical sweep, so joiners fetch shared verified prefixes instead of
    recomputing them.
    """
    import shutil
    import subprocess

    family, sizes, mutants = "bv", "4-11", 2
    job_delay = {"seed": 0, "sites": {"worker.cell": {
        "kind": "delay", "rate": 1.0, "delay_seconds": 0.35}}}

    def scheduler(scratch: str, campaign_id: str, store_dir=None):
        from repro.campaign import MatrixScheduler, MatrixSpec

        return MatrixScheduler(
            MatrixSpec.from_mapping(
                {"families": [family], "sizes": sizes, "mutants": mutants}
            ),
            workers=1,
            report_dir=os.path.join(scratch, "reports", campaign_id),
            manifest_dir=os.path.join(scratch, "manifests"),
            cache_dir=os.path.join(scratch, "cache", campaign_id),
            campaign_id=campaign_id,
            store_dir=store_dir,
        )

    def setup():
        scratch = tempfile.mkdtemp(prefix="bench_fabric_")
        state = {"scratch": scratch, "server": None, "store_dir": None}
        if store == "remote-warm":
            from repro.api import SessionConfig
            from repro.service import ServiceConfig, ServiceServer

            server = ServiceServer(ServiceConfig(port=0, session=SessionConfig(
                cache_dir="", store_dir=os.path.join(scratch, "shared_store"),
            ))).start()
            state["server"] = server
            state["store_dir"] = server.url
            # populate the shared remote store with one identical sweep; the
            # timed joiners get fresh verdict caches, so every hit they score
            # is a store fetch, not a cached verdict
            scheduler(scratch, "warm", store_dir=server.url).run()
        planner = scheduler(scratch, "fabric", store_dir=state["store_dir"])
        planner.plan()
        state["cells"] = len(planner.spec.cells())
        from repro.dist import RESULT_DIR, queue_dir_for

        state["result_dir"] = os.path.join(
            queue_dir_for(planner.manifest_dir, "fabric"), RESULT_DIR)
        return state

    def run(state):
        scratch = state["scratch"]
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        env.pop("AUTOQ_REPRO_SERVER", None)
        try:
            workers = []
            for index in range(joiners):
                argv = [sys.executable, "-m", "repro.cli", "campaign",
                        "--join", "fabric", "--json", "--workers", "1",
                        "--faults", json.dumps(job_delay),
                        "--manifest-dir", os.path.join(scratch, "manifests"),
                        "--cache-dir", os.path.join(scratch, "cache", f"j{index}"),
                        "--report-dir", os.path.join(scratch, "reports", f"j{index}")]
                if state["store_dir"] is not None:
                    argv += ["--store-dir", state["store_dir"]]
                workers.append(subprocess.Popen(
                    argv, env=env, stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE, text=True))
            for worker in workers:
                _stdout, stderr = worker.communicate(timeout=600)
                if worker.returncode != 0:
                    raise AssertionError(
                        f"fabric joiner exited {worker.returncode}: {stderr[:500]}")
            done = len(os.listdir(state["result_dir"]))
            if done != state["cells"]:
                raise AssertionError(
                    f"queue not drained: {done} of {state['cells']} cells done")
        finally:
            if state["server"] is not None:
                state["server"].stop()
            shutil.rmtree(scratch, ignore_errors=True)

    return (1, setup, run)


def build_bench_set(name: str) -> Dict[str, Workload]:
    """Materialise a named bench set (imports repro lazily so ``--list`` is free)."""
    from bench_kernel import KERNEL_WORKLOADS

    kernel = {
        workload: (3, setup, run)
        for workload, (setup, run) in sorted(KERNEL_WORKLOADS.items())
    }
    grover = {
        f"table2/grover-single/n{size}/hybrid": _verify_workload("grover", size, "hybrid")
        for size in (3, 4, 5)
    }
    grover.update(
        {
            f"table2/grover-single/n{size}/composition": _verify_workload(
                "grover", size, "composition"
            )
            for size in (2, 3)
        }
    )
    campaign = {"campaign/grover/hybrid/m10": _campaign_workload("grover", "hybrid", 10)}
    store = {
        "campaign/grover/hybrid/m10/store-cold": _store_campaign_workload(
            "grover", "hybrid", 10, warm=False
        ),
        "campaign/grover/hybrid/m10/store-warm": _store_campaign_workload(
            "grover", "hybrid", 10, warm=True
        ),
    }
    service = {
        "service/verify-bv10-x5/warm-daemon": _service_workload(warm=True),
        "service/verify-bv10-x5/cold-cli": _service_workload(warm=False),
    }
    fabric = {
        "fabric/bv4-11/m2/joiners-1": _fabric_workload(1),
        "fabric/bv4-11/m2/joiners-2": _fabric_workload(2),
        "fabric/bv4-11/m2/joiners-4": _fabric_workload(4),
        "fabric/bv4-11/m2/joiners-2/store-remote-warm": _fabric_workload(
            2, store="remote-warm"
        ),
    }
    smoke = {
        key: value
        for key, value in {**kernel, **grover}.items()
        if key.endswith("/n5") or key == "table2/grover-single/n3/hybrid"
    }
    sets = {
        "kernel": kernel,
        "grover": grover,
        "campaign": campaign,
        "store": store,
        "service": service,
        "fabric": fabric,
        "smoke": smoke,
        "default": {**kernel, **grover, **campaign, **store, **service, **fabric},
    }
    if name not in sets:
        raise SystemExit(f"unknown bench set {name!r}; expected one of {sorted(sets)}")
    return sets[name]


def run_bench_set(workloads: Dict[str, Workload], quiet: bool = False) -> Dict[str, Dict]:
    results: Dict[str, Dict] = {}
    for name, (repeat, setup, run) in workloads.items():
        samples: List[float] = []
        for _ in range(repeat):
            state = setup()
            start = time.perf_counter()
            run(state)
            samples.append(time.perf_counter() - start)
        results[name] = {
            "seconds": min(samples),
            "repeat": repeat,
            "samples": [round(sample, 6) for sample in samples],
        }
        if not quiet:
            print(f"  {name:<44} {min(samples):9.4f}s  (best of {repeat})")
    return results


# --------------------------------------------------------------- baselines
def _pr_number(path: str) -> Optional[int]:
    match = _PR_PATTERN.search(os.path.basename(path))
    return int(match.group(1)) if match else None


def discover_baseline(output_path: str) -> Optional[str]:
    """The committed ``BENCH_PR<M>.json`` with the largest ``M`` below ours."""
    own_number = _pr_number(output_path)
    candidates = []
    for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json")):
        if os.path.abspath(path) == os.path.abspath(output_path):
            continue
        number = _pr_number(path)
        if number is None:
            continue
        if own_number is None or number < own_number:
            candidates.append((number, path))
    if not candidates:
        return None
    return max(candidates)[1]


def compare_to_baseline(
    results: Dict[str, Dict], baseline_path: str, threshold: float
) -> Tuple[Dict[str, Dict], List[str]]:
    """Per-row speedups vs. the baseline file and the list of regressions."""
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    baseline_results = baseline.get("results", {})
    rows: Dict[str, Dict] = {}
    regressions: List[str] = []
    for name, entry in results.items():
        base = baseline_results.get(name)
        if base is None:
            continue
        base_seconds = float(base["seconds"])
        seconds = float(entry["seconds"])
        speedup = base_seconds / seconds if seconds > 0 else float("inf")
        rows[name] = {
            "baseline_seconds": base_seconds,
            "seconds": seconds,
            "speedup": round(speedup, 3),
        }
        if seconds > base_seconds * (1.0 + threshold):
            regressions.append(
                f"{name}: {seconds:.4f}s vs baseline {base_seconds:.4f}s "
                f"({seconds / base_seconds:.2f}x slower, threshold {1 + threshold:.2f}x)"
            )
    return rows, regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--set", dest="bench_set", default="default",
                        help="bench set to run (kernel, grover, campaign, store, "
                             "service, fabric, smoke, default)")
    parser.add_argument("--output", default="BENCH_PR4.json",
                        help="result file, written at the repository root")
    parser.add_argument("--baseline", default="auto",
                        help="previous BENCH_*.json to compare against, 'auto' to "
                             "discover it, or 'none' to only measure")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional slowdown that counts as a regression (0.10 = 10%%)")
    parser.add_argument("--list", action="store_true", help="list workloads and exit")
    args = parser.parse_args(argv)

    workloads = build_bench_set(args.bench_set)
    if args.list:
        for name in workloads:
            print(name)
        return 0

    output_path = args.output
    if not os.path.isabs(output_path):
        output_path = os.path.join(REPO_ROOT, output_path)

    print(f"bench set {args.bench_set!r}: {len(workloads)} workload(s)")
    results = run_bench_set(workloads)

    payload = {
        "schema": SCHEMA_VERSION,
        "label": os.path.splitext(os.path.basename(output_path))[0],
        "set": args.bench_set,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
    }

    exit_code = 0
    solo = results.get("fabric/bv4-11/m2/joiners-1")
    duo = results.get("fabric/bv4-11/m2/joiners-2")
    if solo and duo:
        scaling = round(float(solo["seconds"]) / float(duo["seconds"]), 3)
        payload["fabric_scaling_n2"] = scaling
        print(f"\nfabric scaling: {scaling:.2f}x "
              f"(2 joiners vs 1, floor {FABRIC_MIN_SCALING:.1f}x)")
        if scaling < FABRIC_MIN_SCALING:
            print(f"REGRESSION: fabric 2-joiner scaling {scaling:.2f}x is below "
                  f"the {FABRIC_MIN_SCALING:.1f}x floor", file=sys.stderr)
            exit_code = 1

    if args.baseline == "none":
        baseline_path = None
    elif args.baseline == "auto":
        baseline_path = discover_baseline(output_path)
        if baseline_path is None:
            print("no previous BENCH_*.json found; writing a fresh baseline")
    else:
        baseline_path = args.baseline
        if not os.path.exists(baseline_path):
            print(f"error: baseline {baseline_path!r} does not exist", file=sys.stderr)
            return 2

    if baseline_path is not None:
        rows, regressions = compare_to_baseline(results, baseline_path, args.threshold)
        payload["baseline"] = {
            "path": os.path.relpath(baseline_path, REPO_ROOT),
            "threshold": args.threshold,
            "rows": rows,
            "regressions": regressions,
        }
        print(f"\ncomparison vs {os.path.basename(baseline_path)}:")
        for name, row in rows.items():
            print(f"  {name:<44} {row['speedup']:6.2f}x "
                  f"({row['baseline_seconds']:.4f}s -> {row['seconds']:.4f}s)")
        for problem in regressions:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if regressions:
            exit_code = 1

    output_dir = os.path.dirname(output_path)
    if output_dir:
        os.makedirs(output_dir, exist_ok=True)
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    relative = os.path.relpath(output_path, REPO_ROOT)
    print(f"\nwrote {output_path if relative.startswith('..') else relative}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
