#!/usr/bin/env python3
"""Warm-store perf smoke: run one tiny campaign twice, assert the store works.

The first (cold) run populates the cross-process automaton store; the second
(warm) run re-verifies the same mutants with the verdict cache disabled, so
every job really runs — but its pool workers are brand-new processes whose
gate applications must come back from the store.  The check fails when the
warm run has a zero store hit-rate or is slower than the cold run.

Intended for CI (the ``perf-smoke`` job), next to the measurement-only bench
run.  Writes a JSON report with both summaries and the final on-disk store
stats::

    PYTHONPATH=src python scripts/store_smoke.py --output /tmp/perf/store_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def summarise(label, summary):
    return {
        "label": label,
        "jobs": summary.jobs,
        "holds": summary.holds,
        "violated": summary.violated,
        "errors": summary.errors,
        "wall_seconds": round(summary.wall_seconds, 4),
        "store_hits": summary.store_hits,
        "store_misses": summary.store_misses,
        "store_publishes": summary.store_publishes,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: stdout only)")
    parser.add_argument("--family", default="grover")
    parser.add_argument("--mutants", type=int, default=20)
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size; >= 2 so the warm run's workers are fresh "
                             "processes that can only be served by the store")
    args = parser.parse_args(argv)

    from repro.campaign import CampaignConfig, run_campaign
    from repro.ta.store import AutomatonStore

    with tempfile.TemporaryDirectory(prefix="store_smoke_") as scratch:
        def config(label: str) -> CampaignConfig:
            return CampaignConfig(
                family=args.family,
                mutants=args.mutants,
                mutation_kinds=("insert", "remove", "swap-operands"),
                workers=args.workers,
                report_path=os.path.join(scratch, f"{label}.jsonl"),
                cache_dir="",  # verdict-cache hits would bypass the store
                store_dir=os.path.join(scratch, "store"),
            )

        cold = run_campaign(config("cold"))
        warm = run_campaign(config("warm"))
        if warm.wall_seconds > cold.wall_seconds:
            # tiny runs on loaded shared runners can catch a scheduling
            # hiccup; one retry separates real regressions from noise
            warm = run_campaign(config("warm-retry"))
        store_stats = AutomatonStore(os.path.join(scratch, "store")).stats()

        report = {
            "runs": [summarise("cold", cold), summarise("warm", warm)],
            "store": {key: store_stats[key] for key in
                      ("entries", "total_bytes", "store_schema", "payload_schema")},
        }
        for row in report["runs"]:
            print("  " + "  ".join(f"{key}={value}" for key, value in row.items()))
        print(f"  store entries={report['store']['entries']} "
              f"bytes={report['store']['total_bytes']}")

        problems = []
        if cold.errors or warm.errors:
            problems.append(f"campaign errors (cold={cold.errors}, warm={warm.errors})")
        if cold.store_publishes == 0:
            problems.append("cold run published nothing to the store")
        if warm.store_hits == 0:
            problems.append("warm run had a zero store hit-rate")
        if warm.wall_seconds > cold.wall_seconds:
            problems.append(
                f"warm run was slower than the cold run "
                f"({warm.wall_seconds:.3f}s > {cold.wall_seconds:.3f}s)"
            )
        if (warm.holds, warm.violated) != (cold.holds, cold.violated):
            problems.append("warm verdicts differ from cold verdicts")
        report["problems"] = problems

        if args.output:
            directory = os.path.dirname(args.output)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote {args.output}")

    for problem in problems:
        print(f"STORE-SMOKE: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("store smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
