#!/usr/bin/env python3
"""Service-daemon smoke: boot ``repro.cli serve``, drive it, shut it down.

Exercises the full deployment path, not the in-process shortcuts the unit
tests use: a real ``python -m repro.cli serve --port 0`` subprocess, its
printed startup URL, verify requests and an SSE campaign through
:class:`repro.api.client.ServiceClient`, the ``/metrics`` page (which must
show the counters moving and the warm gate memo being hit), and a graceful
SIGINT shutdown with a clean exit status.

Intended for CI (the ``serve-smoke`` job); it also doubles as a health
check against an already-running daemon via ``--url``.  Writes a JSON
report::

    PYTHONPATH=src python scripts/serve_smoke.py --output /tmp/perf/serve_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def _metric(text: str, name: str) -> float:
    """The (summed) value of one un-labelled or labelled metric family."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and (line[len(name)] in (" ", "{")):
            total += float(line.rsplit(" ", 1)[1])
    return total


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: stdout only)")
    parser.add_argument("--url", default=None,
                        help="smoke an already-running daemon instead of booting one "
                             "(skips the shutdown check)")
    parser.add_argument("--verifies", type=int, default=3)
    parser.add_argument("--mutants", type=int, default=3)
    args = parser.parse_args(argv)

    from repro.api import CampaignProblem, CircuitSource, VerifyProblem
    from repro.api.client import ServiceClient

    scratch = tempfile.mkdtemp(prefix="serve_smoke_")
    daemon = None
    if args.url is None:
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"),
                   AUTOQ_REPRO_CACHE_DIR=os.path.join(scratch, "cache"))
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0", "--json"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        url = json.loads(daemon.stdout.readline())["serving"]
    else:
        url = args.url
    client = ServiceClient(url, timeout=120.0)

    report = {"url": url}
    try:
        health = client.health()
        assert health["status"] == "ok", health
        report["health"] = health

        before = client.metrics_text()

        start = time.perf_counter()
        problem = VerifyProblem(circuit=CircuitSource.from_family("bv", 8))
        for index in range(args.verifies):
            result = client.run(problem)
            assert result.holds, f"verify #{index} did not hold"
        report["verify_seconds"] = round(time.perf_counter() - start, 4)

        records = []
        campaign = client.run_campaign(
            CampaignProblem(family="bv", size=4, mutants=args.mutants,
                            report_path=os.path.join(scratch, "report.jsonl")),
            on_record=records.append,
        )
        assert campaign.errors == 0, f"campaign had {campaign.errors} error(s)"
        assert len(records) == campaign.jobs, (len(records), campaign.jobs)
        report["campaign_jobs"] = campaign.jobs
        report["campaign_records_streamed"] = len(records)

        after = client.metrics_text()
        moved = {
            name: (_metric(before, name), _metric(after, name))
            for name in ("repro_requests_total", "repro_sse_records_total",
                         "repro_gate_memo_hits_total")
        }
        for name, (was, now) in moved.items():
            assert now > was, f"{name} did not move ({was} -> {now})"
        report["metrics"] = {name: now for name, (_, now) in moved.items()}
    finally:
        if daemon is not None:
            daemon.send_signal(signal.SIGINT)
            out, err = daemon.communicate(timeout=60)
            report["daemon_exit"] = daemon.returncode
            if daemon.returncode != 0:
                print(err, file=sys.stderr)

    if daemon is not None and report["daemon_exit"] != 0:
        print("FAIL: daemon did not exit cleanly")
        return 1
    if daemon is not None:
        summary = json.loads(out)
        assert summary["kind"] == "serve", summary
        report["daemon_summary"] = summary["data"]

    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    print("serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
