#!/usr/bin/env python3
"""Differential-fuzzing smoke: budgeted clean run + corpus replay + selftest.

Two modes, both meant for CI (the ``fuzz-smoke`` job):

* **clean** (default) — run a time-budgeted differential fuzz sweep against
  HEAD (expect zero divergences: every mutation either diverges *into a
  detected finding elsewhere* or the engines agree), then replay the
  committed regression corpus (expect every entry to re-verify).  Any
  divergence prints the findings and exits non-zero.
* **--selftest** — prove the harness can still catch bugs: temporarily break
  the boolean complement (flipped final-state set, emulated as a double
  complement) and the permutation kernel (silently dropped ``z`` gates),
  assert the fuzzer detects both, writes minimized corpus entries, and
  localises the cross-mode fault to a gate index; then confirm the harvested
  entries replay clean on the restored code and re-fail on the broken code.
  A fuzzer that cannot fail is worse than no fuzzer — this guards the guard.

Run from the repository root::

    PYTHONPATH=src python scripts/fuzz_smoke.py --budget 30 --seed 0
    PYTHONPATH=src python scripts/fuzz_smoke.py --selftest

Writes a JSON report to ``--output`` (default: stdout only).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def _print_findings(findings) -> None:
    for row in findings:
        print(f"  - {json.dumps(row, sort_keys=True)}", file=sys.stderr)


def _clean_run(args, report) -> int:
    from repro.fuzz import FuzzSettings, replay_corpus, run_fuzz

    settings = FuzzSettings(
        budget_seconds=args.budget,
        seed=args.seed,
        max_cases=args.cases,
        include_path_sum=True,
    )
    outcome = run_fuzz(settings)
    report["fuzz"] = {
        "cases": outcome.cases,
        "prefiltered": outcome.prefiltered,
        "divergences": outcome.divergences,
        "elapsed_seconds": round(outcome.elapsed_seconds, 3),
    }
    if not outcome.ok:
        print(f"FAIL: {outcome.divergences} divergence(s) on HEAD", file=sys.stderr)
        _print_findings(outcome.findings)
        return 1

    if os.path.isdir(args.corpus_dir):
        replay = replay_corpus(args.corpus_dir)
        report["replay"] = {
            "replayed": replay.replayed,
            "failures": replay.divergences,
        }
        if not replay.ok:
            print(
                f"FAIL: {replay.divergences} corpus entr(ies) regressed",
                file=sys.stderr,
            )
            _print_findings(replay.findings)
            return 1
    else:
        report["replay"] = {"replayed": 0, "failures": 0}
        print(f"note: no corpus at {args.corpus_dir}, replay skipped")
    return 0


def _selftest(args, report) -> int:
    """Break the kernels on purpose; the fuzzer must notice, minimize, localise."""
    import repro.core.engine as engine_module
    import repro.ta.boolean as boolean_module
    from repro.fuzz import Corpus, FuzzSettings, replay_corpus, run_fuzz

    scratch = tempfile.mkdtemp(prefix="fuzz_smoke_")
    corpus_dir = os.path.join(scratch, "corpus")
    real_complement = boolean_module.complement
    real_apply = engine_module.apply_permutation_gate

    def flipped_complement(automaton, alphabet=None):
        # complement with a flipped final-state set accepts the *completion*
        # of L(A): exactly what double-complementing the correct code yields
        return real_complement(real_complement(automaton, alphabet), alphabet)

    def z_dropping_apply(automaton, gate, *extra, **kwargs):
        if gate.kind == "z":
            return automaton
        return real_apply(automaton, gate, *extra, **kwargs)

    try:
        boolean_module.complement = flipped_complement
        boolean = run_fuzz(FuzzSettings(
            budget_seconds=args.budget, seed=args.seed, checks=("boolean",),
            max_cases=args.cases or 12, corpus_dir=corpus_dir,
        ))
        assert boolean.divergences > 0, "flipped complement was not detected"
        assert boolean.corpus_entries, "no corpus entry written for the boolean bug"
        boolean_module.complement = real_complement

        engine_module.apply_permutation_gate = z_dropping_apply
        cross = run_fuzz(FuzzSettings(
            budget_seconds=args.budget, seed=args.seed, checks=("cross-mode",),
            max_cases=args.cases or 60, corpus_dir=corpus_dir,
        ))
        assert cross.divergences > 0, "z-dropping kernel was not detected"
        assert cross.corpus_entries, "no corpus entry written for the engine bug"
        localised = [row.get("localised_gate") for row in cross.findings]
        assert any(gate is not None for gate in localised), (
            "no cross-mode finding was localised to a gate index"
        )

        # the harvested entries must re-fail while the kernel is still broken…
        broken_replay = replay_corpus(corpus_dir)
        assert broken_replay.divergences > 0, (
            "replay did not re-detect the still-broken kernel"
        )
        engine_module.apply_permutation_gate = real_apply

        # …and replay clean once it is fixed: that is the regression gate.
        healthy_replay = replay_corpus(corpus_dir)
        assert healthy_replay.ok, (
            f"{healthy_replay.divergences} harvested entr(ies) still fail on "
            "the restored kernels"
        )
        report["selftest"] = {
            "boolean_divergences": boolean.divergences,
            "cross_mode_divergences": cross.divergences,
            "corpus_entries": len(Corpus(corpus_dir).entries()),
            "broken_replay_failures": broken_replay.divergences,
            "healthy_replay": healthy_replay.replayed,
        }
    finally:
        boolean_module.complement = real_complement
        engine_module.apply_permutation_gate = real_apply
        shutil.rmtree(scratch, ignore_errors=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=float, default=20.0,
                        help="fuzzing time budget in seconds (default: 20)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed for the deterministic case stream")
    parser.add_argument("--cases", type=int, default=None,
                        help="hard case cap (default: budget-limited only)")
    parser.add_argument("--corpus-dir", default=os.path.join(REPO_ROOT, "corpus"),
                        help="regression corpus to replay after the clean run")
    parser.add_argument("--selftest", action="store_true",
                        help="verify the fuzzer still catches injected kernel bugs")
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: stdout only)")
    args = parser.parse_args(argv)

    report = {"mode": "selftest" if args.selftest else "clean",
              "budget": args.budget, "seed": args.seed}
    status = _selftest(args, report) if args.selftest else _clean_run(args, report)

    print(json.dumps(report, indent=2, sort_keys=True))
    if args.output:
        os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    if status == 0:
        print("fuzz smoke passed")
    return status


if __name__ == "__main__":
    sys.exit(main())
