#!/usr/bin/env python3
"""Fabric smoke: a joined sweep with a SIGKILLed worker must match solo.

Boots a distributed campaign end to end, the way ``docs/distributed.md``
describes it: a coordinator plans a small matrix sweep, two real
``campaign --join`` subprocesses attach to its lease queue, and one of them
— deliberately slowed by a ``worker.cell`` delay fault so it is reliably
mid-cell — is SIGKILLed once roughly half the sweep has completed.  The
smoke fails unless

* the surviving joiner and the coordinator finish every cell (the dead
  worker's claim is stolen, not waited on),
* the coordinator's roll-up is trustworthy (no errors, no conflicts) and
  records at least one stolen cell,
* the per-cell verdict rows are identical to an uninterrupted solo run.

Intended for CI (the ``fabric-smoke`` job); see ``docs/distributed.md``::

    PYTHONPATH=src python scripts/fabric_smoke.py --output /tmp/perf/fabric_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC_DIR)


def spawn_joiner(scratch: str, campaign_id: str, name: str,
                 faults=None) -> subprocess.Popen:
    """A real ``campaign --join`` subprocess with its own report/cache dirs."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro.cli", "campaign",
            "--join", campaign_id, "--json",
            "--manifest-dir", os.path.join(scratch, "manifests"),
            "--cache-dir", os.path.join(scratch, "cache", name),
            "--report-dir", os.path.join(scratch, "reports", name)]
    if faults is not None:
        argv += ["--faults", json.dumps(faults.to_dict())]
    return subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)


def verdict_rows(rows):
    return sorted((row["cell"], row["jobs"], row["holds"], row["violated"],
                   row["unsupported"], row["errors"]) for row in rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: stdout only)")
    parser.add_argument("--family", default="bv")
    parser.add_argument("--sizes", default="2-5",
                        help="size range of the sweep (4 cells by default)")
    parser.add_argument("--mutants", type=int, default=2)
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="overall deadline for the joined phase (seconds)")
    args = parser.parse_args(argv)

    from repro.campaign import MatrixScheduler, MatrixSpec
    from repro.dist import CLAIM_DIR, RESULT_DIR, queue_dir_for
    from repro.faults import FaultPlan, FaultSpec

    spec_mapping = {"families": [args.family], "sizes": args.sizes,
                    "mutants": args.mutants}

    with tempfile.TemporaryDirectory(prefix="fabric_smoke_") as scratch:
        def scheduler(campaign_id: str) -> MatrixScheduler:
            return MatrixScheduler(
                MatrixSpec.from_mapping(dict(spec_mapping)),
                workers=1,
                report_dir=os.path.join(scratch, "reports", campaign_id),
                manifest_dir=os.path.join(scratch, "manifests"),
                cache_dir=os.path.join(scratch, "cache", campaign_id),
                campaign_id=campaign_id,
            )

        # the uninterrupted baseline every fabric outcome must match
        solo = scheduler("solo").run()

        coordinator = scheduler("fabric")
        coordinator.plan()
        cells = [cell.cell_id for cell in coordinator.spec.cells()]
        queue_dir = queue_dir_for(os.path.join(scratch, "manifests"), "fabric")
        claim_dir = os.path.join(queue_dir, CLAIM_DIR)
        result_dir = os.path.join(queue_dir, RESULT_DIR)

        # the victim crawls (1s per verification job) so it is dependably
        # mid-cell — holding a live claim — when the kill lands
        molasses = FaultPlan(seed=0, sites=(
            FaultSpec(site="worker.cell", kind="delay", rate=1.0,
                      delay_seconds=1.0),
        ))
        victim = spawn_joiner(scratch, "fabric", "victim", faults=molasses)
        survivor = spawn_joiner(scratch, "fabric", "survivor")

        def completed() -> int:
            try:
                return len(os.listdir(result_dir))
            except OSError:
                return 0

        def victim_holds_a_claim() -> bool:
            try:
                names = os.listdir(claim_dir)
            except OSError:
                return False
            for name in names:
                try:
                    with open(os.path.join(claim_dir, name), "r",
                              encoding="utf-8") as handle:
                        payload = json.load(handle)
                except (OSError, ValueError):
                    continue
                if (payload.get("lease") or {}).get("pid") == victim.pid:
                    return True
            return False

        # SIGKILL the slow joiner at the half-way mark, while it owns a cell
        deadline = time.monotonic() + args.timeout
        killed_at_cells = None
        while time.monotonic() < deadline:
            if completed() >= len(cells) // 2 and victim_holds_a_claim():
                killed_at_cells = completed()
                break
            if victim.poll() is not None:
                break  # victim already exited: nothing left to kill
            time.sleep(0.05)
        if killed_at_cells is not None:
            victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        survivor_stdout, survivor_stderr = survivor.communicate(
            timeout=args.timeout)

        # the coordinator merges everything and steals whatever is still held
        # by the dead pid; resume must finish the sweep regardless
        result = coordinator.run(resume=True)

    failures = []
    if killed_at_cells is None:
        failures.append("never caught the victim holding a claim at 50% — "
                        "the kill tested nothing")
    if survivor.returncode != 0:
        failures.append(f"surviving joiner exited {survivor.returncode}: "
                        f"{survivor_stderr.strip()[:500]}")
    if not result.trustworthy:
        failures.append("coordinator roll-up is not trustworthy "
                        f"(errors={result.totals.get('errors')}, "
                        f"conflicts={result.totals.get('conflicts', 0)})")
    if len(result.rows) != len(cells):
        failures.append(f"sweep incomplete: {len(result.rows)} of "
                        f"{len(cells)} cells in the roll-up")
    if killed_at_cells is not None and not result.totals.get("cells_stolen"):
        failures.append("a worker died holding a claim but no cell was "
                        "recorded as stolen")
    solo_rows = verdict_rows(solo.rows)
    fabric_rows = verdict_rows(result.rows)
    if fabric_rows != solo_rows:
        diff = [pair for pair in zip(solo_rows, fabric_rows)
                if pair[0] != pair[1]]
        failures.append(f"fabric verdicts diverged from solo: {diff[:3]}")
    if result.totals.get("jobs") != solo.totals.get("jobs"):
        failures.append(f"job totals differ: fabric "
                        f"{result.totals.get('jobs')} vs solo "
                        f"{solo.totals.get('jobs')} — a cell ran twice")

    survivor_doc = None
    try:
        survivor_doc = json.loads(survivor_stdout)["data"]["counters"]
    except (ValueError, KeyError, TypeError):
        pass
    report = {
        "cells": len(cells),
        "killed_at_completed_cells": killed_at_cells,
        "survivor_counters": survivor_doc,
        "totals": {key: result.totals.get(key) for key in
                   ("jobs", "errors", "cells_claimed", "cells_stolen",
                    "cells_requeued", "lease_renewals")},
        "verdicts_match": fabric_rows == solo_rows,
        "failures": failures,
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.output:
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    if failures:
        for failure in failures:
            print(f"fabric_smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"fabric_smoke: OK ({len(cells)} cells, "
          f"{result.totals.get('cells_stolen')} stolen, verdicts identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
