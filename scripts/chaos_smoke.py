#!/usr/bin/env python3
"""Chaos smoke: a campaign under a seeded kill+corrupt plan must not change.

Runs one small mutant campaign twice — first fault-free, then under a
deterministic fault-injection plan that SIGKILLs a pool worker every tenth
cell (``worker.cell``/``crash-process``) and corrupts five percent of store
publishes (``store.put``/``corrupt-payload``).  The smoke fails unless the
chaotic run

* completes with exit code 0 (no crash escapes the runner),
* produces verdicts identical to the fault-free run, record for record,
* recorded at least one re-queued job (``retried``) in its JSONL report
  whenever a kill actually fired.

Intended for CI (the ``chaos-smoke`` job); see ``docs/robustness.md``::

    PYTHONPATH=src python scripts/chaos_smoke.py --output /tmp/perf/chaos_smoke.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def summarise(label, summary):
    return {
        "label": label,
        "jobs": summary.jobs,
        "holds": summary.holds,
        "violated": summary.violated,
        "unsupported": summary.unsupported,
        "errors": summary.errors,
        "wall_seconds": round(summary.wall_seconds, 4),
        "faults_injected": summary.faults_injected,
        "retries": summary.retries,
        "quarantined_entries": summary.quarantined_entries,
        "store_disabled": summary.store_disabled,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None,
                        help="write the JSON report here (default: stdout only)")
    parser.add_argument("--family", default="grover")
    parser.add_argument("--mutants", type=int, default=20)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=9,
                        help="fault plan seed (the campaign's own seed is fixed)")
    args = parser.parse_args(argv)

    from repro.campaign import CampaignConfig, read_report, run_campaign
    from repro.faults import FaultPlan, FaultSpec

    plan = FaultPlan(seed=args.seed, sites=(
        FaultSpec(site="worker.cell", kind="crash-process", every=10),
        FaultSpec(site="store.put", kind="corrupt-payload", rate=0.05),
    ))

    with tempfile.TemporaryDirectory(prefix="chaos_smoke_") as scratch:
        def config(label: str, fault_plan=None, workers: int = 1) -> CampaignConfig:
            return CampaignConfig(
                family=args.family,
                mutants=args.mutants,
                mutation_kinds=("insert", "remove"),
                workers=workers,
                report_path=os.path.join(scratch, label, "report.jsonl"),
                cache_dir=os.path.join(scratch, label, "cache"),
                store_dir=os.path.join(scratch, label, "store"),
                fault_plan=fault_plan,
            )

        # chaotic run first: its forked pool workers must start with a cold
        # gate memo (a clean run first would warm this process, and the
        # workers would never touch the store they are meant to corrupt)
        chaos_config = config("chaos", fault_plan=plan, workers=args.workers)
        chaos = run_campaign(chaos_config)
        clean_config = config("clean")
        clean = run_campaign(clean_config)

        verdicts = lambda cfg: [(r["job_id"], r["verdict"])  # noqa: E731
                                for r in read_report(cfg.report_path)]
        clean_verdicts = verdicts(clean_config)
        chaos_verdicts = verdicts(chaos_config)
        retried = sum(int(r.get("retried") or 0)
                      for r in read_report(chaos_config.report_path))

    failures = []
    if chaos_verdicts != clean_verdicts:
        diff = [(c, f) for c, f in zip(clean_verdicts, chaos_verdicts) if c != f]
        failures.append(f"verdicts diverged under faults: {diff[:5]}")
    if chaos.errors != clean.errors:
        failures.append(
            f"chaotic run produced {chaos.errors} errors vs {clean.errors} clean")
    if chaos.faults_injected == 0:
        failures.append("the fault plan never fired — the smoke tested nothing")
    # every kill loses one in-flight job, which must resurface as a retry
    if args.workers > 1 and chaos.retries == 0 and chaos.faults_injected > 0:
        failures.append("faults fired but no retry was recorded in the JSONL")

    report = {
        "clean": summarise("clean", clean),
        "chaos": summarise("chaos", chaos),
        "plan": plan.to_dict(),
        "verdicts_match": chaos_verdicts == clean_verdicts,
        "chaos_retried_jobs": retried,
        "failures": failures,
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print(text)
    if args.output:
        os.makedirs(os.path.dirname(args.output) or ".", exist_ok=True)
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    if failures:
        for failure in failures:
            print(f"chaos_smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"chaos_smoke: OK ({chaos.faults_injected} faults injected, "
          f"{chaos.retries} retries, verdicts identical)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
