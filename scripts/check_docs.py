#!/usr/bin/env python3
"""Documentation lint: keep README/examples/docs in sync with the code.

Checks, in order:

1. **Intra-repo links** — every relative markdown link target in the checked
   files exists on disk.
2. **Documented CLI invocations** — every ``python -m repro.cli <cmd> ...``
   line inside a fenced code block names a real subcommand, and every
   ``--flag`` it shows is accepted by that subcommand's argparse definition.
   Each referenced subcommand's ``--help`` is also rendered once, so a broken
   parser fails the docs job too.
3. **CLI docstring audit** — the subcommand set shown in the
   :mod:`repro.cli` module docstring matches the parser exactly (no
   undocumented subcommands, no documented ghosts).
4. **Example scripts** — every ``*.py`` / ``*.toml`` mentioned in
   ``examples/README.md`` exists in ``examples/``.
5. **Environment variables** — every ``AUTOQ_REPRO_*`` variable the docs
   mention exists in the source, and every one the source reads is documented
   somewhere in the checked files.

Run from the repository root::

    PYTHONPATH=src python scripts/check_docs.py

Exits non-zero listing every problem found; CI runs this as the ``docs`` job.
The checks are importable (``tests/test_docs.py`` runs them in tier-1).
"""

from __future__ import annotations

import argparse
import contextlib
import io
import os
import re
import shlex
import sys
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: the markdown files whose links and code blocks are contract, not prose
CHECKED_FILES = (
    "README.md",
    "examples/README.md",
    "docs/api.md",
    "docs/architecture.md",
    "docs/caching.md",
    "docs/distributed.md",
    "docs/fuzzing.md",
    "docs/kernel.md",
    "docs/robustness.md",
    "docs/service.md",
)

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_FENCE_PATTERN = re.compile(r"^```")
_CLI_PATTERN = re.compile(r"python -m repro\.cli\s+(.*)$")
_ENV_PATTERN = re.compile(r"AUTOQ_REPRO_[A-Z][A-Z0-9_]*")


def _read(path: str) -> str:
    with open(os.path.join(REPO_ROOT, path), "r", encoding="utf-8") as handle:
        return handle.read()


def check_links(paths=CHECKED_FILES) -> List[str]:
    """Relative link targets that do not exist, as ``file: target`` strings."""
    problems = []
    for path in paths:
        base = os.path.dirname(os.path.join(REPO_ROOT, path))
        for target in _LINK_PATTERN.findall(_read(path)):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            if not os.path.exists(os.path.normpath(os.path.join(base, target_path))):
                problems.append(f"{path}: broken link -> {target}")
    return problems


def _code_block_lines(text: str) -> List[str]:
    lines, in_block, continuation = [], False, ""
    for line in text.splitlines():
        if _FENCE_PATTERN.match(line.strip()):
            # a continuation dangling at a fence belongs to the closing block:
            # flush it so the (malformed but present) command is still checked
            if continuation:
                lines.append(continuation)
                continuation = ""
            in_block = not in_block
            continue
        if not in_block:
            continue
        stripped = (continuation + " " + line.strip()).strip() if continuation else line.strip()
        if stripped.endswith("\\"):
            # shell line continuation: join with the following line(s)
            continuation = stripped[:-1].strip()
            continue
        continuation = ""
        lines.append(stripped)
    return lines


def _subcommand_parsers() -> Dict[str, argparse.ArgumentParser]:
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._actions:  # noqa: SLF001 - argparse has no public API for this
        if isinstance(action, argparse._SubParsersAction):  # noqa: SLF001
            return dict(action.choices)
    raise AssertionError("repro.cli.build_parser() has no subparsers")


def check_cli_invocations(paths=CHECKED_FILES) -> List[str]:
    """Documented ``repro.cli`` lines whose subcommand or flags don't parse."""
    subparsers = _subcommand_parsers()
    problems = []
    rendered_help = set()
    for path in paths:
        for line in _code_block_lines(_read(path)):
            match = _CLI_PATTERN.search(line)
            if not match:
                continue
            try:
                tokens = shlex.split(match.group(1))
            except ValueError as error:
                problems.append(f"{path}: unparseable command {line!r} ({error})")
                continue
            if not tokens:
                continue
            command = tokens[0]
            if command == "..." or command.startswith("<"):
                continue  # illustrative placeholder, not a real invocation
            if command not in subparsers:
                problems.append(
                    f"{path}: unknown subcommand {command!r} in {line!r} "
                    f"(known: {sorted(subparsers)})"
                )
                continue
            accepted = subparsers[command]._option_string_actions  # noqa: SLF001
            for token in tokens[1:]:
                if token.startswith("--"):
                    flag = token.split("=", 1)[0]
                    if flag not in accepted:
                        problems.append(
                            f"{path}: subcommand {command!r} does not accept {flag!r} "
                            f"(documented in {line!r})"
                        )
            if command not in rendered_help:
                rendered_help.add(command)
                with contextlib.redirect_stdout(io.StringIO()):
                    try:
                        subparsers[command].parse_args(["--help"])
                    except SystemExit as exit_info:
                        if exit_info.code not in (0, None):
                            problems.append(f"--help of {command!r} exited {exit_info.code}")
    return problems


def check_cli_docstring() -> List[str]:
    """The ``repro.cli`` module docstring must list exactly the real subcommands."""
    import repro.cli as cli_module

    documented = set(re.findall(r"autoq-repro\s+([a-z][a-z-]*)", cli_module.__doc__ or ""))
    actual = set(_subcommand_parsers())
    problems = []
    for name in sorted(actual - documented):
        problems.append(f"repro/cli.py docstring: subcommand {name!r} is undocumented")
    for name in sorted(documented - actual):
        problems.append(f"repro/cli.py docstring: documents nonexistent subcommand {name!r}")
    return problems


def check_example_files() -> List[str]:
    """Every example artifact named in examples/README.md must exist."""
    text = _read("examples/README.md")
    problems = []
    for name in set(re.findall(r"`([\w./-]+\.(?:py|toml))`", text)):
        candidate = name if "/" in name else os.path.join("examples", name)
        if not os.path.exists(os.path.join(REPO_ROOT, candidate)):
            problems.append(f"examples/README.md: mentions missing file {name!r}")
    return problems


def _source_env_vars() -> set:
    """Every ``AUTOQ_REPRO_*`` name that appears in a Python file under src/."""
    names = set()
    for dirpath, _dirnames, filenames in os.walk(os.path.join(REPO_ROOT, "src")):
        for filename in filenames:
            if filename.endswith(".py"):
                with open(os.path.join(dirpath, filename), "r", encoding="utf-8") as handle:
                    names.update(_ENV_PATTERN.findall(handle.read()))
    return names


def check_env_vars(paths=CHECKED_FILES) -> List[str]:
    """Documented env vars must exist in src/, and source env vars must be documented."""
    source = _source_env_vars()
    documented = set()
    problems = []
    for path in paths:
        for name in sorted(set(_ENV_PATTERN.findall(_read(path)))):
            documented.add(name)
            if name not in source:
                problems.append(
                    f"{path}: documents env var {name!r}, which no file under src/ reads"
                )
    for name in sorted(source - documented):
        problems.append(
            f"src/: env var {name!r} is read by the code but documented in none of "
            f"{', '.join(paths)}"
        )
    return problems


def main() -> int:
    problems = (
        check_links()
        + check_cli_invocations()
        + check_cli_docstring()
        + check_example_files()
        + check_env_vars()
    )
    for problem in problems:
        print(f"DOCS: {problem}", file=sys.stderr)
    if problems:
        print(f"docs check failed: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("docs check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
