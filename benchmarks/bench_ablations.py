"""Ablation benchmarks for the design choices called out in DESIGN.md.

* lightweight reduction after each gate — on vs. off,
* Hybrid vs. Composition engine settings on the same workload,
* incremental bug-hunting strategy vs. starting from the full basis-state set,
* lightweight (same-successors) reduction vs. the full downward-simulation
  reduction (the paper's footnote 6 leaves the latter as future work),
* the stabilizer-tableau baseline vs. the TA-based check on a Clifford bug.

These are not rows of a paper table; they quantify the paper's qualitative
statements ("we use a lightweight reduction to keep the obtained TAs small",
"Hybrid is consistently faster than Composition", "running the analysis with a
TA representing all possible basis states might be too challenging").
"""

import pytest

from repro.baselines import StabilizerChecker, StabilizerVerdict
from repro.benchgen import bv_benchmark, ghz_circuit, grover_single_benchmark
from repro.circuits import inject_random_gate, random_circuit
from repro.core import (
    AnalysisMode,
    IncrementalBugHunter,
    check_circuit_equivalence,
    run_circuit,
    verify_triple,
)
from repro.ta import all_basis_states_ta, check_equivalence, simulation_reduce


class TestReductionAblation:
    @pytest.mark.parametrize("reduce_after_each_gate", [True, False])
    def test_bv_with_and_without_reduction(self, benchmark, reduce_after_each_gate):
        bench = bv_benchmark(10)
        result = benchmark.pedantic(
            run_circuit,
            args=(bench.circuit, bench.precondition),
            kwargs={"reduce_after_each_gate": reduce_after_each_gate},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info.update(
            {
                "reduction": reduce_after_each_gate,
                "max_states": result.statistics.max_states,
                "max_transitions": result.statistics.max_transitions,
            }
        )
        print(f"\n[reduction={reduce_after_each_gate}] max TA size "
              f"{result.statistics.max_states} states / {result.statistics.max_transitions} transitions")


class TestModeAblation:
    @pytest.mark.parametrize("mode", [AnalysisMode.HYBRID, AnalysisMode.COMPOSITION])
    def test_grover_mode_comparison(self, benchmark, mode):
        bench = grover_single_benchmark(3)
        result = benchmark.pedantic(
            verify_triple,
            args=(bench.precondition, bench.circuit, bench.postcondition),
            kwargs={"mode": mode},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info.update(
            {
                "mode": mode,
                "permutation_gates": result.statistics.gates_permutation,
                "composition_gates": result.statistics.gates_composition,
            }
        )
        assert result.holds


class TestBugHuntStrategyAblation:
    def _workload(self):
        circuit = random_circuit(8, seed=123)
        buggy, _ = inject_random_gate(circuit, seed=124)
        return circuit, buggy

    def test_incremental_strategy(self, benchmark):
        circuit, buggy = self._workload()
        hunter = IncrementalBugHunter(seed=0)
        result = benchmark.pedantic(hunter.hunt, args=(circuit, buggy), rounds=1, iterations=1)
        benchmark.extra_info.update({"strategy": "incremental", "iterations": result.iterations})
        assert result.bug_found

    def test_full_basis_strategy(self, benchmark):
        """The paper's remark: starting from all basis states is usually slower."""
        circuit, buggy = self._workload()
        inputs = all_basis_states_ta(circuit.num_qubits)
        result = benchmark.pedantic(
            check_circuit_equivalence, args=(circuit, buggy, inputs), rounds=1, iterations=1
        )
        benchmark.extra_info.update({"strategy": "full-basis", "non_equivalent": result.non_equivalent})
        assert result.non_equivalent


class TestSimulationReductionAblation:
    """Lightweight same-successors reduction vs. the full downward-simulation reduction."""

    def _output_automaton(self):
        bench = grover_single_benchmark(3)
        return run_circuit(bench.circuit, bench.precondition, reduce_after_each_gate=True).output

    def test_lightweight_reduction(self, benchmark):
        automaton = self._output_automaton()
        reduced = benchmark.pedantic(automaton.reduce, rounds=1, iterations=1)
        benchmark.extra_info.update(
            {"reduction": "lightweight", "states": reduced.num_states,
             "transitions": reduced.num_transitions}
        )
        print(f"\n[reduction=lightweight] {reduced.size_summary()}")

    def test_full_simulation_reduction(self, benchmark):
        automaton = self._output_automaton()
        reduced = benchmark.pedantic(simulation_reduce, args=(automaton,), rounds=1, iterations=1)
        benchmark.extra_info.update(
            {"reduction": "downward-simulation", "states": reduced.num_states,
             "transitions": reduced.num_transitions}
        )
        print(f"\n[reduction=downward-simulation] {reduced.size_summary()}")
        assert check_equivalence(automaton, reduced).equivalent
        assert reduced.num_states <= automaton.num_states


class TestSimulatorRepresentationAblation:
    """Sparse map vs. decision-diagram state representation (the SliQSim argument).

    On structured states (GHZ over many qubits) the DD node count stays linear
    while the sparse map and the dense vector do not shrink below the number of
    non-zero amplitudes; on unstructured states the two are comparable.
    """

    def test_sparse_state_representation(self, benchmark):
        from repro.simulator import StateVectorSimulator
        from repro.states import QuantumState

        circuit = ghz_circuit(14)
        state = benchmark.pedantic(
            StateVectorSimulator().run, args=(circuit, QuantumState.zero_state(14)), rounds=1, iterations=1
        )
        benchmark.extra_info.update({"representation": "sparse-map", "entries": state.nonzero_count()})
        print(f"\n[sparse-map] nonzero entries: {state.nonzero_count()}")

    def test_decision_diagram_representation(self, benchmark):
        from repro.simulator import DDState, DecisionDiagramSimulator

        circuit = ghz_circuit(14)
        simulator = DecisionDiagramSimulator()
        state = benchmark.pedantic(
            simulator.run, args=(circuit, DDState.zero_state(14, simulator.manager)), rounds=1, iterations=1
        )
        benchmark.extra_info.update({"representation": "decision-diagram", "nodes": state.node_count()})
        print(f"\n[decision-diagram] nodes: {state.node_count()}")
        assert state.node_count() <= 3 * 14


class TestStabilizerBaselineAblation:
    """On a purely Clifford bug, the tableau baseline and the TA check must agree."""

    def _workload(self):
        circuit = ghz_circuit(12)
        buggy = circuit.copy(name="ghz_buggy").add("cz", 3, 9)
        return circuit, buggy

    def test_stabilizer_baseline(self, benchmark):
        circuit, buggy = self._workload()
        checker = StabilizerChecker()
        result = benchmark.pedantic(checker.check_equivalence, args=(circuit, buggy), rounds=1, iterations=1)
        benchmark.extra_info.update({"checker": "stabilizer", "verdict": result.verdict.value})
        assert result.verdict == StabilizerVerdict.NOT_EQUAL

    def test_ta_output_set_check(self, benchmark):
        circuit, buggy = self._workload()
        hunter = IncrementalBugHunter(seed=0)
        result = benchmark.pedantic(hunter.hunt, args=(circuit, buggy), rounds=1, iterations=1)
        benchmark.extra_info.update({"checker": "autoq-ta", "bug_found": result.bug_found})
        assert result.bug_found
