"""Campaign engine throughput: serial vs. multi-worker bug hunting.

The paper's bug-hunting evaluation (Table 3) sweeps hundreds of mutated
circuit copies; this benchmark measures how fast the campaign runner gets
through a 100-mutant Grover hunt with 1, 2 and 4 worker processes.  The cache
is disabled so every job performs a real verification — the expected shape is
near-linear scaling until the per-job cost is dwarfed by pool overhead.  On a
single-CPU machine (the ``cpus`` column) the worker rows are expected to be
flat: the pool can only timeslice one core.  A separate row measures the fully
cached re-run, which should be orders of magnitude faster than any worker
count.

The matrix rows measure the sweep scheduler on a multi-cell
families × sizes × modes grid: the full sweep (manifest checkpoint per cell),
and the resumed no-op, whose cost is exactly "read one manifest" and should be
milliseconds regardless of sweep size.

The service row compares the verification daemon (``repro serve``) against
the workflow it replaces: the same verify queries answered by one warm
daemon over HTTP vs a fresh CLI subprocess per query.  The daemon must win.
"""

import os

import pytest

from repro.campaign import CampaignConfig, MatrixScheduler, MatrixSpec, run_campaign

MUTANTS = 100


def _config(tmp_path, workers: int, cache_dir: str = "", store_dir: str = "") -> CampaignConfig:
    return CampaignConfig(
        family="grover",
        mutants=MUTANTS,
        mutation_kinds=("insert", "remove", "swap-operands"),
        workers=workers,
        report_path=str(tmp_path / f"campaign_w{workers}.jsonl"),
        cache_dir=cache_dir,
        store_dir=store_dir,
    )


def _run_row(benchmark, tmp_path, workers: int, cache_dir: str = "", store_dir: str = ""):
    summary = benchmark.pedantic(
        run_campaign,
        args=(_config(tmp_path, workers, cache_dir, store_dir),),
        rounds=1,
        iterations=1,
    )
    row = {
        "benchmark": f"campaign/{summary.benchmark}",
        "workers": workers,
        "cpus": os.cpu_count(),
        "jobs": summary.jobs,
        "violated": summary.violated,
        "cache_hits": summary.cache_hits,
        "store_hits": summary.store_hits,
        "wall_s": round(summary.wall_seconds, 3),
        "analysis_s": round(summary.analysis_seconds, 3),
        "jobs_per_s": round(summary.jobs / summary.wall_seconds, 1) if summary.wall_seconds else 0.0,
    }
    benchmark.extra_info.update(row)
    print("  " + "  ".join(f"{key}={value}" for key, value in row.items()))
    return summary


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_campaign_grover_100_mutants(benchmark, tmp_path, workers):
    summary = _run_row(benchmark, tmp_path, workers)
    assert summary.jobs == MUTANTS + 1
    assert summary.errors == 0


def test_campaign_grover_cached_rerun(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = run_campaign(_config(tmp_path, workers=1, cache_dir=cache_dir))
    assert first.cache_hits == 0
    summary = _run_row(benchmark, tmp_path, workers=1, cache_dir=cache_dir)
    assert summary.cache_hits == summary.jobs


def test_campaign_grover_warm_store_rerun(benchmark, tmp_path):
    """Cold-vs-warm automaton store: re-run with fresh per-process caches.

    The result cache stays disabled so every job verifies for real; only the
    cross-process store survives between the runs.  The measured (warm) run
    must answer a non-trivial share of its gate applications from the store.
    """
    from repro.core.engine import clear_gate_cache
    from repro.ta.automaton import clear_intern_tables, clear_reduce_cache

    store_dir = str(tmp_path / "store")
    clear_gate_cache()
    clear_reduce_cache()
    clear_intern_tables()
    cold = run_campaign(_config(tmp_path, workers=1, store_dir=store_dir))
    assert cold.store_publishes > 0
    # simulate brand-new worker processes for the measured run
    clear_gate_cache()
    clear_reduce_cache()
    clear_intern_tables()
    summary = _run_row(benchmark, tmp_path, workers=1, store_dir=store_dir)
    assert summary.store_hits > 0
    assert summary.store_misses == 0
    assert summary.errors == 0


MATRIX_MUTANTS = 10

_MATRIX_MAPPING = {
    "families": ["grover", "bv", "mctoffoli", "ghz"],
    "sizes": {"grover": [2], "bv": "3-4", "mctoffoli": "2-3", "ghz": [3, 4]},
    "modes": ["hybrid", "permutation"],
    "mutants": MATRIX_MUTANTS,
    "mutations": ["insert", "remove", "swap-operands"],
}


def _matrix_scheduler(tmp_path) -> MatrixScheduler:
    return MatrixScheduler(
        MatrixSpec.from_mapping(_MATRIX_MAPPING),
        workers=1,
        report_dir=str(tmp_path / "reports"),
        manifest_dir=str(tmp_path / "manifests"),
        cache_dir="",
    )


def _matrix_row(benchmark, result, label: str) -> None:
    row = {
        "benchmark": f"campaign-matrix/{label}",
        "cells": len(result.rows),
        "reused": result.reused_cells,
        "jobs": result.totals["jobs"],
        "violated": result.totals["violated"],
        "wall_s": round(result.wall_seconds, 3),
    }
    benchmark.extra_info.update(row)
    print("  " + "  ".join(f"{key}={value}" for key, value in row.items()))


def test_campaign_matrix_sweep(benchmark, tmp_path):
    """Full families x sizes x modes sweep with per-cell manifest checkpoints."""
    result = benchmark.pedantic(
        lambda: _matrix_scheduler(tmp_path).run(), rounds=1, iterations=1
    )
    _matrix_row(benchmark, result, "sweep")
    assert result.totals["errors"] == 0
    assert result.reused_cells == 0


def test_campaign_matrix_resume_noop(benchmark, tmp_path):
    """Resuming a completed sweep must only pay for reading the manifest."""
    scheduler = _matrix_scheduler(tmp_path)
    first = scheduler.run()
    result = benchmark.pedantic(
        lambda: _matrix_scheduler(tmp_path).run(resume=True), rounds=1, iterations=1
    )
    _matrix_row(benchmark, result, "resume-noop")
    assert result.reused_cells == len(first.rows)
    assert result.totals["jobs"] == first.totals["jobs"]


SERVICE_QUERIES = 5


def test_service_warm_daemon_beats_cold_cli(benchmark):
    """The verification daemon vs the workflow it replaces.

    The measured (warm) path answers ``SERVICE_QUERIES`` identical verify
    requests over HTTP from one primed ``repro serve`` runtime; the cold
    reference runs the same queries as fresh ``python -m repro.cli``
    subprocesses, paying interpreter start-up and an empty cache hierarchy
    each time.  The daemon must win outright — warm-runtime reuse is its
    entire reason to exist.
    """
    import subprocess
    import sys
    import time

    from repro.api import CircuitSource, SessionConfig, VerifyProblem
    from repro.api.client import ServiceClient
    from repro.service import ServiceConfig, ServiceServer

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    problem = VerifyProblem(circuit=CircuitSource.from_family("bv", 10))

    env = dict(os.environ, PYTHONPATH=os.path.join(repo_root, "src"))
    env.pop("AUTOQ_REPRO_SERVER", None)  # the cold runs must not find a daemon
    start = time.perf_counter()
    for _ in range(SERVICE_QUERIES):
        outcome = subprocess.run(
            [sys.executable, "-m", "repro.cli", "verify", "--family", "bv",
             "--size", "10"],
            capture_output=True, env=env, cwd=repo_root,
        )
        assert outcome.returncode == 0, outcome.stderr
    cold_seconds = time.perf_counter() - start

    server = ServiceServer(ServiceConfig(
        port=0, session=SessionConfig(cache_dir="", store_dir="")
    )).start()
    try:
        client = ServiceClient(server.url)
        assert client.run(problem).holds  # prime the warm runtime

        def warm():
            for _ in range(SERVICE_QUERIES):
                assert client.run(problem).holds

        benchmark.pedantic(warm, rounds=3, iterations=1)
    finally:
        server.stop()
    warm_seconds = benchmark.stats.stats.min

    row = {
        "benchmark": f"service/verify-bv10-x{SERVICE_QUERIES}",
        "warm_s": round(warm_seconds, 4),
        "cold_s": round(cold_seconds, 4),
        "speedup": round(cold_seconds / warm_seconds, 1) if warm_seconds else 0.0,
    }
    benchmark.extra_info.update(row)
    print("  " + "  ".join(f"{key}={value}" for key, value in row.items()))
    assert warm_seconds < cold_seconds
