"""Campaign engine throughput: serial vs. multi-worker bug hunting.

The paper's bug-hunting evaluation (Table 3) sweeps hundreds of mutated
circuit copies; this benchmark measures how fast the campaign runner gets
through a 100-mutant Grover hunt with 1, 2 and 4 worker processes.  The cache
is disabled so every job performs a real verification — the expected shape is
near-linear scaling until the per-job cost is dwarfed by pool overhead.  On a
single-CPU machine (the ``cpus`` column) the worker rows are expected to be
flat: the pool can only timeslice one core.  A separate row measures the fully
cached re-run, which should be orders of magnitude faster than any worker
count.
"""

import os

import pytest

from repro.campaign import CampaignConfig, run_campaign

MUTANTS = 100


def _config(tmp_path, workers: int, cache_dir: str = "") -> CampaignConfig:
    return CampaignConfig(
        family="grover",
        mutants=MUTANTS,
        mutation_kinds=("insert", "remove", "swap-operands"),
        workers=workers,
        report_path=str(tmp_path / f"campaign_w{workers}.jsonl"),
        cache_dir=cache_dir,
    )


def _run_row(benchmark, tmp_path, workers: int, cache_dir: str = ""):
    summary = benchmark.pedantic(
        run_campaign,
        args=(_config(tmp_path, workers, cache_dir),),
        rounds=1,
        iterations=1,
    )
    row = {
        "benchmark": f"campaign/{summary.benchmark}",
        "workers": workers,
        "cpus": os.cpu_count(),
        "jobs": summary.jobs,
        "violated": summary.violated,
        "cache_hits": summary.cache_hits,
        "wall_s": round(summary.wall_seconds, 3),
        "analysis_s": round(summary.analysis_seconds, 3),
        "jobs_per_s": round(summary.jobs / summary.wall_seconds, 1) if summary.wall_seconds else 0.0,
    }
    benchmark.extra_info.update(row)
    print("  " + "  ".join(f"{key}={value}" for key, value in row.items()))
    return summary


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_campaign_grover_100_mutants(benchmark, tmp_path, workers):
    summary = _run_row(benchmark, tmp_path, workers)
    assert summary.jobs == MUTANTS + 1
    assert summary.errors == 0


def test_campaign_grover_cached_rerun(benchmark, tmp_path):
    cache_dir = str(tmp_path / "cache")
    first = run_campaign(_config(tmp_path, workers=1, cache_dir=cache_dir))
    assert first.cache_hits == 0
    summary = _run_row(benchmark, tmp_path, workers=1, cache_dir=cache_dir)
    assert summary.cache_hits == summary.jobs
