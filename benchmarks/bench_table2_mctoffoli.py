"""Table 2 / MCToffoli rows: multi-controlled Toffoli over all classical inputs.

Paper setting: n = 8..16 (16..32 qubits, 2n-1 gates); AutoQ-Hybrid finishes in
fractions of a second because every gate stays in the permutation-based
fragment, while AutoQ-Composition and SliQSim blow up with 2^n.  The shape to
check: Hybrid is near-instant and scales to the largest sizes, Composition is
markedly slower, the simulator sweep grows ~2^(n+1).
"""

import pytest

from repro.baselines import PathSumChecker
from repro.benchgen import mctoffoli_benchmark
from repro.core import AnalysisMode

from conftest import run_simulator_sweep_row, run_verification_row

HYBRID_SIZES = [4, 8, 12, 16]
COMPOSITION_SIZES = [3, 4]


@pytest.mark.parametrize("size", HYBRID_SIZES)
def test_mctoffoli_hybrid(benchmark, size):
    row = run_verification_row(benchmark, mctoffoli_benchmark(size), AnalysisMode.HYBRID)
    assert row["verdict"] == "holds"


@pytest.mark.parametrize("size", COMPOSITION_SIZES)
def test_mctoffoli_composition(benchmark, size):
    run_verification_row(benchmark, mctoffoli_benchmark(size), AnalysisMode.COMPOSITION)


@pytest.mark.parametrize("size", [4, 6])
def test_mctoffoli_simulator_baseline(benchmark, size):
    run_simulator_sweep_row(benchmark, mctoffoli_benchmark(size))


@pytest.mark.parametrize("size", [4, 8])
def test_mctoffoli_pathsum_self_equivalence(benchmark, size):
    """The Feynman column: MCToffoli circuits are purely classical, so the
    path-sum checker resolves them instantly."""
    bench = mctoffoli_benchmark(size)
    result = benchmark.pedantic(
        PathSumChecker().check_equivalence, args=(bench.circuit, bench.circuit.copy()),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update({"benchmark": bench.name, "pathsum": result.verdict})
    print(f"\n[{bench.name} | pathsum self-equivalence] verdict={result.verdict}")
    assert result.verdict == "equal"
