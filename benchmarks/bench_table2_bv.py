"""Table 2 / BV rows: verification of Bernstein-Vazirani against pre/post-conditions.

Paper setting: n = 95..99 (96..100 qubits), AutoQ-Hybrid ~6s, AutoQ-Composition
~7s, SliQSim ~0.0s (single input), Feynman ~0.5s.  Scaled-down sizes are used
here (pure-Python substrate); the shape to check is that every verification
holds, that Hybrid is faster than Composition, and that the TA sizes stay
linear in n.
"""

import pytest

from repro.baselines import PathSumChecker
from repro.benchgen import bv_benchmark
from repro.core import AnalysisMode

from conftest import run_simulator_sweep_row, run_verification_row

HYBRID_SIZES = [8, 16, 24, 32]
COMPOSITION_SIZES = [8, 16]


@pytest.mark.parametrize("size", HYBRID_SIZES)
def test_bv_hybrid(benchmark, size):
    run_verification_row(benchmark, bv_benchmark(size), AnalysisMode.HYBRID)


@pytest.mark.parametrize("size", COMPOSITION_SIZES)
def test_bv_composition(benchmark, size):
    run_verification_row(benchmark, bv_benchmark(size), AnalysisMode.COMPOSITION)


@pytest.mark.parametrize("size", [8, 16])
def test_bv_simulator_baseline(benchmark, size):
    run_simulator_sweep_row(benchmark, bv_benchmark(size))


@pytest.mark.parametrize("size", [8, 16])
def test_bv_pathsum_self_equivalence(benchmark, size):
    """The Feynman column of Table 2: equivalence of the circuit with itself."""
    bench = bv_benchmark(size)
    result = benchmark.pedantic(
        PathSumChecker().check_equivalence, args=(bench.circuit, bench.circuit.copy()),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update({"benchmark": bench.name, "pathsum": result.verdict})
    print(f"\n[{bench.name} | pathsum self-equivalence] verdict={result.verdict}")
    assert result.verdict == "equal"
