"""Shared helpers for the benchmark harness.

Every benchmark regenerates one row family of the paper's evaluation
(Tables 2 and 3).  The helpers here keep the individual files small: they run
the verification / bug-hunting pipelines once (pytest-benchmark pedantic mode,
a single round — the workloads are far too heavy for repeated rounds), attach
the paper-style row to ``benchmark.extra_info`` and print it so that running
``pytest benchmarks/ --benchmark-only -s`` reproduces the tables on stdout.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Tuple

import pytest

from repro.core import AnalysisMode, verify_triple
from repro.simulator import StateVectorSimulator


def stable_seed(name: str) -> int:
    """A per-workload seed that is identical across runs and machines.

    ``hash(str)`` is randomised per interpreter process, so benchmark rows
    derived from it would inject a *different* bug every run; CRC32 keeps the
    workloads reproducible.
    """
    return zlib.crc32(name.encode("utf-8")) % 10_000


def stable_basis(name: str, num_qubits: int) -> Tuple[int, ...]:
    """A reproducible pseudo-random basis input used to start the bug hunt."""
    rng = random.Random(stable_seed(name) + 1)
    return tuple(rng.randint(0, 1) for _ in range(num_qubits))


def run_verification_row(benchmark, bench, mode: str = AnalysisMode.HYBRID) -> Dict[str, object]:
    """Verify a :class:`VerificationBenchmark` once and record a Table 2 style row."""
    result = benchmark.pedantic(
        verify_triple,
        args=(bench.precondition, bench.circuit, bench.postcondition),
        kwargs={"mode": mode},
        rounds=1,
        iterations=1,
    )
    row = {
        "benchmark": bench.name,
        "mode": mode,
        "qubits": bench.circuit.num_qubits,
        "gates": bench.circuit.num_gates,
        "before": bench.precondition.size_summary(),
        "after": result.output.size_summary(),
        "analysis_s": round(result.statistics.analysis_seconds, 3),
        "equality_s": round(result.comparison_seconds, 3),
        "verdict": "holds" if result.holds else "VIOLATED",
    }
    benchmark.extra_info.update(row)
    print(
        f"\n[{bench.name} | {mode}] #q={row['qubits']} #G={row['gates']} "
        f"before={row['before']} after={row['after']} "
        f"analysis={row['analysis_s']}s == {row['equality_s']}s -> {row['verdict']}"
    )
    assert result.holds, f"{bench.name} verification must hold"
    return row


def run_simulator_sweep_row(benchmark, bench) -> Dict[str, object]:
    """The SliQSim-style baseline for Table 2: one exact simulation per input state."""
    simulator = StateVectorSimulator()
    inputs = bench.precondition.enumerate_states()

    def sweep():
        for state in inputs:
            simulator.run(bench.circuit, state)
        return len(inputs)

    count = benchmark.pedantic(sweep, rounds=1, iterations=1)
    row = {"benchmark": bench.name, "mode": "simulator-sweep", "inputs": count}
    benchmark.extra_info.update(row)
    print(f"\n[{bench.name} | simulator] swept {count} input state(s)")
    return row


@pytest.fixture
def bughunt_row():
    """Record and print a Table 3 style row for one bug-hunting outcome."""

    def record(benchmark, name, circuit, hunt, pathsum_verdict, stimuli_verdict):
        row = {
            "circuit": name,
            "qubits": circuit.num_qubits,
            "gates": circuit.num_gates,
            "autoq_bug_found": hunt.bug_found,
            "autoq_iterations": hunt.iterations,
            "autoq_seconds": round(hunt.total_seconds, 3),
            "pathsum": pathsum_verdict,
            "stimuli": stimuli_verdict,
        }
        benchmark.extra_info.update(row)
        print(
            f"\n[{name}] #q={row['qubits']} #G={row['gates']} | "
            f"AutoQ: bug={'T' if hunt.bug_found else 'F'} iter={hunt.iterations} "
            f"{row['autoq_seconds']}s | pathsum={pathsum_verdict} | stimuli={stimuli_verdict}"
        )
        return row

    return record
