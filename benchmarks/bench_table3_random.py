"""Table 3 / Random rows: bug finding in random Clifford+T circuits.

Paper setting: 10 circuits with 35 qubits / 105 gates and 10 with 70 qubits /
210 gates (gate kinds and operands uniformly random, #gates = 3 * #qubits),
one random gate injected.  AutoQ finds every bug (two instances need 36 / 44
input-TA iterations); Feynman and Qcec each miss or mis-answer several rows.
Scaled-down widths are used here; the shape to check is that the hunter finds
every bug and that occasionally more than one iteration is needed.
"""

import pytest

from repro.baselines import PathSumChecker, RandomStimuliChecker
from repro.benchgen import VerificationBenchmark  # noqa: F401  (documentation import)
from repro.circuits import inject_random_gate, random_benchmark_suite
from repro.core import IncrementalBugHunter

from conftest import stable_basis, stable_seed

SMALL = random_benchmark_suite(7, count=5, seed=35)
LARGE = random_benchmark_suite(10, count=5, seed=70)
SUITE = {circuit.name: circuit for circuit in SMALL + LARGE}


@pytest.mark.parametrize("name", sorted(SUITE))
def test_random_bughunt(benchmark, bughunt_row, name):
    circuit = SUITE[name]
    buggy, _mutation = inject_random_gate(circuit, seed=stable_seed(name))
    hunter = IncrementalBugHunter(seed=3, max_iterations=3 * (circuit.num_qubits + 1))

    hunt = benchmark.pedantic(
        hunter.hunt,
        args=(circuit, buggy),
        kwargs={"initial_basis": stable_basis(name, circuit.num_qubits)},
        rounds=1,
        iterations=1,
    )
    pathsum = PathSumChecker(max_monomials=2000).check_equivalence(circuit, buggy)
    stimuli = RandomStimuliChecker(num_stimuli=8, seed=4).check_equivalence(circuit, buggy)
    bughunt_row(benchmark, name, circuit, hunt, pathsum.verdict, stimuli.verdict)
    assert hunt.bug_found, f"AutoQ-style hunter must find the injected bug in {name}"
