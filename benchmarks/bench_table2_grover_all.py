"""Table 2 / Grover-All rows: Grover's search over all 2^n oracles at once.

Paper setting: n = 6..10 (18..30 qubits); this family (together with
MCToffoli) is where the exponential factor hits the simulator baseline — it
has to run once per oracle — while the TA analysis covers the whole set in a
single symbolic run.  Scaled-down sizes; the shape to check is that the
TA-based verification holds and that the simulator-sweep cost grows ~2^n while
the TA analysis grows much more slowly.
"""

import pytest

from repro.benchgen import grover_all_benchmark
from repro.core import AnalysisMode

from conftest import run_simulator_sweep_row, run_verification_row

HYBRID_SIZES = [2, 3, 4]
COMPOSITION_SIZES = [2]


@pytest.mark.parametrize("size", HYBRID_SIZES)
def test_grover_all_hybrid(benchmark, size):
    run_verification_row(benchmark, grover_all_benchmark(size), AnalysisMode.HYBRID)


@pytest.mark.parametrize("size", COMPOSITION_SIZES)
def test_grover_all_composition(benchmark, size):
    run_verification_row(benchmark, grover_all_benchmark(size), AnalysisMode.COMPOSITION)


@pytest.mark.parametrize("size", [2, 3])
def test_grover_all_simulator_baseline(benchmark, size):
    run_simulator_sweep_row(benchmark, grover_all_benchmark(size))
