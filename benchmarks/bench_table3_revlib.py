"""Table 3 / RevLib rows: bug finding in reversible-logic circuits.

Paper setting: adders up to 320 qubits, cycle/rd/ham parity circuits, hwb and
urf unstructured reversible functions, each with one injected gate; AutoQ
finds every bug (the largest, avg8_325 with 320 qubits, in ~21 min) while
Feynman times out on most large rows and Qcec returns unknown on several.
Scaled-down generated families (see DESIGN.md for the substitution); the shape
to check is that the hunter finds every injected bug and that the purely
classical rows are also decided by the path-sum baseline.
"""

import pytest

from repro.baselines import PathSumChecker, RandomStimuliChecker
from repro.benchgen import revlib_suite
from repro.circuits import inject_random_gate
from repro.core import IncrementalBugHunter

from conftest import stable_basis, stable_seed

SUITE = revlib_suite()


@pytest.mark.parametrize("name", sorted(SUITE))
def test_revlib_bughunt(benchmark, bughunt_row, name):
    circuit = SUITE[name].decomposed()
    buggy, _mutation = inject_random_gate(circuit, seed=stable_seed(name))
    hunter = IncrementalBugHunter(seed=5, max_iterations=3 * (circuit.num_qubits + 1))

    hunt = benchmark.pedantic(
        hunter.hunt,
        args=(circuit, buggy),
        kwargs={"initial_basis": stable_basis(name, circuit.num_qubits)},
        rounds=1,
        iterations=1,
    )
    pathsum = PathSumChecker().check_equivalence(circuit, buggy)
    stimuli = RandomStimuliChecker(num_stimuli=8, seed=6).check_equivalence(circuit, buggy)
    bughunt_row(benchmark, name, circuit, hunt, pathsum.verdict, stimuli.verdict)
    assert hunt.bug_found, f"AutoQ-style hunter must find the injected bug in {name}"
