"""Micro-benchmarks for the TA kernel hot path: ``binary_operation``,
``restrict`` and ``reduce`` at several qubit sizes.

The workloads are plain ``(setup, run)`` pairs in :data:`KERNEL_WORKLOADS` so
that the perf-regression harness (``scripts/bench_compare.py``) can time them
without pytest; the ``test_*`` wrappers below expose the same workloads to
``pytest benchmarks/bench_kernel.py --benchmark-only``.

Every setup starts from cleared per-process kernel caches (intern tables and,
when the kernel provides one, the reduce cache), so a measurement never
credits work done by a previous workload.  The ``reduce/warm`` rows re-reduce
an automaton that was already reduced once after the cache reset — the
"consecutive gate applications see the same automaton" case the signature
cache is built for.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Tuple

import pytest

from repro.core.composition import binary_operation, restrict
from repro.core.tagging import tag
from repro.states import QuantumState
from repro.ta import from_quantum_states
from repro.ta import automaton as automaton_module

#: qubit sizes exercised by every micro-benchmark family
KERNEL_SIZES = (5, 7, 9)


def clear_kernel_caches() -> None:
    """Reset every per-process kernel cache (works on pre- and post-PR3 kernels)."""
    automaton_module.clear_intern_tables()
    clear_reduce = getattr(automaton_module, "clear_reduce_cache", None)
    if clear_reduce is not None:
        clear_reduce()
    from repro.core import engine as engine_module

    clear_gates = getattr(engine_module, "clear_gate_cache", None)
    if clear_gates is not None:
        clear_gates()


def stacked_basis_ta(num_qubits: int, count: int, seed: int = 7):
    """A deliberately redundant TA: ``count`` distinct basis states, unreduced.

    ``from_quantum_states(..., reduce=False)`` keeps one disjoint branch per
    state, so the automaton has ~``count * num_qubits`` states with massive
    merge potential — exactly the shape ``reduce`` sees mid-pipeline.
    """
    rng = random.Random(seed)
    count = min(count, 2**num_qubits)
    seen = set()
    states = []
    while len(states) < count:
        bits = tuple(rng.randint(0, 1) for _ in range(num_qubits))
        if bits in seen:
            continue
        seen.add(bits)
        states.append(QuantumState.basis_state(num_qubits, bits))
    return from_quantum_states(states, reduce=False)


def _setup_restrict(num_qubits: int):
    automaton = tag(stacked_basis_ta(num_qubits, 24))
    clear_kernel_caches()
    return automaton


def _setup_binary_operation(num_qubits: int):
    tagged = tag(stacked_basis_ta(num_qubits, 24))
    operands = (restrict(tagged, 0, 1), restrict(tagged, 0, 0))
    clear_kernel_caches()
    return operands


def _setup_reduce(num_qubits: int):
    automaton = stacked_basis_ta(num_qubits, 24)
    clear_kernel_caches()
    return automaton


def _setup_reduce_warm(num_qubits: int):
    automaton = stacked_basis_ta(num_qubits, 24)
    clear_kernel_caches()
    automaton.reduce()
    return automaton


#: qubit sizes for the per-backend rows (grover-hybrid scale automata)
BACKEND_SIZES = (8, 9)
#: stacked basis states per operand at each backend size
_BACKEND_STACK = {8: 48, 9: 80}


def _backend_names() -> Tuple[str, ...]:
    from repro.ta import kernel as ta_kernel

    return ta_kernel.available_backends()


def _union_stacked_ta(num_qubits: int, count: int, seed: int):
    """A union chain of random basis states, relabelled to contiguous ids.

    Unlike :func:`stacked_basis_ta` this duplicates the suffix layers of every
    branch, producing the deeply redundant shape the mid-pipeline reductions
    see after a gate product.
    """
    from repro.ta import basis_state_ta

    rng = random.Random(seed)
    automaton = basis_state_ta(num_qubits, rng.randrange(2**num_qubits))
    for _ in range(count - 1):
        automaton = automaton.union(
            basis_state_ta(num_qubits, rng.randrange(2**num_qubits))
        )
    return automaton.relabelled()


def _backend_operands(num_qubits: int):
    count = _BACKEND_STACK[num_qubits]
    return (
        _union_stacked_ta(num_qubits, count, seed=3),
        _union_stacked_ta(num_qubits, count, seed=11),
    )


def _setup_backend_useless(num_qubits: int, backend_name: str):
    """A union product — ``remove_useless`` exactly as it runs after a gate.

    The product is built *by the backend under test*, as the engine does: the
    vectorized backend hands its own product (with the attached array form) to
    ``remove_useless``, which is the fused mid-pipeline case being measured.
    """
    from repro.ta import kernel as ta_kernel

    left, right = _backend_operands(num_qubits)
    backend = ta_kernel.get_backend(backend_name)
    product = backend.binary_operation(left, right)
    clear_kernel_caches()
    return backend, product


def _setup_backend_reduce(num_qubits: int, backend_name: str):
    """The useless-free product — massively mergeable suffix layers.

    Built by the backend under test so the vectorized reduce sees the fused
    array form its own pipeline produces (see :func:`_setup_backend_useless`).
    """
    from repro.ta import kernel as ta_kernel

    left, right = _backend_operands(num_qubits)
    backend = ta_kernel.get_backend(backend_name)
    useless_free = backend.remove_useless(backend.binary_operation(left, right))
    useless_free._state_depths()
    clear_kernel_caches()
    return backend, useless_free


def _setup_backend_pipeline(num_qubits: int, backend_name: str):
    """Both operands, raw: the run times product -> prune -> reduce fused."""
    from repro.ta import kernel as ta_kernel

    left, right = _backend_operands(num_qubits)
    backend = ta_kernel.get_backend(backend_name)
    clear_kernel_caches()
    return backend, left, right


def _run_backend_pipeline(state):
    backend, left, right = state
    useless_free = backend.remove_useless(backend.binary_operation(left, right))
    useless_free._state_depths()
    return backend.reduce_layered(useless_free)


def _pinned_reference(run: Callable[[Any], Any]) -> Callable[[Any], Any]:
    """Run a legacy micro-row under the reference kernel regardless of the
    process-wide selection: these rows have tracked the pure-Python kernel
    since before backends were pluggable, and their committed baselines must
    keep measuring that same code path (the backend comparison has its own
    ``kernel/backend-*`` rows)."""

    def pinned(state):
        from repro.ta import kernel as ta_kernel

        with ta_kernel.use_backend("reference"):
            return run(state)

    return pinned


def _build_workloads() -> Dict[str, Tuple[Callable[[], Any], Callable[[Any], Any]]]:
    workloads: Dict[str, Tuple[Callable[[], Any], Callable[[Any], Any]]] = {}
    for n in KERNEL_SIZES:
        workloads[f"kernel/restrict/n{n}"] = (
            lambda n=n: _setup_restrict(n),
            _pinned_reference(lambda a, n=n: restrict(a, n // 2, 1)),
        )
        workloads[f"kernel/binary_operation/n{n}"] = (
            lambda n=n: _setup_binary_operation(n),
            _pinned_reference(lambda operands: binary_operation(operands[0], operands[1])),
        )
        workloads[f"kernel/reduce/n{n}"] = (
            lambda n=n: _setup_reduce(n),
            _pinned_reference(lambda a: a.reduce()),
        )
        workloads[f"kernel/reduce-warm/n{n}"] = (
            lambda n=n: _setup_reduce_warm(n),
            _pinned_reference(lambda a: a.reduce()),
        )
    # per-backend rows: identical inputs, one row per available kernel backend.
    # The /<backend> suffix keeps these out of the CI smoke subset (which
    # selects rows ending "/n5") — they are the slow, speedup-proving rows.
    for n in BACKEND_SIZES:
        for backend_name in _backend_names():
            workloads[f"kernel/backend-useless/n{n}/{backend_name}"] = (
                lambda n=n, b=backend_name: _setup_backend_useless(n, b),
                lambda state: state[0].remove_useless(state[1]),
            )
            workloads[f"kernel/backend-reduce/n{n}/{backend_name}"] = (
                lambda n=n, b=backend_name: _setup_backend_reduce(n, b),
                lambda state: state[0].reduce_layered(state[1]),
            )
            workloads[f"kernel/backend-pipeline/n{n}/{backend_name}"] = (
                lambda n=n, b=backend_name: _setup_backend_pipeline(n, b),
                _run_backend_pipeline,
            )
    return workloads


#: workload name -> (setup, run); run(setup()) is the measured operation
KERNEL_WORKLOADS = _build_workloads()


@pytest.mark.parametrize("name", sorted(KERNEL_WORKLOADS))
def test_kernel_microbench(benchmark, name):
    setup, run = KERNEL_WORKLOADS[name]
    benchmark.extra_info["workload"] = name
    benchmark.pedantic(run, setup=lambda: ((setup(),), {}), rounds=3, iterations=1)
