"""Micro-benchmarks for the TA kernel hot path: ``binary_operation``,
``restrict`` and ``reduce`` at several qubit sizes.

The workloads are plain ``(setup, run)`` pairs in :data:`KERNEL_WORKLOADS` so
that the perf-regression harness (``scripts/bench_compare.py``) can time them
without pytest; the ``test_*`` wrappers below expose the same workloads to
``pytest benchmarks/bench_kernel.py --benchmark-only``.

Every setup starts from cleared per-process kernel caches (intern tables and,
when the kernel provides one, the reduce cache), so a measurement never
credits work done by a previous workload.  The ``reduce/warm`` rows re-reduce
an automaton that was already reduced once after the cache reset — the
"consecutive gate applications see the same automaton" case the signature
cache is built for.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Tuple

import pytest

from repro.core.composition import binary_operation, restrict
from repro.core.tagging import tag
from repro.states import QuantumState
from repro.ta import from_quantum_states
from repro.ta import automaton as automaton_module

#: qubit sizes exercised by every micro-benchmark family
KERNEL_SIZES = (5, 7, 9)


def clear_kernel_caches() -> None:
    """Reset every per-process kernel cache (works on pre- and post-PR3 kernels)."""
    automaton_module.clear_intern_tables()
    clear_reduce = getattr(automaton_module, "clear_reduce_cache", None)
    if clear_reduce is not None:
        clear_reduce()
    from repro.core import engine as engine_module

    clear_gates = getattr(engine_module, "clear_gate_cache", None)
    if clear_gates is not None:
        clear_gates()


def stacked_basis_ta(num_qubits: int, count: int, seed: int = 7):
    """A deliberately redundant TA: ``count`` distinct basis states, unreduced.

    ``from_quantum_states(..., reduce=False)`` keeps one disjoint branch per
    state, so the automaton has ~``count * num_qubits`` states with massive
    merge potential — exactly the shape ``reduce`` sees mid-pipeline.
    """
    rng = random.Random(seed)
    count = min(count, 2**num_qubits)
    seen = set()
    states = []
    while len(states) < count:
        bits = tuple(rng.randint(0, 1) for _ in range(num_qubits))
        if bits in seen:
            continue
        seen.add(bits)
        states.append(QuantumState.basis_state(num_qubits, bits))
    return from_quantum_states(states, reduce=False)


def _setup_restrict(num_qubits: int):
    automaton = tag(stacked_basis_ta(num_qubits, 24))
    clear_kernel_caches()
    return automaton


def _setup_binary_operation(num_qubits: int):
    tagged = tag(stacked_basis_ta(num_qubits, 24))
    operands = (restrict(tagged, 0, 1), restrict(tagged, 0, 0))
    clear_kernel_caches()
    return operands


def _setup_reduce(num_qubits: int):
    automaton = stacked_basis_ta(num_qubits, 24)
    clear_kernel_caches()
    return automaton


def _setup_reduce_warm(num_qubits: int):
    automaton = stacked_basis_ta(num_qubits, 24)
    clear_kernel_caches()
    automaton.reduce()
    return automaton


def _build_workloads() -> Dict[str, Tuple[Callable[[], Any], Callable[[Any], Any]]]:
    workloads: Dict[str, Tuple[Callable[[], Any], Callable[[Any], Any]]] = {}
    for n in KERNEL_SIZES:
        workloads[f"kernel/restrict/n{n}"] = (
            lambda n=n: _setup_restrict(n),
            lambda a, n=n: restrict(a, n // 2, 1),
        )
        workloads[f"kernel/binary_operation/n{n}"] = (
            lambda n=n: _setup_binary_operation(n),
            lambda operands: binary_operation(operands[0], operands[1]),
        )
        workloads[f"kernel/reduce/n{n}"] = (
            lambda n=n: _setup_reduce(n),
            lambda a: a.reduce(),
        )
        workloads[f"kernel/reduce-warm/n{n}"] = (
            lambda n=n: _setup_reduce_warm(n),
            lambda a: a.reduce(),
        )
    return workloads


#: workload name -> (setup, run); run(setup()) is the measured operation
KERNEL_WORKLOADS = _build_workloads()


@pytest.mark.parametrize("name", sorted(KERNEL_WORKLOADS))
def test_kernel_microbench(benchmark, name):
    setup, run = KERNEL_WORKLOADS[name]
    benchmark.extra_info["workload"] = name
    benchmark.pedantic(run, setup=lambda: ((setup(),), {}), rounds=3, iterations=1)
