"""Extension-family rows: approximate QFT, GHZ and Bell-chain verification.

These are not tables of the paper — they exercise the controlled-phase gate
extension (cs/csdg/ct/ctdg) and the entangled-state preparations built on the
paper's running example (Fig. 1).  The shape to check mirrors Table 2: the
verification holds on every size, the output TAs stay small (linear for GHZ /
Bell chains, single-state for QFT-zero) and Hybrid is not slower than
Composition.
"""

import pytest

from repro.benchgen import (
    adder_benchmark,
    bell_chain_benchmark,
    ghz_benchmark,
    qft_roundtrip_benchmark,
    qft_zero_benchmark,
)
from repro.core import AnalysisMode

from conftest import run_verification_row

GHZ_SIZES = [4, 8, 12]
BELL_CHAIN_SIZES = [2, 4, 6]
QFT_ZERO_SIZES = [3, 4, 5]
QFT_ROUNDTRIP_SIZES = [3, 4]
ADDER_SIZES = [2, 3]


@pytest.mark.parametrize("size", GHZ_SIZES)
def test_ghz_hybrid(benchmark, size):
    run_verification_row(benchmark, ghz_benchmark(size), AnalysisMode.HYBRID)


@pytest.mark.parametrize("size", BELL_CHAIN_SIZES)
def test_bell_chain_hybrid(benchmark, size):
    run_verification_row(benchmark, bell_chain_benchmark(size), AnalysisMode.HYBRID)


@pytest.mark.parametrize("size", QFT_ZERO_SIZES)
def test_qft_zero_hybrid(benchmark, size):
    run_verification_row(benchmark, qft_zero_benchmark(size), AnalysisMode.HYBRID)


@pytest.mark.parametrize("size", QFT_ZERO_SIZES[:2])
def test_qft_zero_composition(benchmark, size):
    run_verification_row(benchmark, qft_zero_benchmark(size), AnalysisMode.COMPOSITION)


@pytest.mark.parametrize("size", QFT_ROUNDTRIP_SIZES)
def test_qft_roundtrip_hybrid(benchmark, size):
    run_verification_row(benchmark, qft_roundtrip_benchmark(size), AnalysisMode.HYBRID)


@pytest.mark.parametrize("size", ADDER_SIZES)
def test_adder_hybrid(benchmark, size):
    run_verification_row(benchmark, adder_benchmark(size), AnalysisMode.HYBRID)
