"""Table 2 / Grover-Sing rows: Grover's search with a single hidden string.

Paper setting: n = 12..20 (24..40 qubits, up to 141,527 gates); AutoQ-Hybrid
verifies n=20 in ~11 min while SliQSim and Feynman time out.  Scaled-down
sizes are used here; the shape to check is that verification holds for every
size, Hybrid beats Composition, and the analysis cost grows with the number of
Grover iterations (gates) rather than with 2^n.
"""

import pytest

from repro.benchgen import grover_single_benchmark
from repro.core import AnalysisMode

from conftest import run_simulator_sweep_row, run_verification_row

HYBRID_SIZES = [3, 4, 5]
COMPOSITION_SIZES = [2, 3]


@pytest.mark.parametrize("size", HYBRID_SIZES)
def test_grover_single_hybrid(benchmark, size):
    run_verification_row(benchmark, grover_single_benchmark(size), AnalysisMode.HYBRID)


@pytest.mark.parametrize("size", COMPOSITION_SIZES)
def test_grover_single_composition(benchmark, size):
    run_verification_row(benchmark, grover_single_benchmark(size), AnalysisMode.COMPOSITION)


@pytest.mark.parametrize("size", [3, 4])
def test_grover_single_simulator_baseline(benchmark, size):
    run_simulator_sweep_row(benchmark, grover_single_benchmark(size))
