"""Fig. 1 (overview example): the Bell-state triple and its TA encodings.

Not an evaluation table, but the paper's running example: { |00> } EPR { Bell }.
The benchmark measures the end-to-end verification (both engine modes) and the
sizes of the pre/post TAs shown in Fig. 1a / 1b.
"""

import pytest

from repro.circuits import Circuit
from repro.core import AnalysisMode, bell_postcondition, verify_triple, zero_state_precondition


def _epr() -> Circuit:
    return Circuit(2, name="epr").add("h", 0).add("cx", 0, 1)


@pytest.mark.parametrize("mode", [AnalysisMode.HYBRID, AnalysisMode.COMPOSITION])
def test_bell_verification(benchmark, mode):
    precondition = zero_state_precondition(2)
    postcondition = bell_postcondition()
    result = benchmark.pedantic(
        verify_triple, args=(precondition, _epr(), postcondition), kwargs={"mode": mode},
        rounds=3, iterations=1,
    )
    benchmark.extra_info.update(
        {
            "mode": mode,
            "pre_ta": precondition.size_summary(),
            "post_ta": postcondition.size_summary(),
            "output_ta": result.output.size_summary(),
        }
    )
    print(f"\n[Fig.1 Bell | {mode}] pre={precondition.size_summary()} "
          f"post={postcondition.size_summary()} output={result.output.size_summary()}")
    assert result.holds


def test_bell_bug_witness(benchmark):
    """The diagnosis path of the overview: a buggy EPR circuit yields a witness."""
    buggy = Circuit(2, name="epr_buggy").add("h", 0)
    result = benchmark.pedantic(
        verify_triple, args=(zero_state_precondition(2), buggy, bell_postcondition()),
        rounds=3, iterations=1,
    )
    assert not result.holds
    assert result.witness is not None
