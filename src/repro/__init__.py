"""repro — an automata-based framework for verification and bug hunting in quantum circuits.

This package reproduces the system described in "An Automata-Based Framework
for Verification and Bug Hunting in Quantum Circuits" (PLDI 2023, the AutoQ
tool): sets of quantum states are represented by tree automata with exact
algebraic amplitudes, quantum gates become automata transformers, and
``{P} C {Q}`` triples are decided by language equivalence / inclusion.

Quickstart::

    from repro import (
        Circuit, verify_triple, zero_state_precondition, bell_postcondition,
    )

    epr = Circuit(2).add("h", 0).add("cx", 0, 1)
    result = verify_triple(zero_state_precondition(2), epr, bell_postcondition())
    assert result.holds
"""

from .algebraic import OMEGA, ONE, SQRT2_INV, ZERO, AlgebraicNumber
from .circuits import (
    Circuit,
    Gate,
    inject_random_gate,
    parse_qasm,
    random_circuit,
    to_qasm,
)
from .core import (
    AnalysisMode,
    BugHuntResult,
    CircuitEngine,
    IncrementalBugHunter,
    NonEquivalenceResult,
    VerificationResult,
    apply_gate_to_state,
    basis_state_precondition,
    bell_postcondition,
    check_circuit_equivalence,
    classical_product_condition,
    run_circuit,
    states_condition,
    verify_triple,
    zero_state_precondition,
)
from .simulator import StateVectorSimulator, simulate_circuit
from .states import QuantumState
from .ta import (
    TreeAutomaton,
    all_basis_states_ta,
    basis_product_ta,
    basis_state_ta,
    check_equivalence,
    check_inclusion,
    from_quantum_state,
    from_quantum_states,
)

# the typed service layer (imported last: it builds on everything above);
# result classes live under repro.api to avoid name collisions with the
# legacy core result types (e.g. repro.BugHuntResult vs repro.api.BugHuntResult)
from . import api
from .api import (
    API_VERSION,
    BugHuntProblem,
    CampaignProblem,
    CircuitSource,
    ConditionSpec,
    EquivalenceProblem,
    Problem,
    Session,
    SessionConfig,
    SimulateProblem,
    VerifyProblem,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # service layer (see repro.api for the result types)
    "api",
    "API_VERSION",
    "Session",
    "SessionConfig",
    "Problem",
    "CircuitSource",
    "ConditionSpec",
    "VerifyProblem",
    "EquivalenceProblem",
    "BugHuntProblem",
    "CampaignProblem",
    "SimulateProblem",
    # algebraic amplitudes
    "AlgebraicNumber",
    "ZERO",
    "ONE",
    "OMEGA",
    "SQRT2_INV",
    # circuits
    "Circuit",
    "Gate",
    "parse_qasm",
    "to_qasm",
    "random_circuit",
    "inject_random_gate",
    # states and simulation
    "QuantumState",
    "StateVectorSimulator",
    "simulate_circuit",
    # tree automata
    "TreeAutomaton",
    "basis_state_ta",
    "all_basis_states_ta",
    "basis_product_ta",
    "from_quantum_state",
    "from_quantum_states",
    "check_inclusion",
    "check_equivalence",
    # core analysis
    "AnalysisMode",
    "CircuitEngine",
    "run_circuit",
    "verify_triple",
    "VerificationResult",
    "check_circuit_equivalence",
    "NonEquivalenceResult",
    "IncrementalBugHunter",
    "BugHuntResult",
    "apply_gate_to_state",
    "zero_state_precondition",
    "basis_state_precondition",
    "classical_product_condition",
    "states_condition",
    "bell_postcondition",
]
