"""repro.api — the unified, typed service layer over the whole framework.

One request/result model for every workload the paper's framework answers:

* **Problems** (:mod:`repro.api.problems`) describe *what* to run —
  :class:`VerifyProblem`, :class:`EquivalenceProblem`, :class:`BugHuntProblem`,
  :class:`SimulateProblem`, :class:`CampaignProblem`, :class:`FuzzProblem` —
  all sharing the same
  circuit-source / condition-spec envelope and serializing losslessly to JSON.
* **Sessions** (:mod:`repro.api.session`) own *how* it runs — gate store,
  caches, worker count — behind context-manager semantics, so runtime
  configuration never leaks across sessions, tests, or processes.
* **Results** (:mod:`repro.api.results`) are typed outcomes that all speak
  the one versioned JSON schema (:mod:`repro.api.schema`, stamp
  ``api_version``) shared verbatim by campaign JSONL records and ``--json``
  CLI output.

Quickstart::

    from repro.api import CircuitSource, Session, VerifyProblem

    problem = VerifyProblem(circuit=CircuitSource.from_family("grover", 2))
    with Session() as session:
        result = session.run(problem)
    assert result.holds
    document = result.to_json()        # versioned wire form
    # ... ship it; Result.from_json(document) rebuilds the typed result

See ``docs/api.md`` for the full reference and the schema versioning rules.
"""

from .problems import (
    BugHuntProblem,
    CampaignProblem,
    CircuitSource,
    ConditionSpec,
    EquivalenceProblem,
    FuzzProblem,
    Problem,
    SimulateProblem,
    VerifyProblem,
)
from .results import (
    BugHuntResult,
    CampaignResult,
    EquivalenceResult,
    ErrorResult,
    FuzzResult,
    Result,
    SimulateResult,
    ToolResult,
    VerifyResult,
)
from .schema import (
    API_VERSION,
    SchemaError,
    document_kinds,
    validate_document,
)
from .session import Session, SessionConfig

__all__ = [
    # schema
    "API_VERSION",
    "SchemaError",
    "document_kinds",
    "validate_document",
    # problems
    "Problem",
    "CircuitSource",
    "ConditionSpec",
    "VerifyProblem",
    "EquivalenceProblem",
    "BugHuntProblem",
    "SimulateProblem",
    "CampaignProblem",
    "FuzzProblem",
    # session
    "Session",
    "SessionConfig",
    # results
    "Result",
    "VerifyResult",
    "EquivalenceResult",
    "BugHuntResult",
    "SimulateResult",
    "CampaignResult",
    "FuzzResult",
    "ToolResult",
    "ErrorResult",
]
