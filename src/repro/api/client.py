"""Thin HTTP client for the verification service daemon (``repro serve``).

Speaks exactly the documents :mod:`repro.api.schema` defines — a problem
document goes out, a result document comes back, and
:meth:`repro.api.Result.from_dict` rebuilds the same typed object a local
:class:`~repro.api.Session` would have returned.  This is what the CLI's
``--server URL`` flag and the test/benchmark harnesses use; it depends only
on :mod:`urllib`, so any process that can import :mod:`repro.api` can talk
to a daemon.

Failures are first-class: every non-200 response body is an ``error``
document, surfaced as a :class:`ServiceError` carrying the typed
:class:`~repro.api.ErrorResult` — callers never parse free text.
*Transient* failures are typed too: connection refused/reset and
429/503/504 responses raise :class:`ServiceUnavailable` (a
:class:`ServiceError` subclass carrying the daemon's ``Retry-After`` hint),
and the client's :class:`~repro.faults.RetryPolicy` retries exactly that
class before giving up — see ``docs/robustness.md``.
"""

from __future__ import annotations

import itertools
import json
import os
import urllib.error
import urllib.request
from dataclasses import replace
from typing import Callable, Dict, Optional

from ..faults import DEFAULT_CLIENT_RETRY, RetryPolicy
from .problems import CampaignProblem, Problem
from .results import CampaignResult, ErrorResult, Result

__all__ = [
    "SERVER_ENV",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "default_server_url",
]

#: HTTP statuses that mean "the daemon is alive but cannot take this request
#: right now" — worth a backoff-and-retry, unlike a 400 or a 404
TRANSIENT_HTTP_STATUSES = (429, 503, 504)

#: environment variable naming a default daemon URL; the CLI's ``--server``
#: flag falls back to it, so e.g. CI can point every invocation at one daemon
SERVER_ENV = "AUTOQ_REPRO_SERVER"


class ServiceError(RuntimeError):
    """A daemon answered with an ``error`` document (or never answered).

    ``result`` is the typed :class:`ErrorResult`: ``result.error`` the
    machine slug ("saturated", "timeout", …), ``result.code`` the HTTP
    status, ``result.message`` the human detail.
    """

    def __init__(self, result: ErrorResult):
        super().__init__(f"[{result.code}] {result.error}: {result.message}")
        self.result = result


class ServiceUnavailable(ServiceError):
    """A *transient* daemon failure: retry later, nothing is wrong with the
    request itself.

    Raised for connection refused/reset (the daemon is down or restarting)
    and for 429/503/504 responses (saturated, fault-injected, or timed out).
    ``retry_after`` is the daemon's ``Retry-After`` hint in seconds when the
    response carried one, else ``None`` — the client's retry policy (and any
    external caller) can use it to pace the next attempt.
    """

    def __init__(self, result: ErrorResult, retry_after: Optional[float] = None):
        super().__init__(result)
        self.retry_after = retry_after


def _retry_after_seconds(error: urllib.error.HTTPError) -> Optional[float]:
    """The ``Retry-After`` header as seconds, if present and delta-formatted."""
    value = (error.headers.get("Retry-After") or "").strip()
    try:
        seconds = float(value)
    except ValueError:
        return None  # HTTP-date form: not worth a date parser here
    return seconds if seconds >= 0 else None


class ServiceClient:
    """One daemon endpoint (``http://host:port``) as a Python object.

    ``retry`` bounds how transient failures (:class:`ServiceUnavailable`
    only — never 4xx/5xx with a meaning) are retried before surfacing;
    pass ``RetryPolicy(attempts=1)`` to disable retries entirely.
    """

    #: distinguishes clients created in one process, for jitter derivation
    _instances = itertools.count()

    def __init__(self, base_url: str, timeout: float = 600.0,
                 retry: Optional[RetryPolicy] = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        if retry is None:
            # derive a per-client jitter seed: with the policy's default
            # seed every client in the fleet would sleep the *identical*
            # backoff sequence and re-stampede a saturated daemon in
            # lockstep.  pid + instance counter keeps the jitter distinct
            # across processes and across clients within one process, while
            # an explicitly passed policy stays fully deterministic (the
            # chaos tests rely on that).
            retry = replace(DEFAULT_CLIENT_RETRY,
                            retryable=(ServiceUnavailable,),
                            seed=hash((os.getpid(), next(self._instances))))
        self.retry = retry

    # ------------------------------------------------------------- plumbing
    def _request(self, path: str, body: Optional[Dict] = None):
        """Issue one HTTP exchange, retrying transient failures per policy."""
        return self.retry.call(self._request_once, path, body)

    def _request_once(self, path: str, body: Optional[Dict] = None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method="POST" if body is not None else "GET")
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            result = self._error_result(error)
            if error.code in TRANSIENT_HTTP_STATUSES:
                raise ServiceUnavailable(
                    result, retry_after=_retry_after_seconds(error)
                ) from None
            raise ServiceError(result) from None
        except (urllib.error.URLError, OSError) as error:
            reason = getattr(error, "reason", None) or error
            raise ServiceUnavailable(ErrorResult(
                "unreachable", f"cannot reach {url}: {reason}", 0
            )) from None

    @staticmethod
    def _error_result(error: urllib.error.HTTPError) -> ErrorResult:
        try:
            document = json.loads(error.read().decode("utf-8"))
            result = Result.from_dict(document)
            if isinstance(result, ErrorResult):
                return result
        except Exception:
            pass  # non-envelope body (proxy page, truncated read, …)
        return ErrorResult("http-error", f"HTTP {error.code}: {error.reason}", error.code)

    # ------------------------------------------------------------ endpoints
    def health(self) -> Dict:
        """The daemon's ``/healthz`` document."""
        with self._request("/healthz") as response:
            return json.loads(response.read().decode("utf-8"))

    def metrics_text(self) -> str:
        """The raw Prometheus exposition from ``/metrics``."""
        with self._request("/metrics") as response:
            return response.read().decode("utf-8")

    def run_document(self, document: Dict) -> Dict:
        """POST one problem document to ``/v1/run``; returns the result document."""
        with self._request("/v1/run", body=document) as response:
            return json.loads(response.read().decode("utf-8"))

    def run(self, problem: Problem) -> Result:
        """Remote :meth:`~repro.api.Session.run`: same typed result, over HTTP."""
        return Result.from_dict(self.run_document(problem.to_dict()))

    def run_campaign(
        self,
        problem: CampaignProblem,
        on_record: Optional[Callable[[Dict], None]] = None,
    ) -> CampaignResult:
        """Remote :meth:`~repro.api.Session.run_campaign`, streamed over SSE.

        ``on_record`` sees every ``campaign-job`` document as the daemon
        emits it; the final ``summary`` event becomes the returned
        :class:`CampaignResult`.  An in-band ``error`` event raises
        :class:`ServiceError`, exactly like a non-200 on ``/v1/run``.
        """
        with self._request("/v1/campaign/stream", body=problem.to_dict()) as response:
            for event, payload in _parse_sse(response):
                if event == "record":
                    if on_record is not None:
                        on_record(payload)
                elif event == "summary":
                    return CampaignResult.from_dict(payload)
                elif event == "error":
                    raise ServiceError(Result.from_dict(payload))
        raise ServiceError(ErrorResult(
            "protocol", "campaign stream ended without a summary event", 0
        ))


def _parse_sse(response):
    """Yield ``(event_name, json_payload)`` pairs from an SSE byte stream."""
    event = None
    data_lines = []
    for raw in response:
        line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].strip())
        elif not line:
            if event is not None and data_lines:
                yield event, json.loads("\n".join(data_lines))
            event = None
            data_lines = []


def default_server_url() -> Optional[str]:
    """The ambient daemon URL (``$AUTOQ_REPRO_SERVER``), if any."""
    return os.environ.get(SERVER_ENV) or None
