"""The :class:`Session` runtime: one object owning all run configuration.

Before this layer existed, runtime configuration was scattered — the gate
store hung off module globals (``configure_gate_store``), cache directories
came from env vars resolved at call sites, worker counts were CLI flags.  A
``Session`` gathers all of it behind one façade:

* it owns a private :class:`~repro.core.engine.GateRuntime` (gate memo + the
  optional cross-process automaton store), so nothing a session does can leak
  into another session, a test, or the process-default runtime;
* :meth:`Session.run` accepts any :class:`~repro.api.problems.Problem` and
  returns the matching typed :class:`~repro.api.results.Result`;
* it is a context manager — leaving the ``with`` block resets the runtime, so
  configuration cannot outlive the session.

Example::

    from repro.api import Session, VerifyProblem, CircuitSource

    with Session(workers=4) as session:
        result = session.run(VerifyProblem(circuit=CircuitSource.from_family("bv", 4)))
        print(result.to_json())
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional

from ..campaign.runner import Campaign, CampaignConfig
from ..campaign.scheduler import MatrixRunResult, MatrixScheduler, MatrixSpec
from ..circuits import inject_random_gate
from ..core.engine import GateRuntime
from ..core.equivalence import IncrementalBugHunter, check_circuit_equivalence
from ..core.verification import verify_triple
from ..faults import FaultPlan
from ..simulator import StateVectorSimulator
from ..states import QuantumState
from ..ta import all_basis_states_ta
from ..ta import kernel as ta_kernel
from .problems import (
    BugHuntProblem,
    CampaignProblem,
    EquivalenceProblem,
    FuzzProblem,
    Problem,
    SimulateProblem,
    VerifyProblem,
)
from .results import (
    BugHuntResult,
    CampaignResult,
    EquivalenceResult,
    FuzzResult,
    Result,
    SimulateResult,
    VerifyResult,
)

__all__ = ["SessionConfig", "Session"]


@dataclass(frozen=True)
class SessionConfig:
    """Everything about *how* problems run (never *what* runs — see Problem).

    ``cache_dir``/``store_dir`` follow the campaign conventions: ``None``
    means "the default location" for campaign problems (direct
    verify/equivalence/bughunt runs leave the store off unless ``store_dir``
    names a directory), and ``""`` disables the tier outright.
    """

    #: campaign result-cache directory (None = default, "" = disabled)
    cache_dir: Optional[str] = None
    #: cross-process automaton store directory; campaigns resolve ``None`` to
    #: the default store, direct runs attach a store only when one is named
    store_dir: Optional[str] = None
    #: worker processes for campaign problems (1 = run in-process)
    workers: int = 1
    #: front-ends render per-phase timing breakdowns when set (the engine
    #: always *records* phase timings into ``EngineStatistics``; this flag is
    #: the one switch front-ends sharing a session consult to display them)
    profile: bool = False
    #: campaign-matrix manifest directory (None = default)
    manifest_dir: Optional[str] = None
    #: campaign-matrix per-cell report directory
    report_dir: str = "campaign_reports"
    #: apply the lightweight TA reduction after every gate
    reduce_after_each_gate: bool = True
    #: deterministic fault-injection plan for chaos testing (see
    #: ``docs/robustness.md``); ``None`` = the ambient ``AUTOQ_REPRO_FAULTS``
    #: env plan, if any.  Threaded into campaigns (parent + pool workers).
    fault_plan: Optional["FaultPlan"] = None
    #: TA kernel backend for this session ("reference"/"numpy"/"auto"; see
    #: ``docs/kernel.md``).  ``None`` keeps the process-wide selection
    #: (``AUTOQ_REPRO_KERNEL`` or auto-detection) untouched; a name is
    #: activated while the session is open and restored on ``close()``.
    #: Unknown or unavailable names raise on session construction.
    kernel_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")


class Session:
    """Runs :class:`Problem` requests under one isolated runtime configuration."""

    def __init__(self, config: Optional[SessionConfig] = None, **overrides):
        self.config = replace(config or SessionConfig(), **overrides)
        self._previous_kernel: Optional[str] = None
        if self.config.kernel_backend is not None:
            # raises for unknown/unavailable names — an explicit request that
            # silently ran a different kernel would be a lie
            self._previous_kernel = ta_kernel.set_active_backend(
                self.config.kernel_backend
            )
        self._runtime = GateRuntime()
        if self.config.store_dir:
            # direct (non-campaign) runs use the store only when it is
            # explicitly named; campaigns do their own resolution per run
            self._runtime.configure_store(self.config.store_dir)
        self._handlers: Dict[type, Callable[[Problem], Result]] = {
            VerifyProblem: self._run_verify,
            EquivalenceProblem: self._run_equivalence,
            BugHuntProblem: self._run_bughunt,
            SimulateProblem: self._run_simulate,
            CampaignProblem: self._run_campaign,
            FuzzProblem: self._run_fuzz,
        }

    # ----------------------------------------------------------- lifecycle
    @property
    def runtime(self) -> GateRuntime:
        """The session's private gate memo + store (never a module global)."""
        return self._runtime

    def close(self) -> None:
        """Reset the runtime: drop the memo, detach the store, restore the
        process-wide kernel selection this session overrode (if any)."""
        self._runtime.reset()
        if self._previous_kernel is not None:
            ta_kernel.set_active_backend(self._previous_kernel)
            self._previous_kernel = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ----------------------------------------------------------- dispatch
    def run(self, problem: Problem) -> Result:
        """Answer any problem shape; returns the matching typed result."""
        handler = self._handlers.get(type(problem))
        if handler is None:
            raise TypeError(
                f"cannot run {type(problem).__name__}; expected one of "
                f"{sorted(cls.__name__ for cls in self._handlers)}"
            )
        return handler(problem)

    # ----------------------------------------------------------- workloads
    def _run_verify(self, problem: VerifyProblem) -> VerifyResult:
        circuit, benchmark = problem.circuit.resolve()
        if problem.precondition is not None:
            precondition = problem.precondition.resolve(circuit.num_qubits)
        else:
            precondition = benchmark.precondition
        if problem.postcondition is not None:
            postcondition = problem.postcondition.resolve(circuit.num_qubits)
        else:
            postcondition = benchmark.postcondition
        outcome = verify_triple(
            precondition, circuit, postcondition,
            mode=problem.mode,
            inclusion_only=problem.inclusion_only,
            reduce_after_each_gate=self.config.reduce_after_each_gate,
            runtime=self._runtime,
        )
        return VerifyResult(
            holds=outcome.holds,
            check=outcome.check,
            witness=None if outcome.witness is None else repr(outcome.witness),
            witness_kind=outcome.witness_kind,
            mode=problem.mode,
            benchmark=None if benchmark is None else benchmark.name,
            description=None if benchmark is None else benchmark.description,
            circuit_qubits=circuit.num_qubits,
            circuit_gates=circuit.num_gates,
            precondition_summary=precondition.size_summary(),
            output_summary=outcome.output.size_summary(),
            statistics=outcome.statistics,
            comparison_seconds=outcome.comparison_seconds,
        )

    def _run_equivalence(self, problem: EquivalenceProblem) -> EquivalenceResult:
        first, _ = problem.first.resolve()
        second, _ = problem.second.resolve()
        if problem.inputs is not None:
            inputs = problem.inputs.resolve(first.num_qubits)
        else:
            inputs = all_basis_states_ta(first.num_qubits)
        outcome = check_circuit_equivalence(
            first, second, inputs, mode=problem.mode, runtime=self._runtime
        )
        return EquivalenceResult(
            non_equivalent=outcome.non_equivalent,
            witness=None if outcome.witness is None else repr(outcome.witness),
            witness_side=outcome.witness_side,
            mode=problem.mode,
            analysis_seconds=outcome.analysis_seconds,
            comparison_seconds=outcome.comparison_seconds,
        )

    def _run_bughunt(self, problem: BugHuntProblem) -> BugHuntResult:
        reference, _ = problem.reference.resolve()
        mutation = None
        if problem.candidate is not None:
            candidate, _ = problem.candidate.resolve()
        else:
            candidate, mutation = inject_random_gate(reference, seed=problem.inject_seed)
        hunter = IncrementalBugHunter(
            mode=problem.mode,
            seed=problem.seed,
            max_iterations=problem.max_iterations,
            runtime=self._runtime,
        )
        outcome = hunter.hunt(reference, candidate)
        return BugHuntResult(
            bug_found=outcome.bug_found,
            iterations=outcome.iterations,
            total_seconds=outcome.total_seconds,
            witness=None if outcome.witness is None else repr(outcome.witness),
            witness_side=outcome.witness_side,
            final_input_size=outcome.final_input_size,
            per_iteration_seconds=list(outcome.per_iteration_seconds),
            mode=problem.mode,
            injected_mutation=None if mutation is None else str(mutation),
        )

    def _run_simulate(self, problem: SimulateProblem) -> SimulateResult:
        circuit, _ = problem.circuit.resolve()
        if problem.input_bits is None:
            initial = QuantumState.zero_state(circuit.num_qubits)
        else:
            initial = QuantumState.basis_state(circuit.num_qubits, problem.input_bits)
        output = StateVectorSimulator().run(circuit, initial)
        amplitudes = []
        for bits, amplitude in output.items():
            approx = amplitude.to_complex()
            amplitudes.append({
                "basis": "".join(map(str, bits)),
                "amplitude": str(amplitude),
                "approx": [approx.real, approx.imag],
            })
        return SimulateResult(
            num_qubits=circuit.num_qubits,
            num_gates=circuit.num_gates,
            amplitudes=amplitudes,
        )

    def _run_campaign(self, problem: CampaignProblem) -> CampaignResult:
        return self.run_campaign(problem)

    def _run_fuzz(self, problem: FuzzProblem) -> FuzzResult:
        # imported lazily: repro.fuzz depends on the campaign package, which
        # this module already imports at the top level
        from ..fuzz.driver import FuzzSettings, replay_corpus, run_fuzz

        if problem.replay:
            outcome = replay_corpus(problem.corpus_dir, runtime=self._runtime)
        else:
            settings = FuzzSettings(
                budget_seconds=problem.budget_seconds,
                seed=problem.seed,
                max_qubits=problem.max_qubits,
                max_gates=problem.max_gates,
                checks=problem.checks,
                modes=problem.modes,
                mutation_kinds=problem.mutation_kinds,
                corpus_dir=problem.corpus_dir,
                max_cases=problem.max_cases,
                include_path_sum=problem.include_path_sum,
            )
            outcome = run_fuzz(settings, runtime=self._runtime)
        return FuzzResult(
            cases=outcome.cases,
            prefiltered=outcome.prefiltered,
            divergences=outcome.divergences,
            corpus_entries=list(outcome.corpus_entries),
            findings=list(outcome.findings),
            elapsed_seconds=outcome.elapsed_seconds,
            budget_seconds=problem.budget_seconds,
            seed=problem.seed,
            checks=list(problem.checks),
            replay=problem.replay,
            replayed=outcome.replayed,
        )

    def run_campaign(
        self,
        problem: CampaignProblem,
        on_record: Optional[Callable[[Dict], None]] = None,
    ) -> CampaignResult:
        """Run a campaign, optionally observing each verdict as it lands.

        Identical to ``run(problem)`` except for ``on_record``, which is
        called with every stamped ``campaign-job`` document as soon as it is
        written to the JSONL report — the streaming hook behind the service
        daemon's SSE endpoint and any front-end that wants live progress.
        """
        config = CampaignConfig(
            family=problem.family,
            size=problem.size,
            mutants=problem.mutants,
            mutation_kinds=problem.mutation_kinds,
            mode=problem.mode,
            workers=self.config.workers,
            seed=problem.seed,
            include_reference=problem.include_reference,
            report_path=problem.report_path,
            cache_dir=self.config.cache_dir,
            store_dir=self.config.store_dir,
            corpus_dir=problem.corpus_dir,
            fault_plan=self.config.fault_plan,
        )
        summary = Campaign(config).run(runtime=self._runtime, on_record=on_record)
        return CampaignResult.from_summary(summary)

    # ----------------------------------------------------------- matrices
    def run_matrix(
        self,
        spec: MatrixSpec,
        campaign_id: Optional[str] = None,
        resume: bool = False,
        progress: Optional[Callable[[str], None]] = None,
    ) -> MatrixRunResult:
        """Drive a whole families × sizes × modes sweep under this session.

        Matrix sweeps return the scheduler's
        :class:`~repro.campaign.scheduler.MatrixRunResult` (per-cell rows +
        totals) rather than a wire ``Result`` — they are an orchestration of
        many campaign problems, each of which already reports through the
        versioned schema in its JSONL records.
        """
        scheduler = self.matrix_scheduler(spec, campaign_id=campaign_id)
        return scheduler.run(resume=resume, progress=progress, runtime=self._runtime)

    def matrix_scheduler(
        self, spec: MatrixSpec, campaign_id: Optional[str] = None
    ) -> MatrixScheduler:
        """A :class:`MatrixScheduler` wired to this session's configuration."""
        return MatrixScheduler(
            spec,
            workers=self.config.workers,
            report_dir=self.config.report_dir,
            manifest_dir=self.config.manifest_dir,
            cache_dir=self.config.cache_dir,
            campaign_id=campaign_id,
            store_dir=self.config.store_dir,
            fault_plan=self.config.fault_plan,
        )

    def resume_matrix_scheduler(self, campaign_id: str) -> MatrixScheduler:
        """Rebuild a scheduler from a manifest alone (``campaign --resume``)."""
        return MatrixScheduler.resume(
            campaign_id,
            workers=self.config.workers,
            report_dir=self.config.report_dir,
            manifest_dir=self.config.manifest_dir,
            cache_dir=self.config.cache_dir,
            store_dir=self.config.store_dir,
            fault_plan=self.config.fault_plan,
        )

    def join_matrix_scheduler(self, campaign_id: str) -> MatrixScheduler:
        """Rebuild a scheduler to attach to a running campaign as a fabric
        worker (``campaign --join``); run it with
        :meth:`~repro.campaign.MatrixScheduler.run_join`."""
        return MatrixScheduler.join(
            campaign_id,
            workers=self.config.workers,
            report_dir=self.config.report_dir,
            manifest_dir=self.config.manifest_dir,
            cache_dir=self.config.cache_dir,
            store_dir=self.config.store_dir,
            fault_plan=self.config.fault_plan,
        )
