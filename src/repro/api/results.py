"""Typed result objects sharing one versioned JSON schema.

Every :meth:`repro.api.Session.run` call returns one of these dataclasses;
``to_json``/``from_json`` round-trip each through the flat document form
described in :mod:`repro.api.schema` (``api_version`` + ``kind`` envelope),
which is the exact shape the CLI prints under ``--json``.  Deserialization
dispatches on ``kind``: ``Result.from_json(text)`` rebuilds the right class
from any document the framework emits.

Witness quantum states are carried as their ``repr`` strings — results are a
wire format, and diagnosing a witness (``repro.core.diagnosis``) happens on
the machine that holds the automata, not from the serialized verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, List, Optional

from ..core.engine import EngineStatistics
from .schema import (
    API_VERSION,
    ERROR_KIND,
    SchemaError,
    TOOL_RESULT_KINDS,
    validate_document,
)

__all__ = [
    "Result",
    "VerifyResult",
    "EquivalenceResult",
    "BugHuntResult",
    "SimulateResult",
    "CampaignResult",
    "FuzzResult",
    "ToolResult",
    "ErrorResult",
]


@dataclass
class Result:
    """Base class: envelope handling + ``kind``-dispatched deserialization."""

    KIND: ClassVar[str] = ""

    @property
    def kind(self) -> str:
        return self.KIND

    @property
    def exit_code(self) -> int:
        """The process exit status a CLI front-end should report (0 = fine)."""
        return 0

    def _payload(self) -> Dict:
        payload = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, EngineStatistics):
                value = value.to_dict()
            elif isinstance(value, tuple):
                value = list(value)
            payload[spec.name] = value
        return payload

    def to_dict(self) -> Dict:
        return {"api_version": API_VERSION, "kind": self.kind, **self._payload()}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON (sorted keys) — byte-stable round-trips."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, document: Dict) -> "Result":
        """Rebuild the typed result for any known document kind."""
        validate_document(document)
        kind = document["kind"]
        if kind in TOOL_RESULT_KINDS:
            target = ToolResult
        else:
            target = _RESULT_CLASSES.get(kind)
        if target is None:
            raise SchemaError(f"document kind {kind!r} is not a result")
        if cls is not Result and cls is not target:
            raise SchemaError(f"{kind!r} document does not describe a {cls.__name__}")
        return target._from_document(document)

    @classmethod
    def from_json(cls, text: str) -> "Result":
        return cls.from_dict(json.loads(text))

    @classmethod
    def _from_document(cls, document: Dict) -> "Result":
        kwargs = {}
        for spec in fields(cls):
            if spec.name not in document:
                continue
            value = document[spec.name]
            if spec.name == "statistics" and value is not None:
                value = EngineStatistics.from_dict(value)
            kwargs[spec.name] = value
        return cls(**kwargs)


@dataclass
class VerifyResult(Result):
    """Outcome of a :class:`~repro.api.VerifyProblem` (``{P} C {Q}`` check)."""

    holds: bool = False
    #: "equivalence" or "inclusion" depending on how Q was compared
    check: str = "equivalence"
    witness: Optional[str] = None
    witness_kind: Optional[str] = None
    mode: str = "hybrid"
    #: family benchmark name (None for file/inline circuit sources)
    benchmark: Optional[str] = None
    description: Optional[str] = None
    circuit_qubits: int = 0
    circuit_gates: int = 0
    precondition_summary: Optional[str] = None
    output_summary: Optional[str] = None
    statistics: Optional[EngineStatistics] = None
    comparison_seconds: float = 0.0

    KIND: ClassVar[str] = "verify"

    def __bool__(self) -> bool:
        return self.holds

    @property
    def exit_code(self) -> int:
        return 0 if self.holds else 1


@dataclass
class EquivalenceResult(Result):
    """Outcome of an :class:`~repro.api.EquivalenceProblem` (output-set comparison)."""

    non_equivalent: bool = False
    witness: Optional[str] = None
    #: which circuit reaches the witness: "first-only" or "second-only"
    witness_side: Optional[str] = None
    mode: str = "hybrid"
    analysis_seconds: float = 0.0
    comparison_seconds: float = 0.0

    KIND: ClassVar[str] = "equivalence"

    def __bool__(self) -> bool:
        return self.non_equivalent

    @property
    def exit_code(self) -> int:
        return 1 if self.non_equivalent else 0


@dataclass
class BugHuntResult(Result):
    """Outcome of a :class:`~repro.api.BugHuntProblem` (incremental hunt)."""

    bug_found: bool = False
    iterations: int = 0
    total_seconds: float = 0.0
    witness: Optional[str] = None
    witness_side: Optional[str] = None
    final_input_size: int = 0
    per_iteration_seconds: List[float] = field(default_factory=list)
    mode: str = "hybrid"
    #: repr of the injected mutation, when the problem used ``inject_seed``
    injected_mutation: Optional[str] = None

    KIND: ClassVar[str] = "bughunt"

    def __bool__(self) -> bool:
        return self.bug_found

    @property
    def exit_code(self) -> int:
        return 1 if self.bug_found else 0


@dataclass
class SimulateResult(Result):
    """Outcome of a :class:`~repro.api.SimulateProblem` (exact simulation).

    ``amplitudes`` holds one entry per nonzero basis amplitude:
    ``{"basis": "01", "amplitude": "<exact algebraic repr>",
    "approx": [re, im]}``.
    """

    num_qubits: int = 0
    num_gates: int = 0
    amplitudes: List[Dict] = field(default_factory=list)

    KIND: ClassVar[str] = "simulate"


@dataclass
class CampaignResult(Result):
    """Outcome of a :class:`~repro.api.CampaignProblem` (mutant sweep).

    Field-for-field the JSON form of
    :class:`repro.campaign.runner.CampaignSummary`; the exit-code contract is
    the campaign one — finding violated mutants is the *purpose*, so only
    crashed jobs or a self-violating reference taint the run.
    """

    benchmark: str = ""
    mode: str = "hybrid"
    workers: int = 1
    jobs: int = 0
    holds: int = 0
    violated: int = 0
    unsupported: int = 0
    errors: int = 0
    cache_hits: int = 0
    analysis_seconds: float = 0.0
    wall_seconds: float = 0.0
    report_path: str = ""
    reference_violated: bool = False
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    store_hits: int = 0
    store_misses: int = 0
    store_publishes: int = 0
    #: fuzz regression gate (0/0 when the campaign ran without a corpus)
    corpus_replayed: int = 0
    corpus_failures: int = 0
    #: robustness roll-up (see ``docs/robustness.md``); mirrors
    #: ``CampaignSummary``: injected faults, job re-queues + store retries,
    #: quarantined store entries, store-tier self-degradation
    faults_injected: int = 0
    retries: int = 0
    quarantined_entries: int = 0
    store_disabled: bool = False
    #: distributed-fabric counters (``docs/distributed.md``): remote
    #: store-backend hits, and — for cells run under the fabric queue —
    #: claim generations, steals, re-queues, and lease renewals
    backend_hits: int = 0
    cells_claimed: int = 0
    cells_stolen: int = 0
    cells_requeued: int = 0
    lease_renewals: int = 0

    KIND: ClassVar[str] = "campaign"

    @classmethod
    def from_summary(cls, summary) -> "CampaignResult":
        """Lift a :class:`~repro.campaign.runner.CampaignSummary`."""
        return cls(**summary.to_dict())

    @property
    def exit_code(self) -> int:
        return 1 if self.errors or self.reference_violated or self.corpus_failures else 0


@dataclass
class FuzzResult(Result):
    """Outcome of a :class:`~repro.api.FuzzProblem` (fuzz run or corpus replay).

    ``findings`` holds one flattened
    :class:`~repro.fuzz.oracles.OracleVerdict` row per divergence (plus the
    stored ``entry_id`` and the localised gate, when known);
    ``corpus_entries`` lists the content addresses written this run.  For
    replay runs, ``replayed`` counts re-executed entries and every finding is
    a regression.
    """

    cases: int = 0
    prefiltered: int = 0
    divergences: int = 0
    corpus_entries: List[str] = field(default_factory=list)
    findings: List[Dict] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    budget_seconds: float = 0.0
    seed: int = 0
    checks: List[str] = field(default_factory=list)
    replay: bool = False
    replayed: int = 0

    KIND: ClassVar[str] = "fuzz"

    def __bool__(self) -> bool:
        return bool(self.divergences)

    @property
    def exit_code(self) -> int:
        # divergences are engine bugs (or corpus regressions), never success
        return 1 if self.divergences else 0


@dataclass
class ToolResult(Result):
    """Generic envelope for auxiliary CLI documents (stats, generate, cache …).

    ``tool`` is the document kind (one of
    :data:`repro.api.schema.TOOL_RESULT_KINDS`) and ``data`` its payload;
    these documents have no cross-version field contract beyond the envelope,
    which keeps one-off tool output cheap to add without widening the typed
    result surface.
    """

    tool: str = ""
    data: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tool not in TOOL_RESULT_KINDS:
            raise ValueError(
                f"unknown tool result kind {self.tool!r}; expected one of {TOOL_RESULT_KINDS}"
            )

    @property
    def kind(self) -> str:
        return self.tool

    @property
    def exit_code(self) -> int:
        """Tool kinds that carry a failure signal expose it here too, so a
        deserialized document reports the same status the CLI exited with."""
        if self.tool == "baselines":
            return 1 if self.data.get("any_difference") else 0
        if self.tool == "campaign-matrix":
            return 0 if self.data.get("trustworthy", True) else 1
        return 0

    def _payload(self) -> Dict:
        return {"data": self.data}

    @classmethod
    def _from_document(cls, document: Dict) -> "ToolResult":
        return cls(tool=document["kind"], data=document.get("data") or {})


@dataclass
class ErrorResult(Result):
    """Machine-readable failure envelope (kind ``"error"``).

    Emitted instead of free-text stderr whenever a ``--json`` CLI invocation
    fails, and as the body of every non-200 service response.  ``error`` is a
    short stable slug callers can dispatch on ("invalid-request", "os-error",
    "manifest-error", "timeout", "saturated", "not-found", "internal");
    ``message`` carries the human-readable detail.  ``code`` is the numeric
    status of whichever front-end produced the envelope — the CLI exit status
    or the HTTP response status — so the same document explains both.
    """

    error: str = "internal"
    message: str = ""
    code: int = 2

    KIND: ClassVar[str] = ERROR_KIND

    @property
    def exit_code(self) -> int:
        # HTTP statuses (>= 100) don't survive the 8-bit process exit space;
        # a relayed remote failure exits with the generic usage-error status.
        return self.code if 0 < self.code < 100 else 2


_RESULT_CLASSES: Dict[str, type] = {
    cls.KIND: cls
    for cls in (VerifyResult, EquivalenceResult, BugHuntResult, SimulateResult,
                CampaignResult, FuzzResult, ErrorResult)
}
