"""Typed request objects — one :class:`Problem` per workload shape.

Every workload the framework answers — ``{P} C {Q}`` triples, circuit
equivalence, incremental bug hunting, exact simulation, bug-hunting campaigns
— is described by a frozen dataclass sharing a common envelope:

* a **circuit source** (:class:`CircuitSource`): an in-memory
  :class:`~repro.circuits.circuit.Circuit`, a QASM file path, or a benchmark
  family + size from the :mod:`repro.benchgen` registry;
* optional **condition specs** (:class:`ConditionSpec`) naming the pre-/
  post-condition automata symbolically (family defaults, zero state, one
  basis state, all basis states, or an inline serialized TA);
* the engine ``mode`` and workload-specific knobs.

Problems are pure data: they validate their shape on construction and
serialize losslessly through the versioned JSON schema
(:mod:`repro.api.schema`), so a request can be built on one machine and run
by a :class:`repro.api.Session` on another.  Runtime configuration (worker
count, cache/store directories, profiling) deliberately does NOT live here —
that is the session's job.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Dict, Optional, Tuple

from ..benchgen import build_family
from ..benchgen.common import VerificationBenchmark
from ..circuits import Circuit, load_qasm_file, parse_qasm, to_qasm
from ..circuits.mutations import MUTATION_OPERATORS
from ..core.engine import AnalysisMode
from ..core.specs import zero_state_precondition
from ..states import parse_bitstring
from ..ta import TreeAutomaton, all_basis_states_ta, basis_state_ta, serialization
from .schema import API_VERSION, PROBLEM_KIND_PREFIX, SchemaError, validate_document

__all__ = [
    "CircuitSource",
    "ConditionSpec",
    "Problem",
    "VerifyProblem",
    "EquivalenceProblem",
    "BugHuntProblem",
    "SimulateProblem",
    "CampaignProblem",
    "FuzzProblem",
]

import json


@dataclass(frozen=True)
class CircuitSource:
    """Where a problem's circuit comes from: QASM text, a file, or a family.

    Exactly one of ``qasm`` (inline OpenQASM 2.0 text), ``path`` (QASM file)
    or ``family`` (+ optional ``size``) must be given.  Inline text is the
    wire form — :meth:`from_circuit` serializes an in-memory circuit into it,
    so a source always survives ``to_dict``/``from_dict`` byte-identically.
    """

    qasm: Optional[str] = None
    path: Optional[str] = None
    family: Optional[str] = None
    size: Optional[int] = None

    def __post_init__(self) -> None:
        given = [name for name in ("qasm", "path", "family") if getattr(self, name)]
        if len(given) != 1:
            raise ValueError(
                f"a circuit source needs exactly one of qasm/path/family, got {given or 'none'}"
            )
        if self.size is not None and self.family is None:
            raise ValueError("size is only meaningful with a family source")

    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "CircuitSource":
        """Wrap an in-memory circuit (serialized to QASM for the wire)."""
        return cls(qasm=to_qasm(circuit))

    @classmethod
    def from_path(cls, path: str) -> "CircuitSource":
        return cls(path=path)

    @classmethod
    def from_family(cls, family: str, size: Optional[int] = None) -> "CircuitSource":
        return cls(family=family, size=size)

    def resolve(self) -> Tuple[Circuit, Optional[VerificationBenchmark]]:
        """Materialise the circuit (and the benchmark, for family sources)."""
        if self.qasm is not None:
            return parse_qasm(self.qasm), None
        if self.path is not None:
            return load_qasm_file(self.path), None
        benchmark = build_family(self.family, self.size)
        return benchmark.circuit, benchmark

    def to_dict(self) -> Dict:
        return {
            "qasm": self.qasm,
            "path": self.path,
            "family": self.family,
            "size": self.size,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CircuitSource":
        return cls(
            qasm=data.get("qasm"),
            path=data.get("path"),
            family=data.get("family"),
            size=data.get("size"),
        )


@dataclass(frozen=True)
class ConditionSpec:
    """Symbolic description of a pre-/post-condition (or input-set) automaton.

    Kinds:

    * ``"zero"`` — the all-zeros basis state (no ``value``);
    * ``"basis"`` — one basis state, ``value`` is the bit string (``"0110"``);
    * ``"all-basis"`` — every basis state (no ``value``);
    * ``"ta"`` — an inline automaton, ``value`` is its
      :func:`repro.ta.serialization.dumps` text (the lossless wire form).

    ``None`` in a problem field means "use the family's own condition", which
    is only valid for family circuit sources.
    """

    kind: str
    value: Optional[str] = None

    KINDS: ClassVar[Tuple[str, ...]] = ("zero", "basis", "all-basis", "ta")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown condition kind {self.kind!r}; expected one of {self.KINDS}")
        if self.kind in ("basis", "ta") and not self.value:
            raise ValueError(f"condition kind {self.kind!r} needs a value")
        if self.kind in ("zero", "all-basis") and self.value is not None:
            raise ValueError(f"condition kind {self.kind!r} takes no value")
        if self.kind == "basis":
            parse_bitstring(self.value)  # fail fast on malformed bits

    @classmethod
    def from_automaton(cls, automaton: TreeAutomaton) -> "ConditionSpec":
        """Wrap an in-memory TA (serialized to the text dialect for the wire)."""
        return cls(kind="ta", value=serialization.dumps(automaton))

    def resolve(self, num_qubits: int) -> TreeAutomaton:
        """Materialise the automaton for a circuit of ``num_qubits`` qubits."""
        if self.kind == "zero":
            return zero_state_precondition(num_qubits)
        if self.kind == "basis":
            return basis_state_ta(num_qubits, self.value)
        if self.kind == "all-basis":
            return all_basis_states_ta(num_qubits)
        return serialization.loads(self.value)

    def to_dict(self) -> Dict:
        return {"kind": self.kind, "value": self.value}

    @classmethod
    def from_dict(cls, data: Dict) -> "ConditionSpec":
        return cls(kind=data["kind"], value=data.get("value"))


def _encode(value):
    """Field value -> JSON-ready form (nested sources/specs become dicts)."""
    if isinstance(value, (CircuitSource, ConditionSpec)):
        return value.to_dict()
    if isinstance(value, tuple):
        return list(value)
    return value


@dataclass(frozen=True)
class Problem:
    """Base class: the serialization machinery shared by every request shape.

    Subclasses are frozen dataclasses whose fields are JSON scalars,
    :class:`CircuitSource`, :class:`ConditionSpec`, or tuples thereof;
    ``to_dict``/``from_dict`` derive the wire form from the dataclass fields,
    so a problem and its JSON document can never drift apart.
    """

    KIND: ClassVar[str] = ""
    #: field name -> decoder applied by :meth:`from_dict` (set per subclass)
    FIELD_DECODERS: ClassVar[Dict[str, object]] = {}

    @property
    def kind(self) -> str:
        return self.KIND

    def to_dict(self) -> Dict:
        payload = {name.name: _encode(getattr(self, name.name)) for name in fields(self)}
        return {"api_version": API_VERSION, "kind": PROBLEM_KIND_PREFIX + self.KIND, **payload}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, document: Dict) -> "Problem":
        validate_document(document)
        kind = document["kind"]
        if not kind.startswith(PROBLEM_KIND_PREFIX):
            raise SchemaError(f"expected a problem document, got kind {kind!r}")
        target = _PROBLEM_CLASSES.get(kind[len(PROBLEM_KIND_PREFIX):])
        if target is None:
            raise SchemaError(f"unknown problem kind {kind!r}")
        if cls is not Problem and cls is not target:
            raise SchemaError(f"{kind!r} document does not describe a {cls.__name__}")
        kwargs = {}
        for spec in fields(target):
            if spec.name not in document:
                continue
            value = document[spec.name]
            decoder = target.FIELD_DECODERS.get(spec.name)
            if decoder is not None and value is not None:
                value = decoder(value)
            kwargs[spec.name] = value
        return target(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Problem":
        return cls.from_dict(json.loads(text))


def _tuple_of_str(value) -> Tuple[str, ...]:
    return tuple(str(item) for item in value)


@dataclass(frozen=True)
class VerifyProblem(Problem):
    """Check the triple ``{precondition} circuit {postcondition}``.

    ``precondition``/``postcondition`` default to the family's own conditions
    (only valid for family sources); non-family sources must spell both out.
    """

    circuit: CircuitSource = None
    precondition: Optional[ConditionSpec] = None
    postcondition: Optional[ConditionSpec] = None
    mode: str = AnalysisMode.HYBRID
    inclusion_only: bool = False

    KIND: ClassVar[str] = "verify"
    FIELD_DECODERS: ClassVar[Dict[str, object]] = {
        "circuit": CircuitSource.from_dict,
        "precondition": ConditionSpec.from_dict,
        "postcondition": ConditionSpec.from_dict,
    }

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, CircuitSource):
            raise ValueError("VerifyProblem needs a CircuitSource circuit")
        if self.mode not in AnalysisMode.ALL:
            raise ValueError(f"unknown analysis mode {self.mode!r}")
        if self.circuit.family is None and (
            self.precondition is None or self.postcondition is None
        ):
            raise ValueError(
                "non-family circuit sources need explicit precondition and postcondition specs"
            )


@dataclass(frozen=True)
class EquivalenceProblem(Problem):
    """Compare the output-state sets of two circuits over an input set.

    ``inputs`` defaults to all basis states (the paper's Section 7.2 setting).
    """

    first: CircuitSource = None
    second: CircuitSource = None
    inputs: Optional[ConditionSpec] = None
    mode: str = AnalysisMode.HYBRID

    KIND: ClassVar[str] = "equivalence"
    FIELD_DECODERS: ClassVar[Dict[str, object]] = {
        "first": CircuitSource.from_dict,
        "second": CircuitSource.from_dict,
        "inputs": ConditionSpec.from_dict,
    }

    def __post_init__(self) -> None:
        if not isinstance(self.first, CircuitSource) or not isinstance(self.second, CircuitSource):
            raise ValueError("EquivalenceProblem needs two CircuitSource operands")
        if self.mode not in AnalysisMode.ALL:
            raise ValueError(f"unknown analysis mode {self.mode!r}")


@dataclass(frozen=True)
class BugHuntProblem(Problem):
    """Incremental bug hunt between a reference and a candidate circuit.

    Give either an explicit ``candidate`` or an ``inject_seed`` (mutate the
    reference with one random extra gate, the Section 7.2 experiment).
    """

    reference: CircuitSource = None
    candidate: Optional[CircuitSource] = None
    inject_seed: Optional[int] = None
    mode: str = AnalysisMode.HYBRID
    seed: int = 0
    max_iterations: Optional[int] = None

    KIND: ClassVar[str] = "bughunt"
    FIELD_DECODERS: ClassVar[Dict[str, object]] = {
        "reference": CircuitSource.from_dict,
        "candidate": CircuitSource.from_dict,
    }

    def __post_init__(self) -> None:
        if not isinstance(self.reference, CircuitSource):
            raise ValueError("BugHuntProblem needs a CircuitSource reference")
        if (self.candidate is None) == (self.inject_seed is None):
            raise ValueError("give exactly one of candidate or inject_seed")
        if self.mode not in AnalysisMode.ALL:
            raise ValueError(f"unknown analysis mode {self.mode!r}")


@dataclass(frozen=True)
class SimulateProblem(Problem):
    """Exact simulation of one basis input (all zeros when ``input_bits`` is None)."""

    circuit: CircuitSource = None
    input_bits: Optional[str] = None

    KIND: ClassVar[str] = "simulate"
    FIELD_DECODERS: ClassVar[Dict[str, object]] = {"circuit": CircuitSource.from_dict}

    def __post_init__(self) -> None:
        if not isinstance(self.circuit, CircuitSource):
            raise ValueError("SimulateProblem needs a CircuitSource circuit")
        if self.input_bits is not None:
            parse_bitstring(self.input_bits)


@dataclass(frozen=True)
class CampaignProblem(Problem):
    """A bug-hunting campaign: verify many mutants of one family instance.

    Worker count, cache/store directories and report streaming cadence are
    session configuration, not part of the problem.
    """

    family: str = ""
    size: Optional[int] = None
    mutants: int = 100
    mutation_kinds: Tuple[str, ...] = ("insert",)
    mode: str = AnalysisMode.HYBRID
    seed: int = 0
    include_reference: bool = True
    report_path: str = "campaign_report.jsonl"
    #: fuzz corpus directory replayed as a regression gate before the sweep
    corpus_dir: Optional[str] = None

    KIND: ClassVar[str] = "campaign"
    FIELD_DECODERS: ClassVar[Dict[str, object]] = {"mutation_kinds": _tuple_of_str}

    def __post_init__(self) -> None:
        if not self.family:
            raise ValueError("CampaignProblem needs a family name")
        if self.mutants < 0:
            raise ValueError("mutants must be non-negative")
        if self.mode not in AnalysisMode.ALL:
            raise ValueError(f"unknown analysis mode {self.mode!r}")
        object.__setattr__(self, "mutation_kinds", tuple(self.mutation_kinds))


@dataclass(frozen=True)
class FuzzProblem(Problem):
    """A differential fuzzing run (or corpus replay) of the engine itself.

    With ``replay=False``, fuzz for ``budget_seconds`` (or ``max_cases``)
    over the enabled ``checks``, storing minimized divergences in
    ``corpus_dir`` when one is given.  With ``replay=True``, re-verify every
    entry of ``corpus_dir`` instead (the regression gate).
    """

    budget_seconds: float = 10.0
    seed: int = 0
    max_qubits: int = 4
    max_gates: int = 10
    checks: Tuple[str, ...] = ("boolean", "cross-mode")
    modes: Tuple[str, ...] = AnalysisMode.ALL
    mutation_kinds: Tuple[str, ...] = tuple(MUTATION_OPERATORS)
    corpus_dir: Optional[str] = None
    replay: bool = False
    max_cases: Optional[int] = None
    include_path_sum: bool = False

    KIND: ClassVar[str] = "fuzz"
    #: oracle families ``checks`` may name (mirrors ``repro.fuzz.driver.FUZZ_CHECKS``)
    CHECKS: ClassVar[Tuple[str, ...]] = ("boolean", "cross-mode", "kernel-parity")
    FIELD_DECODERS: ClassVar[Dict[str, object]] = {
        "checks": _tuple_of_str,
        "modes": _tuple_of_str,
        "mutation_kinds": _tuple_of_str,
    }

    def __post_init__(self) -> None:
        object.__setattr__(self, "checks", tuple(self.checks))
        object.__setattr__(self, "modes", tuple(self.modes))
        object.__setattr__(self, "mutation_kinds", tuple(self.mutation_kinds))
        if self.budget_seconds < 0:
            raise ValueError("budget_seconds must be non-negative")
        if not self.checks:
            raise ValueError("at least one check is required")
        for check in self.checks:
            if check not in self.CHECKS:
                raise ValueError(f"unknown check {check!r}; expected one of {self.CHECKS}")
        for mode in self.modes:
            if mode not in AnalysisMode.ALL:
                raise ValueError(f"unknown analysis mode {mode!r}")
        for kind in self.mutation_kinds:
            if kind not in MUTATION_OPERATORS:
                raise ValueError(
                    f"unknown mutation kind {kind!r}; expected one of {tuple(MUTATION_OPERATORS)}"
                )
        if self.replay and not self.corpus_dir:
            raise ValueError("replay needs a corpus_dir")
        if self.max_cases is not None and self.max_cases < 0:
            raise ValueError("max_cases must be non-negative")


_PROBLEM_CLASSES: Dict[str, type] = {
    cls.KIND: cls
    for cls in (
        VerifyProblem,
        EquivalenceProblem,
        BugHuntProblem,
        SimulateProblem,
        CampaignProblem,
        FuzzProblem,
    )
}
