"""The versioned JSON document schema behind every repro entry point.

Every machine-readable document the framework emits — ``Session.run``
results, ``--json`` CLI output, campaign JSONL report lines — is a flat JSON
object carrying the same two-field envelope::

    {"api_version": 1, "kind": "verify", ...}

``api_version`` stamps the schema revision (bump :data:`API_VERSION` on any
incompatible change to a document layout, and record the migration in
``docs/api.md``), and ``kind`` names the document type.  The registries in
this module are the single source of truth for which kinds exist and which
fields each kind must carry; :func:`validate_document` enforces the contract
and is used by both the test suite's golden-schema assertions and
:meth:`repro.api.Result.from_dict` dispatch.

This module deliberately imports nothing from the rest of the package, so
low-level modules (e.g. :mod:`repro.campaign.report`) can stamp documents
without creating import cycles.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "API_VERSION",
    "CAMPAIGN_RECORD_KIND",
    "ERROR_KIND",
    "FUZZ_ENTRY_KIND",
    "PROBLEM_KIND_PREFIX",
    "PROBLEM_KINDS",
    "RESULT_KINDS",
    "TOOL_RESULT_KINDS",
    "REQUIRED_FIELDS",
    "SchemaError",
    "document_kinds",
    "validate_document",
]

#: revision of every document layout this package emits; a bump invalidates
#: old documents *loudly* (``validate_document`` / ``from_json`` reject them).
#: v2: campaign documents gained the ``corpus_replayed``/``corpus_failures``
#: regression-gate fields, and the ``fuzz`` / ``problem/fuzz`` /
#: ``fuzz-entry`` kinds were added.
#: v3: campaign documents gained the robustness counters
#: (``faults_injected``/``retries``/``quarantined_entries``/``store_disabled``)
#: and campaign-job records the ``retried``/``faults`` fields
#: (see ``docs/api.md`` for the migrations).
#: v4: campaign documents gained the distributed-fabric counters
#: (``backend_hits``/``cells_claimed``/``cells_stolen``/``cells_requeued``/
#: ``lease_renewals``) and the ``campaign-join`` tool kind was added
#: (see ``docs/api.md`` / ``docs/distributed.md``).
API_VERSION = 4

#: kinds with a dedicated dataclass in :mod:`repro.api.results`
RESULT_KINDS: Tuple[str, ...] = (
    "verify",
    "equivalence",
    "bughunt",
    "simulate",
    "campaign",
    "fuzz",
)

#: auxiliary CLI tool documents, carried by the generic
#: :class:`repro.api.ToolResult` (``{"kind": <kind>, "data": {...}}``)
TOOL_RESULT_KINDS: Tuple[str, ...] = (
    "generate",
    "inject",
    "stats",
    "export-ta",
    "baselines",
    "campaign-matrix",
    "campaign-join",
    "campaign-ls",
    "cache-stats",
    "cache-gc",
    "cache-clear",
    "serve",
)

#: one line of a campaign JSONL report (fields: ``repro.campaign.report.REPORT_FIELDS``)
CAMPAIGN_RECORD_KIND = "campaign-job"

#: one minimized regression scenario on disk (``repro.fuzz.corpus``): a
#: content-addressed JSON file that ``repro fuzz replay`` re-executes
FUZZ_ENTRY_KIND = "fuzz-entry"

#: machine-readable failure envelope: ``--json`` CLI error paths and every
#: non-200 service response carry this kind instead of free-text stderr.
#: Deliberately *not* part of :data:`RESULT_KINDS` — there is no
#: ``problem/error`` request, errors only ever travel as responses.
ERROR_KIND = "error"

#: problem documents use ``"kind": "problem/<name>"`` so a request can never
#: be mistaken for a result on the wire
PROBLEM_KIND_PREFIX = "problem/"
PROBLEM_KINDS: Tuple[str, ...] = tuple(
    PROBLEM_KIND_PREFIX + kind for kind in RESULT_KINDS
)

#: fields (beyond the envelope) every document of a kind must carry; the
#: typed result/problem dataclasses are generated-from/checked-against this
#: in the API-surface snapshot test
REQUIRED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "verify": (
        "holds", "check", "witness", "witness_kind", "mode", "benchmark",
        "description", "circuit_qubits", "circuit_gates",
        "precondition_summary", "output_summary", "statistics",
        "comparison_seconds",
    ),
    "equivalence": (
        "non_equivalent", "witness", "witness_side", "mode",
        "analysis_seconds", "comparison_seconds",
    ),
    "bughunt": (
        "bug_found", "iterations", "total_seconds", "witness", "witness_side",
        "final_input_size", "per_iteration_seconds", "mode",
        "injected_mutation",
    ),
    "simulate": ("num_qubits", "num_gates", "amplitudes"),
    "campaign": (
        "benchmark", "mode", "workers", "jobs", "holds", "violated",
        "unsupported", "errors", "cache_hits", "analysis_seconds",
        "wall_seconds", "report_path", "reference_violated", "phase_seconds",
        "store_hits", "store_misses", "store_publishes",
        "corpus_replayed", "corpus_failures",
        "faults_injected", "retries", "quarantined_entries", "store_disabled",
        "backend_hits", "cells_claimed", "cells_stolen", "cells_requeued",
        "lease_renewals",
    ),
    "fuzz": (
        "cases", "prefiltered", "divergences", "corpus_entries", "findings",
        "elapsed_seconds", "budget_seconds", "seed", "checks", "replay",
        "replayed",
    ),
    FUZZ_ENTRY_KIND: (
        "entry_id", "check", "seed", "detail", "mutation", "payload",
    ),
    CAMPAIGN_RECORD_KIND: (
        "job_id", "benchmark", "mode", "mutation_kind", "mutation", "seed",
        "num_qubits", "num_gates", "circuit_fingerprint",
        "precondition_fingerprint", "postcondition_fingerprint", "verdict",
        "witness", "witness_kind", "error", "statistics",
        "comparison_seconds", "elapsed_seconds", "cached", "deduplicated",
        "retried", "faults",
    ),
    #: ``error``: short machine slug ("invalid-request", "os-error", ...);
    #: ``message``: human-readable detail; ``code``: CLI exit status or HTTP
    #: status, whichever front-end produced the envelope
    ERROR_KIND: ("error", "message", "code"),
}
#: generic tool documents all share one required payload field
for _kind in TOOL_RESULT_KINDS:
    REQUIRED_FIELDS[_kind] = ("data",)
del _kind


class SchemaError(ValueError):
    """A document does not match the versioned schema."""


def document_kinds() -> Tuple[str, ...]:
    """Every ``kind`` value a document may carry (sorted, for snapshots)."""
    return tuple(sorted(
        set(RESULT_KINDS) | set(TOOL_RESULT_KINDS)
        | {CAMPAIGN_RECORD_KIND, FUZZ_ENTRY_KIND, ERROR_KIND} | set(PROBLEM_KINDS)
    ))


def validate_document(document: Mapping, kind: Optional[str] = None) -> Mapping:
    """Check the envelope and per-kind required fields; returns ``document``.

    Raises :class:`SchemaError` when ``document`` is not a mapping, carries a
    missing/foreign ``api_version``, an unknown ``kind`` (or not the expected
    ``kind``), or lacks a required field.  Problem documents
    (``kind="problem/..."``) only have their envelope checked here — their
    field constraints live in the :mod:`repro.api.problems` constructors.
    """
    if not isinstance(document, Mapping):
        raise SchemaError(f"expected a JSON object, got {type(document).__name__}")
    version = document.get("api_version")
    if version != API_VERSION:
        raise SchemaError(
            f"api_version {version!r} is not the supported version {API_VERSION}"
        )
    actual = document.get("kind")
    if actual not in document_kinds():
        raise SchemaError(f"unknown document kind {actual!r}")
    if kind is not None and actual != kind:
        raise SchemaError(f"expected a {kind!r} document, got {actual!r}")
    for field in REQUIRED_FIELDS.get(actual, ()):
        if field not in document:
            raise SchemaError(f"{actual!r} document is missing required field {field!r}")
    return document
