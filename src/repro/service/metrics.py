"""Thread-safe counters for the service daemon, in Prometheus text form.

The daemon answers many concurrent requests on one process, so every counter
here is guarded by a single lock — contention is negligible (a handful of
integer bumps per request) and the rendered ``/metrics`` page is always a
consistent snapshot.

Two kinds of numbers appear on the page:

* **request-level counters** accumulated here as requests finish — totals by
  document kind, failures by error slug, rejections, timeouts, per-kind wall
  seconds, engine gate/analysis totals lifted from each result's
  :class:`~repro.core.engine.EngineStatistics`, campaign job and SSE record
  counts;
* **runtime-level gauges** sampled at scrape time from the shared
  :class:`~repro.core.engine.GateRuntime` via
  :meth:`~repro.core.engine.GateRuntime.stats_snapshot` — gate-memo
  hits/misses/size and, when a cross-process store is attached, its
  hit/miss/publish/reject session counters.

The exposition format is the Prometheus text format (``# HELP`` / ``# TYPE``
plus samples); no client library is required to scrape it.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from ..faults import active_injector
from ..ta.kernel import active_backend_name

__all__ = ["ServiceMetrics"]


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _sample(name: str, value, labels: Optional[Dict[str, str]] = None) -> str:
    if labels:
        body = ",".join(f'{key}="{_escape(str(val))}"'
                        for key, val in sorted(labels.items()))
        return f"{name}{{{body}}} {value}"
    return f"{name} {value}"


class ServiceMetrics:
    """Mutable counter set shared by every request handler thread."""

    def __init__(self):
        self._lock = threading.Lock()
        self.requests_total: Dict[str, int] = {}
        self.request_seconds_total: Dict[str, float] = {}
        self.failures_total: Dict[str, int] = {}
        self.rejected_total = 0
        self.timeouts_total = 0
        self.in_flight = 0
        self.engine_gates_total = 0
        self.engine_analysis_seconds_total = 0.0
        self.campaign_jobs_total = 0
        self.sse_records_total = 0
        #: ``/api/v1/store/{digest}`` traffic by outcome (get-hit / get-miss /
        #: get-error / put / put-error) — the daemon-side view of remote
        #: store-backend usage by joined campaign hosts
        self.store_requests_total: Dict[str, int] = {}
        #: distributed-fabric counters lifted from finished campaign results
        #: (cells claimed/stolen/requeued, lease renewals, remote-store hits)
        self.fabric_totals: Dict[str, int] = {}

    # ------------------------------------------------------------- updates
    def request_started(self) -> None:
        with self._lock:
            self.in_flight += 1

    def request_finished(self, kind: str, seconds: float) -> None:
        with self._lock:
            self.in_flight -= 1
            self.requests_total[kind] = self.requests_total.get(kind, 0) + 1
            self.request_seconds_total[kind] = (
                self.request_seconds_total.get(kind, 0.0) + seconds
            )

    def request_rejected(self) -> None:
        """Count one request refused at admission (never started, so the
        in-flight gauge is untouched)."""
        with self._lock:
            self.failures_total["saturated"] = self.failures_total.get("saturated", 0) + 1
            self.rejected_total += 1

    def request_refused(self, slug: str) -> None:
        """Count one request refused before admission for reason ``slug``
        (e.g. an injected ``service.request`` fault); in-flight untouched."""
        with self._lock:
            self.failures_total[slug] = self.failures_total.get(slug, 0) + 1

    def request_failed(self, error: str) -> None:
        """Count one admitted request that failed, by error slug; timeouts
        get a dedicated counter too — they are the daemon's capacity signal."""
        with self._lock:
            self.in_flight -= 1
            self.failures_total[error] = self.failures_total.get(error, 0) + 1
            if error == "timeout":
                self.timeouts_total += 1

    def store_request(self, outcome: str) -> None:
        """Count one store-endpoint request by outcome slug."""
        with self._lock:
            self.store_requests_total[outcome] = (
                self.store_requests_total.get(outcome, 0) + 1
            )

    #: CampaignResult fields folded into ``fabric_totals`` by observe_result
    _FABRIC_FIELDS = ("cells_claimed", "cells_stolen", "cells_requeued",
                      "lease_renewals", "backend_hits")

    def observe_result(self, result) -> None:
        """Fold a finished result's engine numbers into the running totals."""
        statistics = getattr(result, "statistics", None)
        jobs = getattr(result, "jobs", None)
        analysis = getattr(result, "analysis_seconds", None)
        with self._lock:
            if statistics is not None:
                self.engine_gates_total += statistics.gates_total
                self.engine_analysis_seconds_total += statistics.analysis_seconds
            elif analysis is not None:
                self.engine_analysis_seconds_total += analysis
            if jobs is not None:
                self.campaign_jobs_total += jobs
            for name in self._FABRIC_FIELDS:
                value = getattr(result, name, None)
                if value:
                    self.fabric_totals[name] = self.fabric_totals.get(name, 0) + int(value)

    def record_streamed(self, count: int = 1) -> None:
        with self._lock:
            self.sse_records_total += count

    # ------------------------------------------------------------ rendering
    def render(self, runtime_snapshot: Optional[Dict] = None,
               uptime_seconds: float = 0.0) -> str:
        """The ``/metrics`` page body (Prometheus text exposition format)."""
        with self._lock:
            lines = [
                "# HELP repro_uptime_seconds Seconds since the daemon started.",
                "# TYPE repro_uptime_seconds gauge",
                _sample("repro_uptime_seconds", f"{uptime_seconds:.3f}"),
                "# HELP repro_requests_in_flight Requests currently admitted.",
                "# TYPE repro_requests_in_flight gauge",
                _sample("repro_requests_in_flight", self.in_flight),
                "# HELP repro_requests_total Completed requests by document kind.",
                "# TYPE repro_requests_total counter",
            ]
            for kind in sorted(self.requests_total):
                lines.append(_sample("repro_requests_total",
                                     self.requests_total[kind], {"kind": kind}))
            lines += [
                "# HELP repro_request_seconds_total Wall seconds spent answering requests.",
                "# TYPE repro_request_seconds_total counter",
            ]
            for kind in sorted(self.request_seconds_total):
                lines.append(_sample("repro_request_seconds_total",
                                     f"{self.request_seconds_total[kind]:.6f}",
                                     {"kind": kind}))
            lines += [
                "# HELP repro_request_failures_total Failed requests by error slug.",
                "# TYPE repro_request_failures_total counter",
            ]
            for slug in sorted(self.failures_total):
                lines.append(_sample("repro_request_failures_total",
                                     self.failures_total[slug], {"error": slug}))
            lines += [
                "# HELP repro_requests_rejected_total Requests refused with 429 (budget full).",
                "# TYPE repro_requests_rejected_total counter",
                _sample("repro_requests_rejected_total", self.rejected_total),
                "# HELP repro_request_timeouts_total Requests that hit the per-request timeout.",
                "# TYPE repro_request_timeouts_total counter",
                _sample("repro_request_timeouts_total", self.timeouts_total),
                "# HELP repro_engine_gates_total Gate applications recorded by finished analyses.",
                "# TYPE repro_engine_gates_total counter",
                _sample("repro_engine_gates_total", self.engine_gates_total),
                "# HELP repro_engine_analysis_seconds_total Engine analysis seconds recorded by finished analyses.",
                "# TYPE repro_engine_analysis_seconds_total counter",
                _sample("repro_engine_analysis_seconds_total",
                        f"{self.engine_analysis_seconds_total:.6f}"),
                "# HELP repro_campaign_jobs_total Campaign jobs completed by this daemon.",
                "# TYPE repro_campaign_jobs_total counter",
                _sample("repro_campaign_jobs_total", self.campaign_jobs_total),
                "# HELP repro_sse_records_total Campaign records streamed over SSE.",
                "# TYPE repro_sse_records_total counter",
                _sample("repro_sse_records_total", self.sse_records_total),
                "# HELP repro_kernel_backend Active TA kernel backend (the labelled backend is 1).",
                "# TYPE repro_kernel_backend gauge",
                _sample("repro_kernel_backend", 1,
                        {"backend": active_backend_name()}),
                "# HELP repro_store_endpoint_requests_total Store-endpoint requests by outcome (fabric hosts sharing this daemon's store).",
                "# TYPE repro_store_endpoint_requests_total counter",
            ]
            for outcome in sorted(self.store_requests_total):
                lines.append(_sample("repro_store_endpoint_requests_total",
                                     self.store_requests_total[outcome],
                                     {"outcome": outcome}))
            lines += [
                "# HELP repro_fabric_total Distributed-fabric counters from finished campaigns (cells claimed/stolen/requeued, lease renewals, remote-store backend hits).",
                "# TYPE repro_fabric_total counter",
            ]
            for name in sorted(self.fabric_totals):
                lines.append(_sample("repro_fabric_total",
                                     self.fabric_totals[name], {"counter": name}))
        if runtime_snapshot is not None:
            memo = runtime_snapshot.get("memo") or {}
            lines += [
                "# HELP repro_gate_memo_entries In-process gate-memo entries of the shared runtime.",
                "# TYPE repro_gate_memo_entries gauge",
                _sample("repro_gate_memo_entries", memo.get("size", 0)),
                "# HELP repro_gate_memo_hits_total Gate-memo hits of the shared runtime.",
                "# TYPE repro_gate_memo_hits_total counter",
                _sample("repro_gate_memo_hits_total", memo.get("hits", 0)),
                "# HELP repro_gate_memo_misses_total Gate-memo misses of the shared runtime.",
                "# TYPE repro_gate_memo_misses_total counter",
                _sample("repro_gate_memo_misses_total", memo.get("misses", 0)),
            ]
            store = runtime_snapshot.get("store")
            if store is not None:
                lines += [
                    "# HELP repro_store_memory_entries In-process LRU entries of the automaton store.",
                    "# TYPE repro_store_memory_entries gauge",
                    _sample("repro_store_memory_entries", store.get("memory_entries", 0)),
                ]
                for counter in ("hits", "misses", "publishes", "rejected",
                                "quarantined", "retries", "backend_hits"):
                    name = f"repro_store_{counter}_total"
                    lines += [
                        f"# HELP {name} Automaton-store session counter '{counter}'.",
                        f"# TYPE {name} counter",
                        _sample(name, store.get(counter, 0)),
                    ]
                lines += [
                    "# HELP repro_store_disabled Whether the store tier degraded itself off (1) after consecutive faults.",
                    "# TYPE repro_store_disabled gauge",
                    _sample("repro_store_disabled", int(bool(store.get("disabled")))),
                ]
        injector = active_injector()
        lines += [
            "# HELP repro_faults_injected_total Deterministically injected faults by site (absent without an armed plan).",
            "# TYPE repro_faults_injected_total counter",
        ]
        if injector is not None:
            for site, count in sorted(injector.counters().items()):
                lines.append(_sample("repro_faults_injected_total", count,
                                     {"site": site}))
        return "\n".join(lines) + "\n"
