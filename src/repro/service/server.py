"""The verification service daemon: the PR 5 typed API over HTTP + JSON.

One long-lived :class:`~repro.api.Session` — hence one warm
:class:`~repro.core.engine.GateRuntime` whose gate memo and cross-process
store amortize across every request — answers problem documents POSTed by any
client speaking the versioned :mod:`repro.api.schema`:

``POST /v1/run``
    body: any ``problem/*`` document; response: the matching result document
    (200) or an ``error`` document (400 invalid request, 429 admission budget
    full, 504 per-request timeout, 500 crash).
``POST /v1/campaign/stream``
    body: a ``problem/campaign`` document; response: ``text/event-stream``
    with one ``record`` event per stamped ``campaign-job`` document as each
    verdict lands, then a final ``summary`` event carrying the ``campaign``
    result.  Failures arrive in-band as an ``error`` event (SSE has no
    late-status channel).
``GET /healthz``
    liveness JSON (status, uptime, in-flight count).
``GET /metrics``
    Prometheus text exposition (:mod:`repro.service.metrics`): request /
    failure / rejection counters plus live gate-memo and store hit rates from
    the shared runtime.
``GET`` / ``PUT /api/v1/store/{digest}``
    raw automaton-store entries, keyed by content digest — the transport
    behind :class:`~repro.ta.store_backend.HTTPStoreBackend`, which lets
    every host joined to a campaign (``campaign --join``) share this
    daemon's store of verified gate-application prefixes.  GET answers the
    entry text (200) or 404 on a miss; PUT publishes atomically (204).  503
    when the daemon runs without an attached store.  Entries are served and
    stored verbatim: schema validation and quarantine stay reader-side in
    :class:`~repro.ta.store.AutomatonStore`, exactly as for a local
    directory.

Concurrency model: requests are admitted against a
:class:`threading.BoundedSemaphore` of ``max_in_flight`` slots (excess load
is refused immediately with 429 instead of queueing unboundedly) and executed
on a ``ThreadPoolExecutor`` of ``workers`` threads sharing the one session.
A request that exceeds ``request_timeout`` gets a 504, but its work keeps its
slot until it actually finishes — the budget reflects true engine load, so a
flood of timed-out requests cannot pile up unbounded work.  Shutdown drains:
:meth:`VerificationService.close` waits for in-flight work before the
process exits.

The HTTP layer is the stdlib ``ThreadingHTTPServer`` — zero dependencies,
which is the tested path.  When FastAPI happens to be installed,
:func:`build_fastapi_app` exposes the same service core as an ASGI app for
deployments that want uvicorn-class throughput; the core (admission,
timeouts, metrics, session) is identical either way.
"""

from __future__ import annotations

import json
import queue
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterator, Optional, Tuple

from ..api.problems import CampaignProblem, Problem
from ..api.results import ErrorResult
from ..api.schema import API_VERSION, SchemaError
from ..api.session import Session, SessionConfig
from ..faults import InjectedFault, inject
from ..ta.store_backend import STORE_ENDPOINT_PREFIX
from .metrics import ServiceMetrics

__all__ = [
    "ServiceConfig",
    "VerificationService",
    "ServiceServer",
    "build_fastapi_app",
    "fastapi_available",
]

#: request bodies above this are refused outright (a problem document is a
#: few KB; anything larger is a mistake or abuse)
MAX_BODY_BYTES = 8 * 1024 * 1024

#: transient refusals (saturated, draining, fault-injected, timed out) carry
#: this ``Retry-After`` hint so clients can pace their next attempt
TRANSIENT_STATUSES = (429, 503, 504)
RETRY_AFTER_HINT_SECONDS = 1

#: store keys are SHA-256 content digests; anything else on the store
#: endpoints is a client bug (and, unchecked, would be a path-injection risk
#: for directory-backed stores)
_STORE_KEY_PATTERN = re.compile(r"^[0-9a-f]{64}$")


@dataclass(frozen=True)
class ServiceConfig:
    """How the daemon listens and how much concurrent work it admits."""

    host: str = "127.0.0.1"
    #: TCP port; 0 binds an OS-assigned ephemeral port (tests, smoke runs)
    port: int = 8642
    #: executor threads answering admitted requests
    workers: int = 4
    #: seconds before an admitted request is answered with 504 (its work
    #: still runs to completion and holds its admission slot until done)
    request_timeout: float = 300.0
    #: admission budget: requests in flight beyond this are refused with 429
    max_in_flight: int = 8
    #: the shared session every request runs under (store/cache directories,
    #: campaign worker processes, …)
    session: SessionConfig = field(default_factory=SessionConfig)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be at least 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")


class VerificationService:
    """Transport-independent daemon core: one warm session + admission control.

    Both HTTP front-ends (the stdlib handler below and the optional FastAPI
    app) call :meth:`run_document` / :meth:`stream_campaign` /
    :meth:`health` / :meth:`render_metrics` and do nothing else, so every
    behaviour worth testing lives here.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        self.config = replace(config or ServiceConfig(), **overrides)
        self.session = Session(self.config.session)
        self.metrics = ServiceMetrics()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._slots = threading.BoundedSemaphore(self.config.max_in_flight)
        self._started = time.monotonic()
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started

    def close(self, drain: bool = True) -> None:
        """Stop accepting work; with ``drain`` wait for in-flight requests."""
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=drain)
        self.session.close()

    def __enter__(self) -> "VerificationService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------ endpoints
    def health(self) -> Dict:
        return {
            "status": "ok",
            "api_version": API_VERSION,
            "uptime_seconds": round(self.uptime_seconds, 3),
            "in_flight": self.metrics.in_flight,
            "workers": self.config.workers,
            "max_in_flight": self.config.max_in_flight,
        }

    def render_metrics(self) -> str:
        return self.metrics.render(
            runtime_snapshot=self.session.runtime.stats_snapshot(),
            uptime_seconds=self.uptime_seconds,
        )

    def run_document(self, document) -> Tuple[int, Dict]:
        """Answer one problem document; returns ``(http_status, document)``."""
        try:
            inject("service.request")
        except InjectedFault as error:
            self.metrics.request_refused("unavailable")
            return 503, ErrorResult("unavailable", str(error), 503).to_dict()
        try:
            problem = Problem.from_dict(document)
        except (SchemaError, ValueError, TypeError, KeyError) as error:
            return 400, ErrorResult("invalid-request", str(error), 400).to_dict()
        if self._closed:
            return 503, ErrorResult("shutting-down", "the daemon is draining", 503).to_dict()
        if not self._slots.acquire(blocking=False):
            self.metrics.request_rejected()
            return 429, ErrorResult(
                "saturated",
                f"admission budget full ({self.config.max_in_flight} in flight); retry later",
                429,
            ).to_dict()
        self.metrics.request_started()
        start = time.perf_counter()
        future = self._executor.submit(self.session.run, problem)
        future.add_done_callback(lambda _f: self._slots.release())
        try:
            result = future.result(timeout=self.config.request_timeout)
        except _FutureTimeout:
            self.metrics.request_failed("timeout")
            return 504, ErrorResult(
                "timeout",
                f"no answer within {self.config.request_timeout:g}s; the work "
                "still runs and holds its admission slot until it finishes",
                504,
            ).to_dict()
        except Exception as error:  # a crashed analysis must not kill the daemon
            self.metrics.request_failed("internal")
            return 500, ErrorResult(
                "internal", f"{type(error).__name__}: {error}", 500
            ).to_dict()
        self.metrics.observe_result(result)
        self.metrics.request_finished(result.kind, time.perf_counter() - start)
        return 200, result.to_dict()

    # ------------------------------------------------------- store endpoints
    def _store_status(self, key: str) -> Optional[Tuple[int, Dict]]:
        """Shared admission for the store endpoints; ``None`` means proceed."""
        if not _STORE_KEY_PATTERN.match(key):
            return 400, ErrorResult(
                "invalid-request", "store keys are 64-char hex digests", 400
            ).to_dict()
        if self._closed:
            return 503, ErrorResult("shutting-down", "the daemon is draining", 503).to_dict()
        if self.session.runtime.store is None:
            return 503, ErrorResult(
                "no-store", "this daemon runs without an automaton store", 503
            ).to_dict()
        return None

    def store_get(self, key: str) -> Tuple[int, object]:
        """Raw entry text for ``key``: ``(200, text)``, or an error document.

        Entries are served verbatim (no decode): damage handling is the
        *reader's* job — a joiner that receives a corrupt entry rejects and
        recomputes exactly as it would for a corrupt local file.
        """
        refusal = self._store_status(key)
        if refusal is not None:
            return refusal
        store = self.session.runtime.store
        try:
            text = store.backend.read_text(key)
        except OSError as error:
            self.metrics.store_request("get-error")
            return 500, ErrorResult("internal", f"store read failed: {error}", 500).to_dict()
        if text is None:
            self.metrics.store_request("get-miss")
            return 404, ErrorResult("not-found", f"no store entry {key[:12]}…", 404).to_dict()
        self.metrics.store_request("get-hit")
        return 200, text

    def store_put(self, key: str, text: str) -> Tuple[int, Optional[Dict]]:
        """Publish raw entry text under ``key``; ``(204, None)`` on success.

        The body must at least parse as a JSON object so a truncated upload
        is refused at the door; full payload validation (schema version,
        automaton decode) stays reader-side, mirroring local-store behaviour
        where a put is a blind atomic write.
        """
        refusal = self._store_status(key)
        if refusal is not None:
            return refusal
        try:
            payload = json.loads(text)
        except ValueError as error:
            return 400, ErrorResult(
                "invalid-request", f"store entry is not JSON: {error}", 400
            ).to_dict()
        if not isinstance(payload, dict):
            return 400, ErrorResult(
                "invalid-request", "store entry must be a JSON object", 400
            ).to_dict()
        store = self.session.runtime.store
        try:
            store.backend.write_text(key, text)
        except OSError as error:
            self.metrics.store_request("put-error")
            return 500, ErrorResult("internal", f"store write failed: {error}", 500).to_dict()
        self.metrics.store_request("put")
        return 204, None

    def stream_campaign(self, document) -> Iterator[Tuple[str, Dict]]:
        """SSE event source for one campaign: ``(event_name, document)`` pairs.

        Yields a ``record`` event per ``campaign-job`` document, then exactly
        one terminal event: ``summary`` (the ``campaign`` result) or
        ``error``.  ``request_timeout`` bounds the *gap between events*, not
        the whole run — a streaming consumer is getting progress, so only
        silence signals a stuck campaign.
        """
        try:
            inject("service.request")
        except InjectedFault as error:
            self.metrics.request_refused("unavailable")
            yield "error", ErrorResult("unavailable", str(error), 503).to_dict()
            return
        try:
            problem = Problem.from_dict(document)
        except (SchemaError, ValueError, TypeError, KeyError) as error:
            yield "error", ErrorResult("invalid-request", str(error), 400).to_dict()
            return
        if not isinstance(problem, CampaignProblem):
            yield "error", ErrorResult(
                "invalid-request",
                "the stream endpoint takes a problem/campaign document",
                400,
            ).to_dict()
            return
        if self._closed:
            yield "error", ErrorResult("shutting-down", "the daemon is draining", 503).to_dict()
            return
        if not self._slots.acquire(blocking=False):
            self.metrics.request_rejected()
            yield "error", ErrorResult(
                "saturated",
                f"admission budget full ({self.config.max_in_flight} in flight); retry later",
                429,
            ).to_dict()
            return
        self.metrics.request_started()
        start = time.perf_counter()
        events: "queue.Queue[Tuple[str, object]]" = queue.Queue()

        def produce() -> None:
            try:
                result = self.session.run_campaign(
                    problem, on_record=lambda record: events.put(("record", record))
                )
            except Exception as error:
                events.put(("failure", error))
            else:
                events.put(("summary", result))

        future = self._executor.submit(produce)
        future.add_done_callback(lambda _f: self._slots.release())
        while True:
            try:
                kind, payload = events.get(timeout=self.config.request_timeout)
            except queue.Empty:
                self.metrics.request_failed("timeout")
                yield "error", ErrorResult(
                    "timeout",
                    f"no campaign progress within {self.config.request_timeout:g}s",
                    504,
                ).to_dict()
                return
            if kind == "record":
                self.metrics.record_streamed()
                yield "record", payload
            elif kind == "summary":
                self.metrics.observe_result(payload)
                self.metrics.request_finished(payload.kind, time.perf_counter() - start)
                yield "summary", payload.to_dict()
                return
            else:
                self.metrics.request_failed("internal")
                yield "error", ErrorResult(
                    "internal", f"{type(payload).__name__}: {payload}", 500
                ).to_dict()
                return


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: VerificationService


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "autoq-repro-serve"

    @property
    def service(self) -> VerificationService:
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging is the metrics page's job, not stderr's

    # -------------------------------------------------------------- helpers
    def _send_json(self, status: int, payload: Dict) -> None:
        body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status in TRANSIENT_STATUSES:
            self.send_header("Retry-After", str(RETRY_AFTER_HINT_SECONDS))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_document(self, error: str, message: str, code: int) -> None:
        self._send_json(code, ErrorResult(error, message, code).to_dict())

    def _read_document(self) -> Dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("missing request body (send one problem document)")
        if length > MAX_BODY_BYTES:
            raise ValueError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as error:
            raise ValueError(f"request body is not JSON: {error}") from error

    def _store_key(self) -> Optional[str]:
        """The digest of a ``/api/v1/store/{digest}`` path (else ``None``)."""
        if not self.path.startswith(STORE_ENDPOINT_PREFIX):
            return None
        return self.path[len(STORE_ENDPOINT_PREFIX):]

    # ------------------------------------------------------------ endpoints
    def do_GET(self) -> None:
        store_key = self._store_key()
        if self.path == "/healthz":
            self._send_json(200, self.service.health())
        elif self.path == "/metrics":
            body = self.service.render_metrics().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif store_key is not None:
            status, payload = self.service.store_get(store_key)
            if status == 200:
                body = payload.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self._send_json(status, payload)
        else:
            self._send_error_document("not-found", f"no endpoint {self.path!r}", 404)

    def do_PUT(self) -> None:
        store_key = self._store_key()
        if store_key is None:
            self._send_error_document("not-found", f"no endpoint {self.path!r}", 404)
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_error_document(
                "invalid-request",
                f"store entry body must be 1..{MAX_BODY_BYTES} bytes",
                400,
            )
            return
        text = self.rfile.read(length).decode("utf-8", errors="replace")
        status, payload = self.service.store_put(store_key, text)
        if status == 204:
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()
        else:
            self._send_json(status, payload)

    def do_POST(self) -> None:
        if self.path == "/v1/run":
            try:
                document = self._read_document()
            except ValueError as error:
                self._send_error_document("invalid-request", str(error), 400)
                return
            status, payload = self.service.run_document(document)
            self._send_json(status, payload)
        elif self.path == "/v1/campaign/stream":
            try:
                document = self._read_document()
            except ValueError as error:
                self._send_error_document("invalid-request", str(error), 400)
                return
            self.close_connection = True
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Connection", "close")
            self.end_headers()
            try:
                for event, payload in self.service.stream_campaign(document):
                    chunk = f"event: {event}\ndata: {json.dumps(payload, sort_keys=True)}\n\n"
                    self.wfile.write(chunk.encode("utf-8"))
                    self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-stream; the campaign finishes anyway
        else:
            self._send_error_document("not-found", f"no endpoint {self.path!r}", 404)


class ServiceServer:
    """A :class:`VerificationService` bound to a listening HTTP socket.

    Foreground use (the CLI)::

        server = ServiceServer(config)
        try:
            server.serve_forever()        # until SIGINT/SIGTERM
        finally:
            server.stop()                 # drains in-flight work

    Background use (tests, benchmarks, smoke scripts)::

        server = ServiceServer(config, port=0).start()
        ... ServiceClient(server.url) ...
        server.stop()
    """

    def __init__(self, config: Optional[ServiceConfig] = None, **overrides):
        self.service = VerificationService(config, **overrides)
        cfg = self.service.config
        self._httpd = _ServiceHTTPServer((cfg.host, cfg.port), _Handler)
        self._httpd.service = self.service
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (the OS-assigned one when configured with port 0)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Block answering requests until :meth:`stop` (or KeyboardInterrupt)."""
        self._httpd.serve_forever(poll_interval=0.2)

    def start(self) -> "ServiceServer":
        """Serve on a daemon thread; returns self once the socket is live."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-listener", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop listening, then drain (or abandon) in-flight work."""
        if self._thread is not None and self._thread.is_alive():
            self._httpd.shutdown()
            self._thread.join()
        self._httpd.server_close()
        self.service.close(drain=drain)


def fastapi_available() -> bool:
    """Whether the optional FastAPI front-end can be built in this process."""
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def build_fastapi_app(service: VerificationService):
    """The same service core as an ASGI app (optional fast path).

    Only callable when FastAPI is installed (:func:`fastapi_available`);
    the stdlib server above is the dependency-free, tested path.  Run with
    any ASGI server, e.g. ``uvicorn``.
    """
    from fastapi import FastAPI, Request
    from fastapi.responses import PlainTextResponse, Response, StreamingResponse

    app = FastAPI(title="autoq-repro verification service")

    @app.get("/healthz")
    def healthz():
        return service.health()

    @app.get("/metrics")
    def metrics():
        return PlainTextResponse(
            service.render_metrics(),
            media_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @app.post("/v1/run")
    async def run(request: Request):
        status, payload = service.run_document(await request.json())
        headers = {}
        if status in TRANSIENT_STATUSES:
            headers["Retry-After"] = str(RETRY_AFTER_HINT_SECONDS)
        return Response(
            content=json.dumps(payload, sort_keys=True),
            status_code=status,
            media_type="application/json",
            headers=headers,
        )

    @app.post("/v1/campaign/stream")
    async def stream(request: Request):
        document = await request.json()

        def events():
            for event, payload in service.stream_campaign(document):
                yield f"event: {event}\ndata: {json.dumps(payload, sort_keys=True)}\n\n"

        return StreamingResponse(events(), media_type="text/event-stream")

    @app.get(STORE_ENDPOINT_PREFIX + "{key}")
    def store_get(key: str):
        status, payload = service.store_get(key)
        if status == 200:
            return Response(content=payload, media_type="application/json")
        return Response(
            content=json.dumps(payload, sort_keys=True),
            status_code=status,
            media_type="application/json",
        )

    @app.put(STORE_ENDPOINT_PREFIX + "{key}")
    async def store_put(key: str, request: Request):
        body = await request.body()
        status, payload = service.store_put(key, body.decode("utf-8", errors="replace"))
        if status == 204:
            return Response(status_code=204)
        return Response(
            content=json.dumps(payload, sort_keys=True),
            status_code=status,
            media_type="application/json",
        )

    return app
