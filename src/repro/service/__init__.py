"""repro.service — the verification daemon over the typed :mod:`repro.api`.

``repro.cli serve`` (or :class:`ServiceServer` directly) keeps one warm
:class:`~repro.api.Session` alive and answers problem documents over
HTTP + JSON, so repeated queries share the gate memo and automaton store
instead of paying cold-start per process.  See ``docs/service.md`` for the
endpoint reference and deployment notes, and :mod:`repro.api.client` for the
matching thin client.
"""

from .metrics import ServiceMetrics
from .server import (
    ServiceConfig,
    ServiceServer,
    VerificationService,
    build_fastapi_app,
    fastapi_available,
)

__all__ = [
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceServer",
    "VerificationService",
    "build_fastapi_app",
    "fastapi_available",
]
