"""Reference unitary matrices of the supported gates over the algebraic ring.

These are the "standard semantics" of Appendix A of the paper.  They are used
by the exact simulators (:mod:`repro.simulator`) and by tests that validate the
symbolic update formulae of Table 1 (Theorem 4.1) against matrix semantics.

Matrices are stored as tuples of tuples of :class:`~repro.algebraic.omega.AlgebraicNumber`
so that they stay exact; helpers convert them to numpy complex arrays on demand.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from .omega import ONE, ZERO, AlgebraicNumber

__all__ = [
    "GATE_MATRICES",
    "gate_matrix",
    "matrix_to_complex",
    "kron",
    "matvec",
    "matmul",
    "identity_matrix",
    "is_unitary",
]

Matrix = Tuple[Tuple[AlgebraicNumber, ...], ...]

_W = AlgebraicNumber(0, 1, 0, 0, 0)        # w
_W2 = AlgebraicNumber(0, 0, 1, 0, 0)       # w^2 == i
_NEG_ONE = AlgebraicNumber(-1, 0, 0, 0, 0)
_H_COEFF = AlgebraicNumber(1, 0, 0, 0, 1)  # 1/sqrt(2)


def _m(rows: Sequence[Sequence[AlgebraicNumber]]) -> Matrix:
    return tuple(tuple(row) for row in rows)


def identity_matrix(dim: int) -> Matrix:
    """Exact identity matrix of the given dimension."""
    return _m([[ONE if i == j else ZERO for j in range(dim)] for i in range(dim)])


#: Single- and multi-qubit gate matrices keyed by canonical gate name
#: (Appendix A of the paper).  Control qubits come before the target in the
#: tensor ordering used by :func:`repro.simulator.dense.circuit_unitary`.
GATE_MATRICES: Dict[str, Matrix] = {
    "X": _m([[ZERO, ONE], [ONE, ZERO]]),
    "Y": _m([[ZERO, -_W2], [_W2, ZERO]]),
    "Z": _m([[ONE, ZERO], [ZERO, _NEG_ONE]]),
    "H": _m([[_H_COEFF, _H_COEFF], [_H_COEFF, -_H_COEFF]]),
    "S": _m([[ONE, ZERO], [ZERO, _W2]]),
    "SDG": _m([[ONE, ZERO], [ZERO, -_W2]]),
    "T": _m([[ONE, ZERO], [ZERO, _W]]),
    "TDG": _m([[ONE, ZERO], [ZERO, _W.conjugate()]]),
    "RX": _m([[_H_COEFF, -_W2 * _H_COEFF], [-_W2 * _H_COEFF, _H_COEFF]]),
    "RY": _m([[_H_COEFF, -_H_COEFF], [_H_COEFF, _H_COEFF]]),
    "CX": _m(
        [
            [ONE, ZERO, ZERO, ZERO],
            [ZERO, ONE, ZERO, ZERO],
            [ZERO, ZERO, ZERO, ONE],
            [ZERO, ZERO, ONE, ZERO],
        ]
    ),
    "CZ": _m(
        [
            [ONE, ZERO, ZERO, ZERO],
            [ZERO, ONE, ZERO, ZERO],
            [ZERO, ZERO, ONE, ZERO],
            [ZERO, ZERO, ZERO, _NEG_ONE],
        ]
    ),
    "CS": _m(
        [
            [ONE, ZERO, ZERO, ZERO],
            [ZERO, ONE, ZERO, ZERO],
            [ZERO, ZERO, ONE, ZERO],
            [ZERO, ZERO, ZERO, _W2],
        ]
    ),
    "CSDG": _m(
        [
            [ONE, ZERO, ZERO, ZERO],
            [ZERO, ONE, ZERO, ZERO],
            [ZERO, ZERO, ONE, ZERO],
            [ZERO, ZERO, ZERO, -_W2],
        ]
    ),
    "CT": _m(
        [
            [ONE, ZERO, ZERO, ZERO],
            [ZERO, ONE, ZERO, ZERO],
            [ZERO, ZERO, ONE, ZERO],
            [ZERO, ZERO, ZERO, _W],
        ]
    ),
    "CTDG": _m(
        [
            [ONE, ZERO, ZERO, ZERO],
            [ZERO, ONE, ZERO, ZERO],
            [ZERO, ZERO, ONE, ZERO],
            [ZERO, ZERO, ZERO, _W.conjugate()],
        ]
    ),
    "CCX": _m(
        [
            [ONE if i == j else ZERO for j in range(8)]
            if i < 6
            else [ZERO] * 6 + ([ZERO, ONE] if i == 6 else [ONE, ZERO])
            for i in range(8)
        ]
    ),
    "FREDKIN": _m(
        [
            [ONE if i == j else ZERO for j in range(8)]
            if i not in (5, 6)
            else [ONE if j == (6 if i == 5 else 5) else ZERO for j in range(8)]
            for i in range(8)
        ]
    ),
}


def gate_matrix(name: str) -> Matrix:
    """Return the exact matrix for a gate name (case-insensitive).

    Raises :class:`KeyError` for unsupported gates.
    """
    return GATE_MATRICES[name.upper()]


def matrix_to_complex(matrix: Matrix):
    """Convert an exact matrix to a numpy ``complex128`` array.

    numpy is imported lazily so that the core library stays dependency-free.
    """
    import numpy as np

    return np.array([[entry.to_complex() for entry in row] for row in matrix], dtype=complex)


def kron(left: Matrix, right: Matrix) -> Matrix:
    """Exact Kronecker product of two matrices."""
    rows = []
    for lrow in left:
        for rrow in right:
            rows.append(tuple(lentry * rentry for lentry in lrow for rentry in rrow))
    return tuple(rows)


def matmul(left: Matrix, right: Matrix) -> Matrix:
    """Exact matrix product."""
    if not left or not right:
        return ()
    inner = len(right)
    cols = len(right[0])
    rows = []
    for lrow in left:
        row = []
        for j in range(cols):
            acc = ZERO
            for t in range(inner):
                if lrow[t].is_zero() or right[t][j].is_zero():
                    continue
                acc = acc + lrow[t] * right[t][j]
            row.append(acc)
        rows.append(tuple(row))
    return tuple(rows)


def matvec(matrix: Matrix, vector: Sequence[AlgebraicNumber]) -> Tuple[AlgebraicNumber, ...]:
    """Exact matrix-vector product."""
    result = []
    for row in matrix:
        acc = ZERO
        for entry, component in zip(row, vector):
            if entry.is_zero() or component.is_zero():
                continue
            acc = acc + entry * component
        result.append(acc)
    return tuple(result)


def conjugate_transpose(matrix: Matrix) -> Matrix:
    """Exact conjugate transpose (dagger)."""
    if not matrix:
        return ()
    return tuple(
        tuple(matrix[i][j].conjugate() for i in range(len(matrix)))
        for j in range(len(matrix[0]))
    )


def is_unitary(matrix: Matrix) -> bool:
    """Check ``M * M^dagger == I`` exactly."""
    product = matmul(matrix, conjugate_transpose(matrix))
    return product == identity_matrix(len(matrix))
