"""Exact algebraic amplitude arithmetic (Section 2.1 of the paper)."""

from .omega import OMEGA, ONE, SQRT2_INV, ZERO, AlgebraicNumber
from .matrices import (
    GATE_MATRICES,
    gate_matrix,
    identity_matrix,
    is_unitary,
    kron,
    matmul,
    matrix_to_complex,
    matvec,
)

__all__ = [
    "AlgebraicNumber",
    "ZERO",
    "ONE",
    "OMEGA",
    "SQRT2_INV",
    "GATE_MATRICES",
    "gate_matrix",
    "identity_matrix",
    "is_unitary",
    "kron",
    "matmul",
    "matrix_to_complex",
    "matvec",
]
