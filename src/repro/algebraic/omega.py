"""Exact algebraic representation of amplitudes used by the framework.

The paper (Section 2.1, Eq. (3)) represents every amplitude as

    (1/sqrt(2))**k * (a + b*w + c*w**2 + d*w**3),     w = e^{i*pi/4},

with ``a, b, c, d, k`` integers.  The tuple ``(a, b, c, d, k)`` is a precise,
floating-point-free encoding that is closed under every gate in Table 1 of the
paper (the Clifford+T universal set and more).

This module provides :class:`AlgebraicNumber`, an immutable value type with the
ring operations needed by the tree-automaton transformers and by the exact
simulator (addition, subtraction, multiplication, multiplication by ``w`` and
``1/sqrt(2)``), together with conversion to Python ``complex`` and a canonical
form so that equal amplitudes compare equal.

Key identities used throughout:

* ``w**4 == -1`` so multiplication by ``w`` is a signed circular shift of
  ``(a, b, c, d)``.
* ``sqrt(2) == w - w**3``, hence ``(1/sqrt(2)) == (w - w**3) / 2`` and a value
  with even coefficients can always trade a factor of 2 against ``k``.
"""

from __future__ import annotations

import cmath
import math
from typing import Iterator, Tuple

__all__ = ["AlgebraicNumber", "ZERO", "ONE", "OMEGA", "SQRT2_INV"]

_OMEGA_COMPLEX = cmath.exp(1j * math.pi / 4)


class AlgebraicNumber:
    """An element of Z[w, 1/sqrt(2)] written as ``(1/sqrt(2))^k (a + bw + cw^2 + dw^3)``.

    Instances are immutable and hashable.  Two instances are equal iff they
    denote the same complex number; a canonical form (see :meth:`canonical`)
    guarantees this even when the raw tuples differ (e.g. ``(2,0,0,0,2)`` and
    ``(1,0,0,0,0)`` both denote 1).
    """

    __slots__ = ("a", "b", "c", "d", "k")

    def __init__(self, a: int = 0, b: int = 0, c: int = 0, d: int = 0, k: int = 0):
        a, b, c, d, k = int(a), int(b), int(c), int(d), int(k)
        # Canonicalise so that equal values always produce identical tuples:
        # * the zero value is stored as (0, 0, 0, 0, 0);
        # * k is made non-negative by multiplying the numerator by sqrt(2);
        # * k is minimal: while the numerator is divisible by sqrt(2) = w - w^3
        #   (which holds iff a = c and b = d modulo 2) and k > 0, divide it out.
        if a == 0 and b == 0 and c == 0 and d == 0:
            k = 0
        else:
            while k < 0:
                # multiply numerator by sqrt(2) = w - w^3
                a, b, c, d = _mul_tuple((a, b, c, d), (0, 1, 0, -1))
                k += 1
            while k > 0 and (a - c) % 2 == 0 and (b - d) % 2 == 0:
                # divide numerator by sqrt(2): x / sqrt(2) = x * (w - w^3) / 2
                a, b, c, d = (b - d) // 2, (a + c) // 2, (b + d) // 2, (c - a) // 2
                k -= 1
        self.a = a
        self.b = b
        self.c = c
        self.d = d
        self.k = k

    # ------------------------------------------------------------------ basics
    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """Return the raw ``(a, b, c, d, k)`` tuple in canonical form."""
        return (self.a, self.b, self.c, self.d, self.k)

    def canonical(self) -> "AlgebraicNumber":
        """Return ``self`` (instances are always stored canonically)."""
        return self

    def is_zero(self) -> bool:
        """True iff the value denotes the complex number 0."""
        return self.a == 0 and self.b == 0 and self.c == 0 and self.d == 0

    def __bool__(self) -> bool:
        return not self.is_zero()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AlgebraicNumber):
            return NotImplemented
        if self.k == other.k:
            return self.as_tuple() == other.as_tuple()
        # Same value can only have different k if one is not fully reduced;
        # compare after lifting to a common k.
        k = max(self.k, other.k)
        return self._lift(k) == other._lift(k)

    def _lift(self, k: int) -> Tuple[int, int, int, int, int]:
        """Return coefficients rescaled so that the exponent equals ``k >= self.k``."""
        a, b, c, d = self.a, self.b, self.c, self.d
        delta = k - self.k
        if delta < 0:
            raise ValueError("cannot lift to a smaller exponent")
        for _ in range(delta):
            a, b, c, d = _mul_tuple((a, b, c, d), (0, 1, 0, -1))  # * sqrt(2)
        return (a, b, c, d, k)

    def __repr__(self) -> str:
        return f"AlgebraicNumber(a={self.a}, b={self.b}, c={self.c}, d={self.d}, k={self.k})"

    def __str__(self) -> str:
        if self.is_zero():
            return "0"
        terms = []
        for coeff, name in ((self.a, ""), (self.b, "w"), (self.c, "w^2"), (self.d, "w^3")):
            if coeff == 0:
                continue
            if name:
                terms.append(f"{coeff}*{name}" if abs(coeff) != 1 else ("-" + name if coeff < 0 else name))
            else:
                terms.append(str(coeff))
        body = " + ".join(terms).replace("+ -", "- ")
        if self.k:
            return f"(1/sqrt2)^{self.k} * ({body})"
        return body

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other: "AlgebraicNumber") -> "AlgebraicNumber":
        if not isinstance(other, AlgebraicNumber):
            return NotImplemented
        k = max(self.k, other.k)
        a1, b1, c1, d1, _ = self._lift(k)
        a2, b2, c2, d2, _ = other._lift(k)
        return AlgebraicNumber(a1 + a2, b1 + b2, c1 + c2, d1 + d2, k)

    def __sub__(self, other: "AlgebraicNumber") -> "AlgebraicNumber":
        if not isinstance(other, AlgebraicNumber):
            return NotImplemented
        return self + (-other)

    def __neg__(self) -> "AlgebraicNumber":
        return AlgebraicNumber(-self.a, -self.b, -self.c, -self.d, self.k)

    def __mul__(self, other: "AlgebraicNumber") -> "AlgebraicNumber":
        if isinstance(other, int):
            return AlgebraicNumber(self.a * other, self.b * other, self.c * other, self.d * other, self.k)
        if not isinstance(other, AlgebraicNumber):
            return NotImplemented
        a, b, c, d = _mul_tuple((self.a, self.b, self.c, self.d), (other.a, other.b, other.c, other.d))
        return AlgebraicNumber(a, b, c, d, self.k + other.k)

    __rmul__ = __mul__

    def times_omega(self, power: int = 1) -> "AlgebraicNumber":
        """Multiply by ``w**power`` (signed circular shift, Section 2.1)."""
        a, b, c, d = self.a, self.b, self.c, self.d
        power %= 8
        for _ in range(power):
            a, b, c, d = -d, a, b, c
        return AlgebraicNumber(a, b, c, d, self.k)

    def times_sqrt2_inv(self, times: int = 1) -> "AlgebraicNumber":
        """Multiply by ``(1/sqrt(2))**times`` (increment the exponent ``k``)."""
        if times < 0:
            raise ValueError("times must be non-negative")
        if self.is_zero():
            return ZERO
        return AlgebraicNumber(self.a, self.b, self.c, self.d, self.k + times)

    def conjugate(self) -> "AlgebraicNumber":
        """Complex conjugate: w -> w^7 = -w^3, w^2 -> -w^2 ... i.e. conj(w^j)=w^{-j}."""
        # conj(a + bw + cw^2 + dw^3) = a + b*conj(w) + c*conj(w^2) + d*conj(w^3)
        #                            = a - d*w - c*w^2 - b*w^3  (since conj(w)=w^{-1}=-w^3)
        return AlgebraicNumber(self.a, -self.d, -self.c, -self.b, self.k)

    def abs_squared(self) -> "AlgebraicNumber":
        """Return |self|^2 as an algebraic number (always real)."""
        return self * self.conjugate()

    # ------------------------------------------------------------ conversions
    def to_complex(self) -> complex:
        """Convert to a floating point ``complex`` (for display / cross-checks)."""
        value = (
            self.a
            + self.b * _OMEGA_COMPLEX
            + self.c * _OMEGA_COMPLEX ** 2
            + self.d * _OMEGA_COMPLEX ** 3
        )
        return value / (math.sqrt(2) ** self.k)

    def to_float(self) -> float:
        """Convert a real-valued amplitude to ``float`` (raises if imaginary)."""
        z = self.to_complex()
        if abs(z.imag) > 1e-9:
            raise ValueError(f"{self!r} is not real")
        return z.real

    @classmethod
    def from_int(cls, value: int) -> "AlgebraicNumber":
        """Embed an integer into the ring."""
        return cls(value, 0, 0, 0, 0)

    @classmethod
    def omega_power(cls, power: int) -> "AlgebraicNumber":
        """Return ``w**power``."""
        return ONE.times_omega(power)

    def __iter__(self) -> Iterator[int]:
        return iter(self.as_tuple())


def _mul_tuple(x: Tuple[int, int, int, int], y: Tuple[int, int, int, int]) -> Tuple[int, int, int, int]:
    """Multiply two elements of Z[w] given by coefficient 4-tuples (w^4 = -1)."""
    a1, b1, c1, d1 = x
    a2, b2, c2, d2 = y
    # (a1 + b1 w + c1 w^2 + d1 w^3)(a2 + b2 w + c2 w^2 + d2 w^3), reduce w^4 = -1.
    prod = [0] * 7
    coeffs1 = (a1, b1, c1, d1)
    coeffs2 = (a2, b2, c2, d2)
    for i, ci in enumerate(coeffs1):
        if ci == 0:
            continue
        for j, cj in enumerate(coeffs2):
            if cj == 0:
                continue
            prod[i + j] += ci * cj
    a = prod[0] - prod[4]
    b = prod[1] - prod[5]
    c = prod[2] - prod[6]
    d = prod[3]
    return (a, b, c, d)


#: The additive identity ``0``.
ZERO = AlgebraicNumber(0, 0, 0, 0, 0)
#: The multiplicative identity ``1``.
ONE = AlgebraicNumber(1, 0, 0, 0, 0)
#: The eighth root of unity ``w = e^{i pi/4}``.
OMEGA = AlgebraicNumber(0, 1, 0, 0, 0)
#: ``1/sqrt(2)``.
SQRT2_INV = AlgebraicNumber(1, 0, 0, 0, 1)
