"""Differential fuzzing of the TA engine + the replayable regression corpus.

The paper's evaluation trusts the automata engine to be the *oracle* for
simulators; this package keeps that oracle honest.  It stress-tests the
framework against itself along two axes:

* :mod:`repro.fuzz.oracles` — differential checks: the boolean TA layer
  against brute-force tree enumeration at small sizes, and all three engine
  modes against the statevector / decision-diagram / path-sum baselines,
  gate by gate (promoted from the hand-picked circuits of
  ``tests/test_differential.py`` to seeded random mutants), plus a
  LintQ-style static pre-filter that triages mutants before any automaton
  is built;
* :mod:`repro.fuzz.generators` — a deterministic, seeded stream of mutated
  circuits (the taxonomy of :mod:`repro.circuits.mutations`) and random
  boolean-operand cases;
* :mod:`repro.fuzz.shrink` — greedy minimization of every divergence;
* :mod:`repro.fuzz.corpus` — content-addressed, versioned JSON corpus
  entries that ``repro fuzz replay`` and campaign runs re-execute as
  regression gates;
* :mod:`repro.fuzz.driver` — the time-budgeted loop behind ``repro fuzz``.
"""

from .corpus import CORPUS_DIR_ENV, FUZZ_ENTRY_KIND, Corpus, CorpusError, default_corpus_dir
from .driver import FUZZ_CHECKS, FuzzOutcome, FuzzSettings, replay_corpus, run_fuzz
from .generators import BooleanCase, FuzzCase, generate_boolean_cases, generate_cases
from .oracles import (
    BOOLEAN_OPERATIONS,
    OracleVerdict,
    boolean_oracle,
    boolean_universe,
    brute_language,
    cross_mode_oracle,
    static_prefilter,
)
from .shrink import shrink_circuit, shrink_states

__all__ = [
    "BOOLEAN_OPERATIONS",
    "BooleanCase",
    "CORPUS_DIR_ENV",
    "Corpus",
    "CorpusError",
    "FUZZ_CHECKS",
    "FUZZ_ENTRY_KIND",
    "FuzzCase",
    "FuzzOutcome",
    "FuzzSettings",
    "OracleVerdict",
    "boolean_oracle",
    "boolean_universe",
    "brute_language",
    "cross_mode_oracle",
    "default_corpus_dir",
    "generate_boolean_cases",
    "generate_cases",
    "replay_corpus",
    "run_fuzz",
    "shrink_circuit",
    "shrink_states",
    "static_prefilter",
]
