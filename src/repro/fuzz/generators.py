"""Deterministic, seeded case streams for the differential fuzzer.

Two infinite generators, both fully determined by one integer seed:

* :func:`generate_cases` — seeded random circuits pushed through the mutation
  taxonomy of :mod:`repro.circuits.mutations` (cycling over the requested
  kinds, with the paper's gate insertion as the universal fallback), paired
  with a random basis input for the cross-mode oracle;
* :func:`generate_boolean_cases` — small random quantum-state sets over tiny
  leaf alphabets for the brute-force boolean oracle.

Case ``i`` of seed ``s`` derives its own ``random.Random`` from
``s * 1_000_003 + i``, so any case can be regenerated in isolation — corpus
entries record the per-case seed, not a stream position.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from ..algebraic import ONE, SQRT2_INV, AlgebraicNumber, ZERO
from ..circuits.circuit import Circuit
from ..circuits.mutations import MUTATION_OPERATORS, MutationRecord, inject_random_gate
from ..circuits.random_circuits import random_circuit
from ..states import QuantumState, int_to_bits

__all__ = ["BooleanCase", "FuzzCase", "case_seed", "generate_boolean_cases", "generate_cases"]

_SEED_STRIDE = 1_000_003

#: small amplitude alphabets for boolean cases (zero is always added — the
#: complement universe should contain the all-zero tree)
_ALPHABETS: Tuple[Tuple[AlgebraicNumber, ...], ...] = (
    (ZERO, ONE),
    (ZERO, ONE, SQRT2_INV),
    (ZERO, ONE, AlgebraicNumber(-1, 0, 0, 0, 0)),
    (ZERO, SQRT2_INV, AlgebraicNumber(0, 1, 0, 0, 0)),  # 0, 1/sqrt(2), omega
)


def case_seed(seed: int, index: int) -> int:
    """The derived seed of case ``index`` in the stream for ``seed``."""
    return seed * _SEED_STRIDE + index


@dataclass(frozen=True)
class FuzzCase:
    """One mutant circuit plus everything needed to replay it."""

    index: int
    seed: int  # the derived per-case seed
    kind: str  # mutation kind actually applied
    reference: Circuit
    circuit: Circuit  # the mutant
    record: Optional[MutationRecord]
    input_bits: Tuple[int, ...]


@dataclass(frozen=True)
class BooleanCase:
    """Operand state-sets + alphabet for one boolean-layer oracle run."""

    index: int
    seed: int
    num_qubits: int
    alphabet: Tuple[AlgebraicNumber, ...]
    left: Tuple[QuantumState, ...]
    right: Tuple[QuantumState, ...]


def generate_cases(
    seed: int,
    max_qubits: int = 4,
    max_gates: int = 10,
    mutation_kinds: Sequence[str] = tuple(MUTATION_OPERATORS),
) -> Iterator[FuzzCase]:
    """Infinite deterministic stream of mutated-circuit cases."""
    for kind in mutation_kinds:
        if kind not in MUTATION_OPERATORS:
            raise ValueError(
                f"unknown mutation kind {kind!r}; expected one of {tuple(MUTATION_OPERATORS)}"
            )
    if not mutation_kinds:
        raise ValueError("at least one mutation kind is required")
    for index in range(0, 1 << 62):
        derived = case_seed(seed, index)
        rng = random.Random(derived)
        num_qubits = rng.randint(2, max(2, max_qubits))
        num_gates = rng.randint(3, max(3, max_gates))
        reference = random_circuit(num_qubits, num_gates=num_gates, seed=derived)
        kind = mutation_kinds[index % len(mutation_kinds)]
        try:
            mutant, record = MUTATION_OPERATORS[kind](reference, rng=rng)
        except ValueError:
            kind = "insert"
            mutant, record = inject_random_gate(reference, rng=rng)
        input_bits = tuple(rng.randint(0, 1) for _ in range(num_qubits))
        yield FuzzCase(
            index=index,
            seed=derived,
            kind=kind,
            reference=reference,
            circuit=mutant,
            record=record,
            input_bits=input_bits,
        )


def _random_state(
    rng: random.Random, num_qubits: int, alphabet: Sequence[AlgebraicNumber]
) -> QuantumState:
    """One random leaf assignment (possibly the all-zero tree)."""
    state = QuantumState(num_qubits)
    for index in range(1 << num_qubits):
        amplitude = rng.choice(alphabet)
        if not amplitude.is_zero():
            state[int_to_bits(index, num_qubits)] = amplitude
    return state


def generate_boolean_cases(seed: int, max_qubits: int = 2) -> Iterator[BooleanCase]:
    """Infinite deterministic stream of boolean-layer operand cases.

    Kept deliberately small: the brute-force universe has
    ``len(alphabet) ** 2**num_qubits`` trees, so ``max_qubits`` above 3 would
    make the ground truth itself the bottleneck.
    """
    for index in range(0, 1 << 62):
        derived = case_seed(seed, index)
        rng = random.Random(derived)
        num_qubits = rng.randint(1, max(1, min(max_qubits, 3)))
        alphabet = _ALPHABETS[rng.randrange(len(_ALPHABETS))]
        if num_qubits >= 3:
            alphabet = _ALPHABETS[0]  # keep the 256-tree universe binary
        left = tuple(
            _random_state(rng, num_qubits, alphabet) for _ in range(rng.randint(1, 3))
        )
        right = tuple(
            _random_state(rng, num_qubits, alphabet) for _ in range(rng.randint(1, 3))
        )
        yield BooleanCase(
            index=index,
            seed=derived,
            num_qubits=num_qubits,
            alphabet=alphabet,
            left=left,
            right=right,
        )
