"""Differential oracles: the engine against every independent semantics we have.

Three oracle families, each returning an :class:`OracleVerdict`:

* :func:`cross_mode_oracle` — run one circuit gate by gate through every
  engine :class:`~repro.core.engine.AnalysisMode` and the statevector,
  decision-diagram and (optionally) path-sum baselines, demanding exact
  agreement after every gate.  This is the harness of
  ``tests/test_differential.py`` promoted to a reusable library: the test
  module now imports :func:`assert_states_close`, :func:`evaluate_path_sum`
  and friends from here.
* :func:`kernel_parity_oracle` — run one circuit under every available TA
  kernel backend (:mod:`repro.ta.kernel`) and demand *bit-identical* automata
  — equal ``structure_key()`` — after every gate, enforcing the kernel
  conformance contract differentially.
* :func:`boolean_oracle` — check the boolean TA layer
  (:mod:`repro.ta.boolean`) against brute-force enumeration of the full tree
  universe at small sizes: every tree over a finite leaf alphabet is tested
  for membership with :meth:`TreeAutomaton.accepts`, and the resulting
  languages must match set-for-set.

:func:`static_prefilter` is the LintQ-style cheap triage pass: mutants that a
syntactic check proves equivalent to their seed circuit (commuting
transpositions, symmetric-operand swaps) are discarded *before* any automaton
is constructed, so the fuzz budget is spent on mutants that can actually
teach us something.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..algebraic import AlgebraicNumber
from ..baselines import PathSumChecker
from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..circuits.mutations import MutationRecord
from ..core.engine import AnalysisMode, CircuitEngine, GateRuntime
from ..core.permutation import supports_permutation
from ..simulator.decision_diagram import DDState, DecisionDiagramSimulator
from ..simulator.statevector import StateVectorSimulator
from ..states import QuantumState, int_to_bits
from ..ta import boolean
from ..ta.automaton import TreeAutomaton
from ..ta.construction import basis_state_ta

__all__ = [
    "BOOLEAN_OPERATIONS",
    "DIAGONAL_GATES",
    "PERMUTATION_POOL",
    "OracleVerdict",
    "assert_states_close",
    "boolean_oracle",
    "boolean_universe",
    "brute_language",
    "cross_mode_oracle",
    "evaluate_path_sum",
    "kernel_parity_oracle",
    "prefix_path_sum_states",
    "random_permutation_circuit",
    "state_key",
    "states_close",
    "static_prefilter",
]

#: gates the permutation-based encoding supports with ascending operands
PERMUTATION_POOL: Tuple[str, ...] = ("x", "y", "z", "s", "sdg", "t", "tdg", "cx", "cz", "ccx")

#: gates whose matrix is diagonal — any two of these commute
DIAGONAL_GATES: FrozenSet[str] = frozenset(
    {"z", "s", "sdg", "t", "tdg", "cz", "cs", "csdg", "ct", "ctdg"}
)

#: boolean-layer operations the brute-force oracle can check
BOOLEAN_OPERATIONS: Tuple[str, ...] = ("union", "intersection", "complement", "difference")

#: gate kinds invariant under any permutation of (a subset of) their operands:
#: value maps to the slice of operand indices that may be freely reordered
_SYMMETRIC_OPERANDS: Dict[str, slice] = {
    "cz": slice(0, 2),
    "cs": slice(0, 2),
    "csdg": slice(0, 2),
    "ct": slice(0, 2),
    "ctdg": slice(0, 2),
    "swap": slice(0, 2),
    "ccx": slice(0, 2),  # the two controls commute; the target is fixed
}


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of one oracle run; ``ok`` means every semantics agreed."""

    ok: bool
    #: which oracle family ran ("cross-mode" or "boolean")
    check: str
    #: human-readable description of the divergence (empty when ok)
    detail: str = ""
    #: index of the (decomposed) gate after which semantics disagreed
    gate_index: Optional[int] = None
    #: engine mode / baseline name that disagreed ("hybrid", "path-sum", ...)
    mode: Optional[str] = None
    #: boolean operation that disagreed ("union", "complement", ...)
    operation: Optional[str] = None
    #: rendering of the distinguishing state / tree, when one exists
    witness: Optional[str] = None


# --------------------------------------------------------------------------
# promoted differential helpers (formerly private to tests/test_differential)
# --------------------------------------------------------------------------

def states_close(
    left: QuantumState, right: QuantumState, tolerance: float = 1e-9
) -> Optional[str]:
    """``None`` when two exact states denote the same vector, else a message."""
    if left.num_qubits != right.num_qubits:
        return f"state widths differ: {left.num_qubits} != {right.num_qubits}"
    keys = {bits for bits, _ in left.items()} | {bits for bits, _ in right.items()}
    for bits in keys:
        delta = abs(left[bits].to_complex() - right[bits].to_complex())
        if delta >= tolerance:
            return f"amplitudes differ at {bits}: {left[bits]} vs {right[bits]}"
    return None


def assert_states_close(
    left: QuantumState, right: QuantumState, tolerance: float = 1e-9
) -> None:
    """Assert two exact states denote (numerically) the same vector."""
    message = states_close(left, right, tolerance)
    assert message is None, message


def random_permutation_circuit(num_qubits: int, num_gates: int, seed: int) -> Circuit:
    """A random circuit every gate of which the permutation encoding handles."""
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"perm_random_{seed}")
    pool = [
        kind
        for kind in PERMUTATION_POOL
        if num_qubits >= {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
    ]
    for _ in range(num_gates):
        kind = rng.choice(pool)
        arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
        qubits = tuple(sorted(rng.sample(range(num_qubits), arity)))
        circuit.append(Gate(kind, qubits))
    return circuit


def _evaluate_bool(poly, environment) -> int:
    """Evaluate a path-sum Boolean polynomial (XOR of ANDs) over 0/1 values."""
    return sum(all(environment[v] for v in monomial) for monomial in poly.monomials) % 2


def evaluate_path_sum(path_sum, num_qubits: int, input_bits) -> QuantumState:
    """Sum a symbolic path sum over all path-variable assignments (exact)."""
    state = QuantumState(num_qubits)
    normalisation = AlgebraicNumber(1, 0, 0, 0, path_sum.sqrt2_factors)
    variables = list(path_sum.path_variables)
    base = {f"x{i}": bit for i, bit in enumerate(input_bits)}
    for assignment in itertools.product((0, 1), repeat=len(variables)):
        environment = dict(base)
        environment.update(zip(variables, assignment))
        bits = tuple(_evaluate_bool(poly, environment) for poly in path_sum.outputs)
        units = path_sum.global_phase
        for monomial, coefficient in path_sum.phase.terms.items():
            if all(environment[v] for v in monomial):
                units += coefficient
        amplitude = AlgebraicNumber.omega_power(units % 8) * normalisation
        state[bits] = state[bits] + amplitude
    return state


def prefix_path_sum_states(circuit: Circuit, input_bits) -> List[QuantumState]:
    """Path-sum-evaluated states after every gate of ``circuit``."""
    checker = PathSumChecker()
    states = []
    for length in range(1, circuit.num_gates + 1):
        path_sum = checker.symbolic_execution(circuit[:length])
        states.append(evaluate_path_sum(path_sum, circuit.num_qubits, input_bits))
    return states


# --------------------------------------------------------------------------
# cross-mode oracle
# --------------------------------------------------------------------------

def cross_mode_oracle(
    circuit: Circuit,
    input_bits: Sequence[int],
    modes: Sequence[str] = AnalysisMode.ALL,
    runtime: Optional[GateRuntime] = None,
    include_path_sum: bool = False,
) -> OracleVerdict:
    """Run every semantics gate by gate; first disagreement wins.

    The statevector simulator is the reference; each enabled engine mode, the
    decision-diagram simulator and (optionally, it is the slowest) the
    path-sum evaluator must reproduce its state after every decomposed gate.
    Permutation mode is silently skipped for circuits containing gates its
    encoding does not support.  Engine exceptions count as divergences — a
    crash is a bug the corpus should remember.
    """
    gates = list(circuit.decomposed())
    usable = [
        mode
        for mode in modes
        if mode != AnalysisMode.PERMUTATION or all(supports_permutation(g) for g in gates)
    ]
    engines = {
        mode: CircuitEngine(mode=mode, runtime=runtime) for mode in usable
    }
    simulator = StateVectorSimulator()
    dd_simulator = DecisionDiagramSimulator()
    state = QuantumState.basis_state(circuit.num_qubits, input_bits)
    diagram = DDState.basis_state(circuit.num_qubits, input_bits, dd_simulator.manager)
    automata = {
        mode: basis_state_ta(circuit.num_qubits, input_bits) for mode in usable
    }
    pathsum_states = (
        prefix_path_sum_states(circuit, input_bits) if include_path_sum else None
    )
    for position, gate in enumerate(gates):
        state = simulator.apply_gate(state, gate)
        for mode in usable:
            try:
                automata[mode] = engines[mode].apply_gate(automata[mode], gate)
                enumerated = automata[mode].enumerate_states(limit=4)
            except Exception as error:  # noqa: BLE001 - crashes are findings
                return OracleVerdict(
                    ok=False,
                    check="cross-mode",
                    detail=f"TA/{mode} raised {error!r} applying gate {position} ({gate})",
                    gate_index=position,
                    mode=mode,
                )
            if enumerated != [state]:
                return OracleVerdict(
                    ok=False,
                    check="cross-mode",
                    detail=(
                        f"TA/{mode} diverged from the simulator after gate "
                        f"{position} ({gate})"
                    ),
                    gate_index=position,
                    mode=mode,
                    witness=repr(state),
                )
        diagram = dd_simulator.apply_gate(diagram, gate)
        if diagram.to_quantum_state() != state:
            return OracleVerdict(
                ok=False,
                check="cross-mode",
                detail=(
                    f"decision diagram diverged from the simulator after gate "
                    f"{position} ({gate})"
                ),
                gate_index=position,
                mode="decision-diagram",
                witness=repr(state),
            )
        if pathsum_states is not None:
            message = states_close(pathsum_states[position], state)
            if message is not None:
                return OracleVerdict(
                    ok=False,
                    check="cross-mode",
                    detail=(
                        f"path sum diverged from the simulator after gate "
                        f"{position} ({gate}): {message}"
                    ),
                    gate_index=position,
                    mode="path-sum",
                    witness=repr(state),
                )
    return OracleVerdict(ok=True, check="cross-mode")


def kernel_parity_oracle(
    circuit: Circuit,
    input_bits: Sequence[int],
    backends: Optional[Sequence[str]] = None,
) -> OracleVerdict:
    """Run one circuit under every available TA kernel backend; the automata
    must be *bit-identical* (equal ``structure_key()``) after every gate.

    This is the conformance contract of :mod:`repro.ta.kernel` turned into a
    differential oracle.  Each backend gets a fresh :class:`GateRuntime` and a
    cleared reduce cache — a warm cache or memo would serve one backend's
    automata to the other and mask a divergence.  Vectorized backends are
    forced onto their vector code paths (size thresholds zeroed) because fuzz
    circuits are small enough to delegate everything to the reference
    otherwise.  Backends named in ``backends`` but not available here are
    skipped; with fewer than two usable backends there is nothing to compare
    and the verdict is trivially ok (so corpus replays pass without numpy).
    Engine exceptions count as divergences — a crash is a bug the corpus
    should remember.
    """
    from ..ta import kernel as ta_kernel
    from ..ta.automaton import clear_reduce_cache

    names: List[str] = []
    for name in (backends if backends is not None else ta_kernel.available_backends()):
        try:
            ta_kernel.get_backend(name)
        except (ImportError, ValueError):
            continue
        names.append(name)
    if len(names) < 2:
        return OracleVerdict(ok=True, check="kernel-parity")
    gates = list(circuit.decomposed())
    trails: Dict[str, List[Tuple]] = {}
    for name in names:
        backend = ta_kernel.get_backend(name)
        saved_thresholds = getattr(backend, "thresholds", None)
        if saved_thresholds is not None:
            backend.thresholds = {key: 0 for key in saved_thresholds}
        engine = CircuitEngine(mode=AnalysisMode.HYBRID, runtime=GateRuntime())
        clear_reduce_cache()
        automaton = basis_state_ta(circuit.num_qubits, input_bits)
        trail: List[Tuple] = []
        try:
            with ta_kernel.use_backend(name):
                for gate in gates:
                    automaton = engine.apply_gate(automaton, gate)
                    trail.append(automaton.structure_key())
        except Exception as error:  # noqa: BLE001 - crashes are findings
            return OracleVerdict(
                ok=False,
                check="kernel-parity",
                detail=(
                    f"kernel/{name} raised {error!r} applying gate "
                    f"{len(trail)} ({gates[len(trail)]})"
                ),
                gate_index=len(trail),
                mode=name,
            )
        finally:
            if saved_thresholds is not None:
                backend.thresholds = saved_thresholds
            clear_reduce_cache()
        trails[name] = trail
    baseline_name = names[0]
    baseline = trails[baseline_name]
    for name in names[1:]:
        for position, (expected, actual) in enumerate(zip(baseline, trails[name])):
            if expected != actual:
                return OracleVerdict(
                    ok=False,
                    check="kernel-parity",
                    detail=(
                        f"kernel/{name} is not bit-identical to "
                        f"kernel/{baseline_name} after gate {position} "
                        f"({gates[position]})"
                    ),
                    gate_index=position,
                    mode=name,
                )
    return OracleVerdict(ok=True, check="kernel-parity")


# --------------------------------------------------------------------------
# boolean brute-force oracle
# --------------------------------------------------------------------------

def state_key(state: QuantumState) -> Tuple:
    """A hashable canonical key for one quantum state (= one labelled tree)."""
    return tuple(sorted((bits, amplitude.as_tuple()) for bits, amplitude in state.items()))


def boolean_universe(
    num_qubits: int, alphabet: Sequence[AlgebraicNumber]
) -> List[QuantumState]:
    """Every full tree of height ``num_qubits`` with leaves from ``alphabet``.

    This is the (finite) universe the complement is defined against: all
    ``len(alphabet) ** 2**num_qubits`` leaf assignments, including the
    all-zero tree when zero is in the alphabet.  Keep it tiny — the point is
    an *independent* ground truth, not scale.
    """
    leaves = 1 << num_qubits
    universe = []
    for assignment in itertools.product(alphabet, repeat=leaves):
        state = QuantumState(num_qubits)
        for index, amplitude in enumerate(assignment):
            if not amplitude.is_zero():
                state[int_to_bits(index, num_qubits)] = amplitude
        universe.append(state)
    return universe


def brute_language(
    automaton: TreeAutomaton, universe: Iterable[QuantumState]
) -> FrozenSet[Tuple]:
    """The automaton's language restricted to ``universe``, by membership tests."""
    return frozenset(state_key(state) for state in universe if automaton.accepts(state))


def boolean_oracle(
    left: TreeAutomaton,
    right: TreeAutomaton,
    alphabet: Optional[Sequence[AlgebraicNumber]] = None,
    operations: Sequence[str] = BOOLEAN_OPERATIONS,
) -> OracleVerdict:
    """Check boolean TA operations against brute-force language enumeration.

    For each requested operation the constructed automaton's language (by
    :meth:`~repro.ta.automaton.TreeAutomaton.accepts` over the whole universe)
    must equal the set-theoretic combination of the operands' brute-forced
    languages.  Unary ``complement`` applies to ``left``.
    """
    if alphabet is None:
        alphabet = boolean.leaf_alphabet(left, right)
    alphabet = tuple(dict.fromkeys(alphabet))
    universe = boolean_universe(left.num_qubits, alphabet)
    universe_by_key = {state_key(state): state for state in universe}
    language_left = brute_language(left, universe)
    language_right = brute_language(right, universe)
    expectations = {
        "union": language_left | language_right,
        "intersection": language_left & language_right,
        "complement": frozenset(universe_by_key) - language_left,
        "difference": language_left - language_right,
    }
    for operation in operations:
        if operation not in expectations:
            raise ValueError(
                f"unknown boolean operation {operation!r}; expected one of {BOOLEAN_OPERATIONS}"
            )
        try:
            if operation == "union":
                combined = left.union(right)
            elif operation == "intersection":
                combined = boolean.intersection(left, right)
            elif operation == "complement":
                combined = boolean.complement(left, alphabet)
            else:
                combined = boolean.difference(left, right, alphabet)
        except Exception as error:  # noqa: BLE001 - crashes are findings
            return OracleVerdict(
                ok=False,
                check="boolean",
                detail=f"{operation} raised {error!r}",
                operation=operation,
            )
        actual = brute_language(combined, universe)
        expected = expectations[operation]
        if actual != expected:
            mismatch = next(iter(actual.symmetric_difference(expected)))
            witness = universe_by_key[mismatch]
            wrongly_accepted = mismatch in actual
            return OracleVerdict(
                ok=False,
                check="boolean",
                detail=(
                    f"{operation}: TA {'accepts' if wrongly_accepted else 'rejects'} "
                    f"a tree the brute-force enumeration "
                    f"{'rejects' if wrongly_accepted else 'accepts'} "
                    f"({len(actual.symmetric_difference(expected))} trees differ)"
                ),
                operation=operation,
                witness=repr(witness),
            )
    return OracleVerdict(ok=True, check="boolean")


# --------------------------------------------------------------------------
# LintQ-style static pre-filter
# --------------------------------------------------------------------------

def _symmetric_variant(reference_gate: Gate, mutant_gate: Gate) -> bool:
    """True when the gates differ only by reordering exchangeable operands."""
    if reference_gate.kind != mutant_gate.kind:
        return False
    window = _SYMMETRIC_OPERANDS.get(reference_gate.kind)
    if window is None:
        return False
    fixed = reference_gate.qubits[window.stop:] == mutant_gate.qubits[window.stop:]
    return fixed and sorted(reference_gate.qubits[window]) == sorted(mutant_gate.qubits[window])


def static_prefilter(
    reference: Circuit,
    mutant: Circuit,
    record: Optional[MutationRecord] = None,
) -> Optional[str]:
    """Cheap syntactic triage: a reason string when the mutant is provably boring.

    Inspired by LintQ's static analyses: before building a single automaton,
    discard mutants a syntactic argument proves equivalent to their seed
    circuit — exercising the engine on them duplicates the seed case.  Sound
    rules only; ``None`` means "worth fuzzing".
    """
    if mutant.num_qubits == reference.num_qubits and list(mutant.gates) == list(reference.gates):
        return "identical-circuit"
    if record is None:
        return None
    if record.kind == "transpose":
        position = record.position
        if position + 1 < mutant.num_gates:
            first, second = mutant[position], mutant[position + 1]
            if not (set(first.qubits) & set(second.qubits)):
                return "commuting-transpose"
            if first.kind in DIAGONAL_GATES and second.kind in DIAGONAL_GATES:
                return "commuting-transpose"
    if record.kind in ("swap-operands", "reorder-qubits"):
        if mutant.num_gates == reference.num_gates and all(
            mutant_gate == reference_gate or _symmetric_variant(reference_gate, mutant_gate)
            for reference_gate, mutant_gate in zip(reference.gates, mutant.gates)
        ):
            return "symmetric-operands"
    return None
