"""Greedy minimization of divergence-triggering inputs.

Every divergence the fuzzer finds is shrunk before it is stored: corpus
entries should be the *smallest* reproduction we can cheaply find, both for
human triage and so replaying the corpus stays fast.

* :func:`shrink_circuit` — greedy gate deletion: repeatedly drop any gate
  whose removal keeps the predicate (usually "the oracle still diverges")
  true, until a fixpoint.  The classic delta-debugging inner loop,
  specialised to circuits where single-gate deletion is always well-formed.
* :func:`shrink_states` — the boolean analogue over operand state-sets:
  greedily drop states from a set while the divergence persists (at least
  one state is kept — the TA constructions require non-empty sets).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..states import QuantumState

__all__ = ["shrink_circuit", "shrink_states"]


def shrink_circuit(
    circuit: Circuit, predicate: Callable[[Circuit], bool]
) -> Circuit:
    """Smallest gate-subsequence (by greedy deletion) still satisfying ``predicate``.

    ``predicate(circuit)`` must be true on entry; the result is a circuit on
    the same qubits for which the predicate still holds but no further single
    gate can be deleted without losing it.
    """
    current = circuit
    changed = True
    while changed:
        changed = False
        position = current.num_gates - 1
        while position >= 0:
            candidate = current.without_gate(position)
            if predicate(candidate):
                current = candidate
                changed = True
            position -= 1
    return current


def shrink_states(
    states: Sequence[QuantumState],
    predicate: Callable[[Tuple[QuantumState, ...]], bool],
) -> Tuple[QuantumState, ...]:
    """Smallest sub-tuple (by greedy deletion, keeping >= 1) satisfying ``predicate``."""
    current: List[QuantumState] = list(states)
    changed = True
    while changed:
        changed = False
        for position in range(len(current) - 1, -1, -1):
            if len(current) <= 1:
                break
            candidate = tuple(current[:position] + current[position + 1:])
            if predicate(candidate):
                del current[position]
                changed = True
    return tuple(current)
