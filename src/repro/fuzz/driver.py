"""The time-budgeted differential fuzz loop behind ``repro fuzz``.

:func:`run_fuzz` interleaves the enabled oracle families over their seeded
case streams until the time budget (or an explicit case cap) is exhausted:

1. generate the next case (deterministic under the run seed);
2. triage it through the LintQ-style :func:`~repro.fuzz.oracles.static_prefilter`
   (plus circuit-level deduplication) — discarded mutants never build an
   automaton;
3. run the differential oracle;
4. on divergence: shrink the reproduction to a local minimum, localise the
   injected fault against the seed circuit
   (:func:`repro.core.diagnosis.localise_mutation`), and store a
   content-addressed corpus entry.

:func:`replay_corpus` is the regression gate: it re-executes every stored
entry and reports entries that diverge *again* — on a healthy tree every
entry must pass, because each one captures a bug that has been fixed (or a
scenario pinned as correct).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..algebraic import AlgebraicNumber
from ..campaign.cache import fingerprint_qasm
from ..circuits.mutations import MUTATION_OPERATORS, MutationRecord
from ..circuits.qasm import parse_qasm, to_qasm
from ..core.diagnosis import localise_mutation
from ..core.engine import AnalysisMode, GateRuntime
from ..ta import serialization
from ..ta.construction import from_quantum_states
from .corpus import Corpus, CorpusError
from .generators import BooleanCase, FuzzCase, generate_boolean_cases, generate_cases
from .oracles import (
    OracleVerdict,
    boolean_oracle,
    cross_mode_oracle,
    kernel_parity_oracle,
    static_prefilter,
)
from .shrink import shrink_circuit, shrink_states

__all__ = ["FUZZ_CHECKS", "FuzzOutcome", "FuzzSettings", "replay_corpus", "replay_entry", "run_fuzz"]

#: the oracle families the driver can run
FUZZ_CHECKS: Tuple[str, ...] = ("boolean", "cross-mode", "kernel-parity")


@dataclass(frozen=True)
class FuzzSettings:
    """Everything that determines one fuzz run (and makes it reproducible)."""

    budget_seconds: float = 10.0
    seed: int = 0
    max_qubits: int = 4
    max_gates: int = 10
    checks: Tuple[str, ...] = FUZZ_CHECKS
    modes: Tuple[str, ...] = AnalysisMode.ALL
    mutation_kinds: Tuple[str, ...] = tuple(MUTATION_OPERATORS)
    corpus_dir: Optional[str] = None
    #: stop after this many cases even if budget remains (None = budget only)
    max_cases: Optional[int] = None
    #: also evaluate the (slow) path-sum baseline in the cross-mode oracle
    include_path_sum: bool = False

    def __post_init__(self) -> None:
        for check in self.checks:
            if check not in FUZZ_CHECKS:
                raise ValueError(f"unknown check {check!r}; expected one of {FUZZ_CHECKS}")
        if not self.checks:
            raise ValueError("at least one check is required")
        for mode in self.modes:
            if mode not in AnalysisMode.ALL:
                raise ValueError(f"unknown mode {mode!r}; expected one of {AnalysisMode.ALL}")
        if self.budget_seconds < 0:
            raise ValueError("budget_seconds must be non-negative")


@dataclass
class FuzzOutcome:
    """What one fuzz (or replay) run produced."""

    cases: int = 0
    prefiltered: int = 0
    findings: List[Dict] = field(default_factory=list)
    corpus_entries: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    replayed: int = 0

    @property
    def divergences(self) -> int:
        return len(self.findings)

    @property
    def ok(self) -> bool:
        return not self.findings


def _finding(verdict: OracleVerdict, **extra) -> Dict:
    """One findings-list row: the verdict flattened plus context fields."""
    row = {
        "check": verdict.check,
        "detail": verdict.detail,
        "mode": verdict.mode,
        "operation": verdict.operation,
        "gate_index": verdict.gate_index,
        "witness": verdict.witness,
        "entry_id": None,
        "case_seed": None,
        "mutation": None,
        "localised_gate": None,
    }
    row.update(extra)
    return row


def _amplitude_list(alphabet: Sequence[AlgebraicNumber]) -> List[List[int]]:
    return [list(amplitude.as_tuple()) for amplitude in alphabet]


def _alphabet_from_payload(values: Sequence[Sequence[int]]) -> Tuple[AlgebraicNumber, ...]:
    return tuple(AlgebraicNumber(*[int(v) for v in value]) for value in values)


def _run_cross_mode_case(
    case: FuzzCase,
    settings: FuzzSettings,
    outcome: FuzzOutcome,
    corpus: Optional[Corpus],
    runtime: Optional[GateRuntime],
    seen: set,
) -> None:
    reason = static_prefilter(case.reference, case.circuit, case.record)
    if reason is not None:
        outcome.prefiltered += 1
        return
    qasm = to_qasm(case.circuit)
    key = (fingerprint_qasm(qasm), case.input_bits)
    if key in seen:
        outcome.prefiltered += 1
        return
    seen.add(key)
    verdict = cross_mode_oracle(
        case.circuit,
        case.input_bits,
        modes=settings.modes,
        runtime=runtime,
        include_path_sum=settings.include_path_sum,
    )
    if verdict.ok:
        return

    def still_diverges(candidate) -> bool:
        return not cross_mode_oracle(
            candidate,
            case.input_bits,
            modes=settings.modes,
            runtime=runtime,
            include_path_sum=settings.include_path_sum,
        ).ok

    minimized = shrink_circuit(case.circuit, still_diverges)
    final = cross_mode_oracle(
        minimized,
        case.input_bits,
        modes=settings.modes,
        runtime=runtime,
        include_path_sum=settings.include_path_sum,
    )
    if final.ok:  # flaky shrink target; keep the unshrunk reproduction
        minimized, final = case.circuit, verdict
    localised = None
    if case.record is not None:
        localised = localise_mutation(case.reference, case.circuit)
    mutation = None if case.record is None else case.record.to_dict()
    entry = None
    payload = {
        "circuit_qasm": to_qasm(minimized),
        "reference_qasm": to_qasm(case.reference),
        "input_bits": "".join(map(str, case.input_bits)),
        "modes": list(settings.modes),
        "include_path_sum": settings.include_path_sum,
        "localised_gate": localised,
    }
    if corpus is not None:
        entry = corpus.add(
            "cross-mode", payload, seed=case.seed, detail=final.detail, mutation=mutation
        )
        outcome.corpus_entries.append(entry)
    outcome.findings.append(
        _finding(
            final,
            entry_id=entry,
            case_seed=case.seed,
            mutation=None if case.record is None else str(case.record),
            localised_gate=localised,
        )
    )


def _run_kernel_parity_case(
    case: FuzzCase,
    outcome: FuzzOutcome,
    corpus: Optional[Corpus],
    seen: set,
) -> None:
    """Check the kernel conformance contract on one generated circuit.

    No static prefilter here: the oracle compares backends against each other
    on the *same* circuit, so mutant-vs-seed equivalence is irrelevant; only
    circuit-level deduplication applies.
    """
    qasm = to_qasm(case.circuit)
    key = ("kernel-parity", fingerprint_qasm(qasm), case.input_bits)
    if key in seen:
        outcome.prefiltered += 1
        return
    seen.add(key)
    verdict = kernel_parity_oracle(case.circuit, case.input_bits)
    if verdict.ok:
        return

    def still_diverges(candidate) -> bool:
        return not kernel_parity_oracle(candidate, case.input_bits).ok

    minimized = shrink_circuit(case.circuit, still_diverges)
    final = kernel_parity_oracle(minimized, case.input_bits)
    if final.ok:  # flaky shrink target; keep the unshrunk reproduction
        minimized, final = case.circuit, verdict
    from ..ta import kernel as ta_kernel

    entry = None
    payload = {
        "circuit_qasm": to_qasm(minimized),
        "input_bits": "".join(map(str, case.input_bits)),
        "backends": list(ta_kernel.available_backends()),
    }
    if corpus is not None:
        entry = corpus.add(
            "kernel-parity", payload, seed=case.seed, detail=final.detail
        )
        outcome.corpus_entries.append(entry)
    outcome.findings.append(_finding(final, entry_id=entry, case_seed=case.seed))


def _run_boolean_case(
    case: BooleanCase,
    outcome: FuzzOutcome,
    corpus: Optional[Corpus],
) -> None:
    left = from_quantum_states(list(case.left))
    right = from_quantum_states(list(case.right))
    verdict = boolean_oracle(left, right, case.alphabet)
    if verdict.ok:
        return
    operation = verdict.operation

    def diverges(left_states, right_states) -> bool:
        return not boolean_oracle(
            from_quantum_states(list(left_states)),
            from_quantum_states(list(right_states)),
            case.alphabet,
            operations=(operation,),
        ).ok

    left_min = shrink_states(case.left, lambda states: diverges(states, case.right))
    right_min = shrink_states(case.right, lambda states: diverges(left_min, states))
    left_ta = from_quantum_states(list(left_min))
    right_ta = from_quantum_states(list(right_min))
    final = boolean_oracle(left_ta, right_ta, case.alphabet, operations=(operation,))
    if final.ok:  # flaky shrink target; keep the unshrunk reproduction
        left_ta, right_ta = left, right
        final = verdict
    entry = None
    payload = {
        "num_qubits": case.num_qubits,
        "alphabet": _amplitude_list(case.alphabet),
        "left_ta": serialization.to_payload(left_ta),
        "right_ta": serialization.to_payload(right_ta),
        "operations": [operation],
        "witness": final.witness,
    }
    if corpus is not None:
        entry = corpus.add("boolean", payload, seed=case.seed, detail=final.detail)
        outcome.corpus_entries.append(entry)
    outcome.findings.append(_finding(final, entry_id=entry, case_seed=case.seed))


def run_fuzz(
    settings: FuzzSettings = FuzzSettings(),
    runtime: Optional[GateRuntime] = None,
) -> FuzzOutcome:
    """One budgeted fuzz run; deterministic case stream under ``settings.seed``."""
    outcome = FuzzOutcome()
    if runtime is None:
        # a private runtime: fuzzing must neither poison the process-wide
        # gate memo with divergent results nor be masked by warm entries
        runtime = GateRuntime()
    corpus = None if settings.corpus_dir is None else Corpus(settings.corpus_dir)
    streams: List[Tuple[str, Iterator]] = []
    if "boolean" in settings.checks:
        streams.append(("boolean", generate_boolean_cases(settings.seed, max_qubits=2)))
    if "cross-mode" in settings.checks:
        streams.append(
            (
                "cross-mode",
                generate_cases(
                    settings.seed,
                    max_qubits=settings.max_qubits,
                    max_gates=settings.max_gates,
                    mutation_kinds=settings.mutation_kinds,
                ),
            )
        )
    if "kernel-parity" in settings.checks:
        # an offset seed decorrelates this stream from the cross-mode one so
        # the two checks do not burn budget on identical circuits
        streams.append(
            (
                "kernel-parity",
                generate_cases(
                    settings.seed + 0x6B70,
                    max_qubits=settings.max_qubits,
                    max_gates=settings.max_gates,
                    mutation_kinds=settings.mutation_kinds,
                ),
            )
        )
    start = time.perf_counter()
    deadline = start + settings.budget_seconds
    seen: set = set()
    exhausted = False
    while not exhausted:
        for name, stream in streams:
            if time.perf_counter() >= deadline or (
                settings.max_cases is not None and outcome.cases >= settings.max_cases
            ):
                exhausted = True
                break
            case = next(stream)
            outcome.cases += 1
            if name == "boolean":
                _run_boolean_case(case, outcome, corpus)
            elif name == "kernel-parity":
                _run_kernel_parity_case(case, outcome, corpus, seen)
            else:
                _run_cross_mode_case(case, settings, outcome, corpus, runtime, seen)
    outcome.elapsed_seconds = time.perf_counter() - start
    return outcome


def replay_entry(document: Dict, runtime: Optional[GateRuntime] = None) -> OracleVerdict:
    """Re-execute one corpus entry's oracle on the current tree."""
    check = document["check"]
    payload = document["payload"]
    if check == "cross-mode":
        circuit = parse_qasm(payload["circuit_qasm"])
        input_bits = tuple(int(bit) for bit in payload["input_bits"])
        return cross_mode_oracle(
            circuit,
            input_bits,
            modes=tuple(payload["modes"]),
            runtime=runtime,
            include_path_sum=bool(payload.get("include_path_sum", False)),
        )
    if check == "kernel-parity":
        circuit = parse_qasm(payload["circuit_qasm"])
        input_bits = tuple(int(bit) for bit in payload["input_bits"])
        # the recorded backends are an upper bound: the oracle skips any that
        # are unavailable here (a numpy-less replay passes trivially)
        backends = payload.get("backends")
        return kernel_parity_oracle(
            circuit,
            input_bits,
            backends=None if backends is None else tuple(backends),
        )
    if check == "boolean":
        left = serialization.from_payload(payload["left_ta"])
        right = serialization.from_payload(payload["right_ta"])
        alphabet = _alphabet_from_payload(payload["alphabet"])
        return boolean_oracle(left, right, alphabet, operations=tuple(payload["operations"]))
    raise ValueError(f"unknown corpus check {check!r}")


def replay_corpus(
    corpus_dir: Union[str, Path],
    runtime: Optional[GateRuntime] = None,
) -> FuzzOutcome:
    """Re-verify every committed corpus entry; failures are regressions."""
    outcome = FuzzOutcome()
    if runtime is None:
        runtime = GateRuntime()
    corpus = Corpus(corpus_dir)
    if not corpus.root.is_dir():
        # a mistyped gate path must not silently pass as an empty corpus
        raise CorpusError(f"corpus directory {corpus.root} does not exist")
    start = time.perf_counter()
    for document in corpus.entries():
        outcome.replayed += 1
        verdict = replay_entry(document, runtime=runtime)
        if not verdict.ok:
            mutation = document.get("mutation")
            outcome.findings.append(
                _finding(
                    verdict,
                    entry_id=document["entry_id"],
                    case_seed=document.get("seed"),
                    mutation=(
                        None
                        if mutation is None
                        else str(MutationRecord.from_dict(mutation))
                    ),
                    localised_gate=document["payload"].get("localised_gate"),
                )
            )
    outcome.elapsed_seconds = time.perf_counter() - start
    return outcome
