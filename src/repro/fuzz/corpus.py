"""The replayable regression corpus: content-addressed divergence scenarios.

Every divergence the fuzzer finds is minimized and stored as one JSON file in
a corpus directory.  Entries carry the versioned envelope of
:mod:`repro.api.schema` (``kind: "fuzz-entry"``) plus a self-contained
payload:

* ``check == "cross-mode"`` — the minimized mutant circuit (OpenQASM), the
  basis input, the engine modes to run, and (when known) the seed circuit
  and the gate index :func:`repro.core.diagnosis.localise_mutation`
  attributed the fault to;
* ``check == "boolean"`` — the two operand automata as lossless
  :mod:`repro.ta.serialization` payloads, the complement alphabet, and the
  boolean operation that diverged.

File names are content addresses (``<sha256-prefix>.json`` over the entry's
canonical JSON, excluding the envelope), so re-finding a known divergence is
idempotent and two corpora merge by copying files.  ``repro fuzz replay``
and campaign runs re-execute every entry as a regression gate — an entry
that diverges *again* marks a regression on the current tree.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..api import schema
from ..campaign.cache import atomic_write_json

__all__ = [
    "CORPUS_DIR_ENV",
    "FUZZ_ENTRY_KIND",
    "Corpus",
    "CorpusError",
    "default_corpus_dir",
    "entry_id",
]

FUZZ_ENTRY_KIND = schema.FUZZ_ENTRY_KIND

#: ambient corpus directory for ``repro fuzz`` front-ends
CORPUS_DIR_ENV = "AUTOQ_REPRO_FUZZ_CORPUS"


def default_corpus_dir() -> Optional[str]:
    """``$AUTOQ_REPRO_FUZZ_CORPUS`` when set, else ``None`` (no corpus)."""
    return os.environ.get(CORPUS_DIR_ENV) or None

#: hex digits of the sha256 content address used in entry ids / file names
_ADDRESS_LENGTH = 16


class CorpusError(ValueError):
    """A corpus directory or entry is malformed."""


def entry_id(check: str, seed: Optional[int], mutation: Optional[Dict], payload: Dict) -> str:
    """The content address of an entry: sha256 over its canonical JSON core."""
    core = json.dumps(
        {"check": check, "seed": seed, "mutation": mutation, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(core.encode("utf-8")).hexdigest()[:_ADDRESS_LENGTH]


class Corpus:
    """One directory of ``fuzz-entry`` documents."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def __len__(self) -> int:
        return sum(1 for _ in self.paths())

    def paths(self) -> Iterator[Path]:
        """Entry files in deterministic (name = content address) order."""
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*.json")))

    def entries(self) -> List[Dict]:
        """Load and schema-validate every entry; raises :class:`CorpusError`."""
        entries = []
        for path in self.paths():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, json.JSONDecodeError) as error:
                raise CorpusError(f"unreadable corpus entry {path}: {error}") from error
            try:
                schema.validate_document(document, kind=FUZZ_ENTRY_KIND)
            except schema.SchemaError as error:
                raise CorpusError(f"invalid corpus entry {path}: {error}") from error
            entries.append(document)
        return entries

    def add(
        self,
        check: str,
        payload: Dict,
        seed: Optional[int] = None,
        detail: str = "",
        mutation: Optional[Dict] = None,
    ) -> str:
        """Store one entry (idempotent by content address); returns its id."""
        identifier = entry_id(check, seed, mutation, payload)
        document = {
            "api_version": schema.API_VERSION,
            "kind": FUZZ_ENTRY_KIND,
            "entry_id": identifier,
            "check": check,
            "seed": seed,
            "detail": detail,
            "mutation": mutation,
            "payload": payload,
        }
        schema.validate_document(document, kind=FUZZ_ENTRY_KIND)
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_json(self.root / f"{identifier}.json", document, indent=2)
        return identifier
