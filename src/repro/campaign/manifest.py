"""Resumable campaign manifests: on-disk sweep state, one file per campaign.

A matrix sweep (:mod:`repro.campaign.scheduler`) can run for hours, so its
progress lives in a JSON manifest — ``<manifest_dir>/<campaign_id>.json`` —
rewritten atomically (temp file + ``os.replace``) at every cell transition.
Each cell of the sweep is tracked through three states:

``pending``
    not started yet;
``running``
    claimed by a scheduler — if the process dies here, the cell is considered
    *interrupted* and is re-queued on resume;
``done``
    finished, with the cell's :class:`~repro.campaign.runner.CampaignSummary`
    stored inline so a resumed sweep can roll it into the final totals without
    re-verifying anything.

The manifest also records the full sweep spec and its fingerprint;
``campaign --resume <id>`` rebuilds the spec from the manifest alone, and a
spec passed alongside ``--resume`` is checked against the stored fingerprint
so a manifest is never resumed under a different sweep definition.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .cache import atomic_write_json

__all__ = [
    "CELL_PENDING",
    "CELL_RUNNING",
    "CELL_DONE",
    "ManifestError",
    "CampaignManifest",
    "default_manifest_dir",
    "list_campaign_ids",
]

MANIFEST_VERSION = 1

CELL_PENDING = "pending"
CELL_RUNNING = "running"
CELL_DONE = "done"

#: environment variable overriding the default manifest directory
MANIFEST_DIR_ENV = "AUTOQ_REPRO_MANIFEST_DIR"


class ManifestError(ValueError):
    """A manifest is missing, corrupt, or does not match the requested sweep."""


def default_manifest_dir() -> str:
    """The manifest directory: ``$AUTOQ_REPRO_MANIFEST_DIR`` or
    ``~/.cache/autoq-repro/manifests`` (exactly as the CLI help documents)."""
    override = os.environ.get(MANIFEST_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "autoq-repro", "manifests")


def list_campaign_ids(directory: str) -> List[str]:
    """Campaign ids with a manifest under ``directory`` (sorted; [] when absent)."""
    try:
        names = os.listdir(directory)
    except (FileNotFoundError, NotADirectoryError):
        return []
    return sorted(name[: -len(".json")] for name in names if name.endswith(".json"))


class CampaignManifest:
    """The on-disk progress record of one matrix campaign.

    Construct through :meth:`create` (fresh sweep) or :meth:`load` (resume);
    every mutation (:meth:`mark_running`, :meth:`mark_done`) persists the whole
    manifest atomically before returning, so the file always reflects at least
    as much progress as any in-memory view.
    """

    def __init__(
        self,
        path: str,
        campaign_id: str,
        spec: Dict,
        spec_fingerprint: str,
        cells: Dict[str, Dict],
    ):
        self.path = path
        self.campaign_id = campaign_id
        self.spec = spec
        self.spec_fingerprint = spec_fingerprint
        self.cells = cells

    # -- construction ------------------------------------------------------

    @staticmethod
    def path_for(directory: str, campaign_id: str) -> str:
        """Where the manifest of ``campaign_id`` lives under ``directory``."""
        return os.path.join(directory, f"{campaign_id}.json")

    @classmethod
    def create(
        cls,
        directory: str,
        campaign_id: str,
        spec: Dict,
        spec_fingerprint: str,
        cell_ids: List[str],
    ) -> "CampaignManifest":
        """Start a fresh manifest with every cell ``pending`` (overwrites any
        previous sweep under the same id)."""
        os.makedirs(directory, exist_ok=True)
        cells = {cell_id: {"status": CELL_PENDING, "summary": None} for cell_id in cell_ids}
        manifest = cls(cls.path_for(directory, campaign_id), campaign_id, spec,
                       spec_fingerprint, cells)
        manifest.save()
        return manifest

    @classmethod
    def load(cls, directory: str, campaign_id: str) -> "CampaignManifest":
        """Load an existing manifest; :class:`ManifestError` when absent/corrupt."""
        path = cls.path_for(directory, campaign_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise ManifestError(
                f"no manifest for campaign {campaign_id!r} in {directory!r}; "
                "start it without --resume first"
            ) from None
        except (OSError, ValueError) as error:
            raise ManifestError(f"cannot read manifest {path!r}: {error}") from error
        for field in ("campaign_id", "spec", "spec_fingerprint", "cells"):
            if field not in payload:
                raise ManifestError(f"manifest {path!r} is missing the {field!r} field")
        return cls(path, payload["campaign_id"], payload["spec"],
                   payload["spec_fingerprint"], payload["cells"])

    @classmethod
    def exists(cls, directory: str, campaign_id: str) -> bool:
        return os.path.exists(cls.path_for(directory, campaign_id))

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": MANIFEST_VERSION,
            "campaign_id": self.campaign_id,
            "spec": self.spec,
            "spec_fingerprint": self.spec_fingerprint,
            "cells": self.cells,
        }

    def save(self) -> None:
        """Persist the manifest atomically."""
        atomic_write_json(self.path, self.to_dict(), indent=2)

    # -- cell state --------------------------------------------------------

    def check_fingerprint(self, spec_fingerprint: str) -> None:
        """Refuse to resume under a different sweep definition."""
        if spec_fingerprint != self.spec_fingerprint:
            raise ManifestError(
                f"campaign {self.campaign_id!r} was started from a different sweep spec "
                f"(manifest fingerprint {self.spec_fingerprint[:12]}…, "
                f"requested {spec_fingerprint[:12]}…); drop --resume or pass the original spec"
            )

    def status(self, cell_id: str) -> str:
        return self.cells[cell_id]["status"]

    def summary(self, cell_id: str) -> Optional[Dict]:
        """The stored :class:`CampaignSummary` dict of a ``done`` cell."""
        return self.cells[cell_id].get("summary")

    def cell_ids(self, status: Optional[str] = None) -> List[str]:
        """Cell ids in manifest order, optionally filtered by status."""
        return [cell_id for cell_id, cell in self.cells.items()
                if status is None or cell["status"] == status]

    def completed_cell_ids(self) -> List[str]:
        return self.cell_ids(CELL_DONE)

    def interrupted_cell_ids(self) -> List[str]:
        """Cells a previous scheduler claimed but never finished."""
        return self.cell_ids(CELL_RUNNING)

    def remaining_cell_ids(self) -> List[str]:
        """Everything that still needs work on resume: pending + interrupted."""
        return [cell_id for cell_id, cell in self.cells.items()
                if cell["status"] != CELL_DONE]

    def mark_running(self, cell_id: str, report_path: Optional[str] = None) -> None:
        cell = self.cells[cell_id]
        cell["status"] = CELL_RUNNING
        cell["summary"] = None
        if report_path is not None:
            cell["report_path"] = report_path
        self.save()

    def mark_done(self, cell_id: str, summary: Dict) -> None:
        cell = self.cells[cell_id]
        cell["status"] = CELL_DONE
        cell["summary"] = summary
        self.save()

    def is_complete(self) -> bool:
        return all(cell["status"] == CELL_DONE for cell in self.cells.values())

    # -- aggregation (``campaign ls``) -------------------------------------

    def verdict_totals(self) -> Dict[str, int]:
        """Verdict counters summed over the stored summaries of ``done`` cells."""
        totals = {"jobs": 0, "holds": 0, "violated": 0, "unsupported": 0, "errors": 0}
        for cell in self.cells.values():
            summary = cell.get("summary") or {}
            for key in totals:
                totals[key] += int(summary.get(key, 0) or 0)
        return totals

    def progress(self) -> Dict[str, int]:
        """Cell counts by manifest status (``done`` / ``running`` / ``pending``)."""
        counts = {CELL_DONE: 0, CELL_RUNNING: 0, CELL_PENDING: 0}
        for cell in self.cells.values():
            status = cell.get("status", CELL_PENDING)
            counts[status] = counts.get(status, 0) + 1
        return counts
