"""Resumable campaign manifests: on-disk sweep state, one file per campaign.

A matrix sweep (:mod:`repro.campaign.scheduler`) can run for hours, so its
progress lives in a JSON manifest — ``<manifest_dir>/<campaign_id>.json`` —
rewritten atomically (temp file + ``os.replace``) at every cell transition.
Each cell of the sweep is tracked through three states:

``pending``
    not started yet;
``running``
    claimed by a scheduler, which records a *lease* (pid + hostname +
    heartbeat timestamp).  On resume a running cell is only considered
    *interrupted* — and re-queued — when its lease is stale: the owning
    process is provably dead, or its heartbeat is older than
    :data:`LEASE_TTL_SECONDS`.  Cells held by another live worker (same
    host, different live pid, fresh heartbeat — or another host with a
    fresh heartbeat) are left alone, so concurrent ``--resume`` runs on a
    shared manifest directory never double-execute a cell;
``done``
    finished, with the cell's :class:`~repro.campaign.runner.CampaignSummary`
    stored inline so a resumed sweep can roll it into the final totals without
    re-verifying anything.

The manifest also records the full sweep spec and its fingerprint;
``campaign --resume <id>`` rebuilds the spec from the manifest alone, and a
spec passed alongside ``--resume`` is checked against the stored fingerprint
so a manifest is never resumed under a different sweep definition.
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Dict, List, Optional

from .cache import atomic_write_json

__all__ = [
    "CELL_PENDING",
    "CELL_RUNNING",
    "CELL_DONE",
    "LEASE_TTL_SECONDS",
    "ManifestError",
    "CampaignManifest",
    "default_manifest_dir",
    "lease_is_stale",
    "list_campaign_ids",
]

MANIFEST_VERSION = 1

#: a running cell whose heartbeat is older than this is considered abandoned
#: even when pid liveness cannot be checked (the owner ran on another host)
LEASE_TTL_SECONDS = 900.0

CELL_PENDING = "pending"
CELL_RUNNING = "running"
CELL_DONE = "done"

#: environment variable overriding the default manifest directory
MANIFEST_DIR_ENV = "AUTOQ_REPRO_MANIFEST_DIR"


class ManifestError(ValueError):
    """A manifest is missing, corrupt, or does not match the requested sweep."""


def default_manifest_dir() -> str:
    """The manifest directory: ``$AUTOQ_REPRO_MANIFEST_DIR`` or
    ``~/.cache/autoq-repro/manifests`` (exactly as the CLI help documents)."""
    override = os.environ.get(MANIFEST_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "autoq-repro", "manifests")


def lease_is_stale(
    owner: Optional[Dict],
    ttl: float = LEASE_TTL_SECONDS,
    now: Optional[float] = None,
) -> bool:
    """Whether a running cell's lease no longer belongs to a live worker.

    A lease is the ``{"pid", "host", "heartbeat"}`` record ``mark_running``
    stores.  Stale means safe to re-queue:

    * no lease at all (manifest written before leases existed);
    * heartbeat older than ``ttl`` — covers crashed workers on *other*
      hosts, where pid liveness cannot be probed;
    * the pid is this very process — we are obviously not running that
      cell in parallel with ourselves, so a same-process resume (e.g.
      after ``KeyboardInterrupt``) reclaims its own cells immediately;
    * same host and the pid is dead.

    A same-host lease held by a different live process, or a fresh
    heartbeat from another host, is *live* and must not be re-queued.
    """
    if not owner:
        return True
    try:
        heartbeat = float(owner["heartbeat"])
        pid = int(owner["pid"])
        host = owner["host"]
    except (KeyError, TypeError, ValueError):
        return True
    if (time.time() if now is None else now) - heartbeat > ttl:
        return True
    if host != socket.gethostname():
        return False
    if pid == os.getpid():
        return True
    try:
        os.kill(pid, 0)
    except PermissionError:
        return False  # alive, owned by another user
    except OSError:
        return True  # ProcessLookupError and friends: owner is gone
    return False


def list_campaign_ids(directory: str) -> List[str]:
    """Campaign ids with a manifest under ``directory`` (sorted; [] when absent)."""
    try:
        names = os.listdir(directory)
    except (FileNotFoundError, NotADirectoryError):
        return []
    return sorted(name[: -len(".json")] for name in names if name.endswith(".json"))


class CampaignManifest:
    """The on-disk progress record of one matrix campaign.

    Construct through :meth:`create` (fresh sweep) or :meth:`load` (resume);
    every mutation (:meth:`mark_running`, :meth:`mark_done`) persists the whole
    manifest atomically before returning, so the file always reflects at least
    as much progress as any in-memory view.
    """

    def __init__(
        self,
        path: str,
        campaign_id: str,
        spec: Dict,
        spec_fingerprint: str,
        cells: Dict[str, Dict],
    ):
        self.path = path
        self.campaign_id = campaign_id
        self.spec = spec
        self.spec_fingerprint = spec_fingerprint
        self.cells = cells

    # -- construction ------------------------------------------------------

    @staticmethod
    def path_for(directory: str, campaign_id: str) -> str:
        """Where the manifest of ``campaign_id`` lives under ``directory``."""
        return os.path.join(directory, f"{campaign_id}.json")

    @classmethod
    def create(
        cls,
        directory: str,
        campaign_id: str,
        spec: Dict,
        spec_fingerprint: str,
        cell_ids: List[str],
    ) -> "CampaignManifest":
        """Start a fresh manifest with every cell ``pending`` (overwrites any
        previous sweep under the same id)."""
        os.makedirs(directory, exist_ok=True)
        cells = {cell_id: {"status": CELL_PENDING, "summary": None} for cell_id in cell_ids}
        manifest = cls(cls.path_for(directory, campaign_id), campaign_id, spec,
                       spec_fingerprint, cells)
        manifest.save()
        return manifest

    @classmethod
    def load(cls, directory: str, campaign_id: str) -> "CampaignManifest":
        """Load an existing manifest; :class:`ManifestError` when absent/corrupt."""
        path = cls.path_for(directory, campaign_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise ManifestError(
                f"no manifest for campaign {campaign_id!r} in {directory!r}; "
                "start it without --resume first"
            ) from None
        except (OSError, ValueError) as error:
            raise ManifestError(f"cannot read manifest {path!r}: {error}") from error
        for field in ("campaign_id", "spec", "spec_fingerprint", "cells"):
            if field not in payload:
                raise ManifestError(f"manifest {path!r} is missing the {field!r} field")
        return cls(path, payload["campaign_id"], payload["spec"],
                   payload["spec_fingerprint"], payload["cells"])

    @classmethod
    def exists(cls, directory: str, campaign_id: str) -> bool:
        return os.path.exists(cls.path_for(directory, campaign_id))

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "version": MANIFEST_VERSION,
            "campaign_id": self.campaign_id,
            "spec": self.spec,
            "spec_fingerprint": self.spec_fingerprint,
            "cells": self.cells,
        }

    def save(self) -> None:
        """Persist the manifest atomically."""
        atomic_write_json(self.path, self.to_dict(), indent=2)

    # -- cell state --------------------------------------------------------

    def check_fingerprint(self, spec_fingerprint: str) -> None:
        """Refuse to resume under a different sweep definition."""
        if spec_fingerprint != self.spec_fingerprint:
            raise ManifestError(
                f"campaign {self.campaign_id!r} was started from a different sweep spec "
                f"(manifest fingerprint {self.spec_fingerprint[:12]}…, "
                f"requested {spec_fingerprint[:12]}…); drop --resume or pass the original spec"
            )

    def status(self, cell_id: str) -> str:
        return self.cells[cell_id]["status"]

    def summary(self, cell_id: str) -> Optional[Dict]:
        """The stored :class:`CampaignSummary` dict of a ``done`` cell."""
        return self.cells[cell_id].get("summary")

    def cell_ids(self, status: Optional[str] = None) -> List[str]:
        """Cell ids in manifest order, optionally filtered by status."""
        return [cell_id for cell_id, cell in self.cells.items()
                if status is None or cell["status"] == status]

    def completed_cell_ids(self) -> List[str]:
        return self.cell_ids(CELL_DONE)

    def interrupted_cell_ids(self, lease_ttl: float = LEASE_TTL_SECONDS) -> List[str]:
        """Running cells whose lease is stale: claimed but abandoned."""
        return [cell_id for cell_id in self.cell_ids(CELL_RUNNING)
                if lease_is_stale(self.cells[cell_id].get("owner"), ttl=lease_ttl)]

    def live_cell_ids(self, lease_ttl: float = LEASE_TTL_SECONDS) -> List[str]:
        """Running cells another live worker still holds — do not re-queue."""
        return [cell_id for cell_id in self.cell_ids(CELL_RUNNING)
                if not lease_is_stale(self.cells[cell_id].get("owner"), ttl=lease_ttl)]

    def remaining_cell_ids(self, lease_ttl: float = LEASE_TTL_SECONDS) -> List[str]:
        """Everything a resume should work on: pending + stale-leased running.
        Cells held by a live lease are excluded — their owner will finish them."""
        live = set(self.live_cell_ids(lease_ttl))
        return [cell_id for cell_id, cell in self.cells.items()
                if cell["status"] != CELL_DONE and cell_id not in live]

    @staticmethod
    def _lease() -> Dict:
        return {
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "heartbeat": time.time(),
        }

    def mark_running(self, cell_id: str, report_path: Optional[str] = None) -> None:
        cell = self.cells[cell_id]
        cell["status"] = CELL_RUNNING
        cell["summary"] = None
        cell["owner"] = self._lease()
        # attempt counter: 1 on the first claim, +1 each time a stale-leased
        # (crashed/interrupted) cell is re-queued — crash loops stay visible
        cell["attempts"] = int(cell.get("attempts") or 0) + 1
        if report_path is not None:
            cell["report_path"] = report_path
        self.save()

    def attempts(self, cell_id: str) -> int:
        """How many times this cell has been claimed (re-queues included)."""
        return int(self.cells[cell_id].get("attempts") or 0)

    def touch_running(self, cell_id: str) -> None:
        """Refresh this process's heartbeat on a cell it is executing.

        Call periodically from long cells so the lease outlives
        :data:`LEASE_TTL_SECONDS` as long as the worker is actually alive.
        A no-op when the cell is not running (e.g. a racing resume already
        finished it)."""
        cell = self.cells[cell_id]
        if cell["status"] != CELL_RUNNING:
            return
        cell["owner"] = self._lease()
        self.save()

    def mark_done(self, cell_id: str, summary: Dict) -> None:
        cell = self.cells[cell_id]
        cell["status"] = CELL_DONE
        cell["summary"] = summary
        cell.pop("owner", None)
        self.save()

    def is_complete(self) -> bool:
        return all(cell["status"] == CELL_DONE for cell in self.cells.values())

    # -- aggregation (``campaign ls``) -------------------------------------

    def verdict_totals(self) -> Dict[str, int]:
        """Verdict counters summed over the stored summaries of ``done`` cells."""
        totals = {"jobs": 0, "holds": 0, "violated": 0, "unsupported": 0, "errors": 0}
        for cell in self.cells.values():
            summary = cell.get("summary") or {}
            for key in totals:
                totals[key] += int(summary.get(key, 0) or 0)
        return totals

    def lease_overview(self, now: Optional[float] = None) -> Dict:
        """Owner/heartbeat/attempts roll-up of the manifest, for ``campaign ls``.

        ``owner`` is the ``pid@host`` of the *freshest* running lease (or
        ``None`` when nothing is running / no lease was recorded),
        ``heartbeat_age`` its age in seconds, ``live`` whether that lease
        still passes :func:`lease_is_stale`, and ``attempts`` the maximum
        claim count of any cell — a number above 1 means some cell was
        re-queued after a crash or interruption.
        """
        current = time.time() if now is None else now
        owner = None
        heartbeat = None
        live = False
        attempts = 0
        for cell in self.cells.values():
            attempts = max(attempts, int(cell.get("attempts") or 0))
            if cell.get("status") != CELL_RUNNING:
                continue
            lease = cell.get("owner")
            if not isinstance(lease, dict):
                continue
            try:
                beat = float(lease["heartbeat"])
            except (KeyError, TypeError, ValueError):
                continue
            if heartbeat is None or beat > heartbeat:
                heartbeat = beat
                owner = f"{lease.get('pid', '?')}@{lease.get('host', '?')}"
                live = not lease_is_stale(lease, now=current)
        return {
            "owner": owner,
            "heartbeat_age": None if heartbeat is None else max(0.0, current - heartbeat),
            "live": live,
            "attempts": attempts,
        }

    def progress(self) -> Dict[str, int]:
        """Cell counts by manifest status (``done`` / ``running`` / ``pending``)."""
        counts = {CELL_DONE: 0, CELL_RUNNING: 0, CELL_PENDING: 0}
        for cell in self.cells.values():
            status = cell.get("status", CELL_PENDING)
            counts[status] = counts.get(status, 0) + 1
        return counts
