"""Mutation plans: deterministic generation of campaign jobs.

A :class:`MutationPlan` turns one :class:`~repro.benchgen.common.VerificationBenchmark`
into a stream of mutated circuit variants using the fault models of
:mod:`repro.circuits.mutations` (the paper's "one additional randomly selected
gate at a random location" plus gate removal and operand swapping).  Mutants
are seeded from ``(base_seed, index)``, so the same plan always produces the
same campaign — which is what makes the on-disk result cache effective across
re-runs.

Each job carries its circuit and condition automata in *serialized* form
(OpenQASM / the TA text format), so it can be pickled cheaply to worker
processes and replayed later from the report alone.

Matrix campaigns (:mod:`repro.campaign.scheduler`) instantiate one plan per
sweep cell; :meth:`MutationPlan.to_dict` records the plan parameters in the
resumable manifest so an interrupted sweep provably resumes the *same* plan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..benchgen.common import VerificationBenchmark
from ..circuits.circuit import Circuit
from ..circuits.mutations import MUTATION_OPERATORS, inject_random_gate
from ..circuits.qasm import to_qasm
from ..ta import serialization
from .cache import fingerprint_automaton, fingerprint_qasm

__all__ = ["MUTATION_KINDS", "CampaignJob", "MutationPlan"]

#: supported mutation operator names (in plan order) — the full taxonomy of
#: :data:`repro.circuits.mutations.MUTATION_OPERATORS`
MUTATION_KINDS: Tuple[str, ...] = tuple(MUTATION_OPERATORS)

_MUTATORS = MUTATION_OPERATORS


@dataclass(frozen=True)
class CampaignJob:
    """One picklable verification job of a campaign."""

    job_id: str
    benchmark: str
    mutation_kind: str  # "reference" for the unmutated circuit
    mutation: Optional[str]
    seed: Optional[int]
    mode: str
    num_qubits: int
    num_gates: int
    circuit_qasm: str
    precondition_text: str
    postcondition_text: str
    circuit_fingerprint: str
    precondition_fingerprint: str
    postcondition_fingerprint: str


class MutationPlan:
    """Deterministic plan mapping a benchmark to ``num_mutants`` mutated copies.

    ``kinds`` cycles over the requested mutation operators; mutant ``i`` uses
    operator ``kinds[i % len(kinds)]`` with seed ``base_seed + i``.  Operators
    that do not apply to a circuit (e.g. operand swapping on a single-qubit
    circuit) deterministically fall back to gate insertion, which applies to
    every circuit.
    """

    def __init__(
        self,
        num_mutants: int,
        kinds: Sequence[str] = ("insert",),
        base_seed: int = 0,
        include_reference: bool = True,
    ):
        if num_mutants < 0:
            raise ValueError("num_mutants must be non-negative")
        for kind in kinds:
            if kind not in MUTATION_KINDS:
                raise ValueError(f"unknown mutation kind {kind!r}; expected one of {MUTATION_KINDS}")
        if not kinds:
            raise ValueError("at least one mutation kind is required")
        self.num_mutants = int(num_mutants)
        self.kinds = tuple(kinds)
        self.base_seed = int(base_seed)
        self.include_reference = bool(include_reference)

    def to_dict(self) -> Dict:
        """The plan's defining parameters (stored in campaign manifests)."""
        return {
            "num_mutants": self.num_mutants,
            "kinds": list(self.kinds),
            "base_seed": self.base_seed,
            "include_reference": self.include_reference,
        }

    def mutants(self, circuit: Circuit) -> Iterator[Tuple[int, str, int, Circuit, Optional[str]]]:
        """Yield ``(index, kind, seed, mutant, mutation_description)`` tuples.

        Each mutant gets its own explicit ``random.Random(base_seed + index)``
        generator, so the stream of mutants is byte-identical across platforms
        and Python versions — a plan replayed from a manifest or corpus entry
        reproduces the exact same circuits (and thus the same cache keys).
        """
        for index in range(self.num_mutants):
            kind = self.kinds[index % len(self.kinds)]
            seed = self.base_seed + index
            try:
                mutant, record = _MUTATORS[kind](circuit, rng=random.Random(seed))
            except ValueError:
                kind = "insert"
                mutant, record = inject_random_gate(circuit, rng=random.Random(seed))
            yield index, kind, seed, mutant, str(record)

    def jobs(self, benchmark: VerificationBenchmark, mode: str) -> List[CampaignJob]:
        """Materialise the full job list for one benchmark instance."""
        precondition_text = serialization.dumps(benchmark.precondition)
        postcondition_text = serialization.dumps(benchmark.postcondition)
        precondition_fingerprint = fingerprint_automaton(benchmark.precondition)
        postcondition_fingerprint = fingerprint_automaton(benchmark.postcondition)
        width = max(4, len(str(max(self.num_mutants - 1, 0))))

        def job_for(job_id: str, kind: str, circuit: Circuit, mutation: Optional[str], seed: Optional[int]) -> CampaignJob:
            qasm = to_qasm(circuit)
            return CampaignJob(
                job_id=job_id,
                benchmark=benchmark.name,
                mutation_kind=kind,
                mutation=mutation,
                seed=seed,
                mode=mode,
                num_qubits=circuit.num_qubits,
                num_gates=circuit.num_gates,
                circuit_qasm=qasm,
                precondition_text=precondition_text,
                postcondition_text=postcondition_text,
                circuit_fingerprint=fingerprint_qasm(qasm),
                precondition_fingerprint=precondition_fingerprint,
                postcondition_fingerprint=postcondition_fingerprint,
            )

        jobs: List[CampaignJob] = []
        if self.include_reference:
            jobs.append(job_for(f"{benchmark.name}/reference", "reference", benchmark.circuit, None, None))
        for index, kind, seed, mutant, mutation in self.mutants(benchmark.circuit):
            job_id = f"{benchmark.name}/{kind}-{index:0{width}d}"
            jobs.append(job_for(job_id, kind, mutant, mutation, seed))
        return jobs
