"""JSON-lines campaign reports and sweep summary tables.

One line per verification job, flushed as soon as the verdict is known, so a
running campaign can be tailed (``tail -f report.jsonl``) and a crashed one
loses at most the in-flight jobs.  :func:`summarise_records` aggregates a
report back into the campaign-level counters printed by the CLI, and
:func:`format_cell_table` renders the per-cell roll-up a matrix sweep
(:mod:`repro.campaign.scheduler`) prints when it finishes.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

__all__ = [
    "REPORT_FIELDS",
    "CampaignReportWriter",
    "read_report",
    "summarise_records",
    "format_cell_table",
]

#: the keys every report line carries (schema contract checked by the tests);
#: ``api_version`` and ``kind`` are the envelope of the versioned service-layer
#: schema (:mod:`repro.api.schema`) — the writer stamps them on every line so a
#: JSONL record validates as a ``campaign-job`` document
REPORT_FIELDS = (
    "api_version",
    "kind",
    "job_id",
    "benchmark",
    "mode",
    "mutation_kind",
    "mutation",
    "seed",
    "num_qubits",
    "num_gates",
    "circuit_fingerprint",
    "precondition_fingerprint",
    "postcondition_fingerprint",
    "verdict",  # "holds" | "violated" | "unsupported" | "error"
    "witness",
    "witness_kind",
    "error",
    "statistics",
    "comparison_seconds",
    "elapsed_seconds",
    "cached",
    "deduplicated",  # verdict reused from an identical in-run mutant
    "retried",  # times this job was re-queued after a dead worker / injected fault
    "faults",  # worker-side robustness counters: injected/quarantined/store_retries/store_disabled
)


class CampaignReportWriter:
    """Streams result records to a JSONL file (context-manager)."""

    def __init__(self, path: str):
        self.path = path
        self._handle = None
        self.lines_written = 0

    def __enter__(self) -> "CampaignReportWriter":
        self._handle = open(self.path, "w", encoding="utf-8")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def write(self, record: Dict) -> Dict:
        """Append one record (missing schema fields are filled with ``None``).

        Every line is stamped with the current ``api_version`` and the
        ``campaign-job`` document kind, even when the verdict was replayed
        from a cache entry written by an older version.  Returns the stamped
        document exactly as written, so callers (e.g. the service daemon's
        SSE stream) can forward the wire form without re-deriving it.
        """
        if self._handle is None:
            raise RuntimeError("report writer used outside its context manager")
        from ..api.schema import API_VERSION, CAMPAIGN_RECORD_KIND

        full = {key: record.get(key) for key in REPORT_FIELDS}
        full["api_version"] = API_VERSION
        full["kind"] = CAMPAIGN_RECORD_KIND
        self._handle.write(json.dumps(full, sort_keys=True) + "\n")
        self._handle.flush()
        self.lines_written += 1
        return full


def read_report(path: str) -> List[Dict]:
    """Load every record of a JSONL report."""
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarise_records(records: Iterable[Dict], wall_seconds: Optional[float] = None) -> Dict:
    """Aggregate report records into the campaign-level counters."""
    records = list(records)
    verdicts = [record.get("verdict") for record in records]
    # only count analysis actually performed by this run: cached and
    # deduplicated records carry another job's timings, which would make
    # cheap re-runs (or colliding mutants) look heavy
    analysis = 0.0
    phase_totals: Dict[str, float] = {}
    store_totals = {"store_hits": 0, "store_misses": 0, "store_publishes": 0}
    faults_injected = 0
    retries = 0
    quarantined = 0
    backend_hits = 0
    store_disabled = False
    for record in records:
        # robustness counters count even on cached/deduplicated records: a
        # re-queued job whose verdict was then served from the cache still
        # cost a retry, and hiding it would make chaos runs look clean
        retries += int(record.get("retried") or 0)
        faults = record.get("faults") or {}
        faults_injected += int(faults.get("injected") or 0)
        retries += int(faults.get("store_retries") or 0)
        quarantined += int(faults.get("quarantined") or 0)
        backend_hits += int(faults.get("backend_hits") or 0)
        store_disabled = store_disabled or bool(faults.get("store_disabled"))
        if record.get("cached") or record.get("deduplicated"):
            continue
        statistics = record.get("statistics") or {}
        store_disabled = store_disabled or bool(statistics.get("store_disabled"))
        analysis += float(statistics.get("analysis_seconds") or 0.0)
        for phase, seconds in (statistics.get("phase_seconds") or {}).items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + float(seconds)
        for key in store_totals:
            store_totals[key] += int(statistics.get(key) or 0)
    summary = {
        "jobs": len(records),
        "holds": verdicts.count("holds"),
        "violated": verdicts.count("violated"),
        # mutants no encoding under this mode can express (permutation-only
        # cells hit these) — distinct from crashes, which taint the sweep
        "unsupported": verdicts.count("unsupported"),
        "errors": verdicts.count("error"),
        "cache_hits": sum(1 for record in records if record.get("cached")),
        "analysis_seconds": analysis,
        "phase_seconds": phase_totals,
        # cross-process automaton-store traffic of the freshly verified jobs
        **store_totals,
        # robustness roll-up (see docs/robustness.md): injected faults seen
        # by workers, job re-queues + store I/O retries, quarantined store
        # entries, and whether any worker's store tier degraded itself
        "faults_injected": faults_injected,
        "retries": retries,
        "quarantined_entries": quarantined,
        "store_disabled": store_disabled,
        # remote store-backend hits summed from worker-side fault snapshots
        # (nonzero only when the campaign shares a daemon-backed store)
        "backend_hits": backend_hits,
    }
    if wall_seconds is not None:
        summary["wall_seconds"] = wall_seconds
    return summary


#: (header, row key, right-align?) columns of the matrix sweep table
_CELL_COLUMNS = (
    ("cell", "cell", False),
    ("jobs", "jobs", True),
    ("holds", "holds", True),
    ("violated", "violated", True),
    ("unsup", "unsupported", True),
    ("errors", "errors", True),
    ("cache", "cache_hits", True),
    ("wall_s", "wall_seconds", True),
    ("note", "note", False),
)


def format_cell_table(rows: Iterable[Dict], totals: Optional[Dict] = None) -> str:
    """Render matrix sweep rows (see ``MatrixScheduler.run``) as an aligned
    text table, with an optional ``total`` footer line.

    Each row's ``note`` flags what a reader must not miss: ``resumed`` for
    cells whose verdicts were reused from the manifest, ``REF-VIOLATED`` when
    the unmutated reference circuit failed its own specification.
    """
    prepared: List[Dict] = []
    for row in rows:
        notes = []
        if row.get("reused"):
            notes.append("resumed")
        if row.get("reference_violated"):
            notes.append("REF-VIOLATED")
        prepared.append({**row, "note": ",".join(notes)})
    if totals is not None:
        prepared.append({"cell": "total", "note": "", **totals})

    def cell_text(row: Dict, key: str) -> str:
        value = row.get(key, "")
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {
        header: max(len(header), *(len(cell_text(row, key)) for row in prepared))
        for header, key, _align in _CELL_COLUMNS
    }
    lines = ["  ".join(header.ljust(widths[header]) for header, _k, _a in _CELL_COLUMNS).rstrip()]
    lines.append("  ".join("-" * widths[header] for header, _k, _a in _CELL_COLUMNS).rstrip())
    for row in prepared:
        parts = []
        for header, key, right in _CELL_COLUMNS:
            text = cell_text(row, key)
            parts.append(text.rjust(widths[header]) if right else text.ljust(widths[header]))
        lines.append("  ".join(parts).rstrip())
    return "\n".join(lines)
