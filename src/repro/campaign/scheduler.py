"""Campaign matrix scheduler: families × sizes × modes sweeps, resumable.

This is the paper's Section 7 evaluation loop as infrastructure.  A
:class:`MatrixSpec` describes a whole benchmark matrix — which families, at
which sizes, under which engine modes, with what mutant budget — and expands
into :class:`MatrixCell`\\ s, one bug-hunting campaign per combination.  The
:class:`MatrixScheduler` then:

* validates every cell against the family capability registry
  (:mod:`repro.benchgen.families`) *before* any work starts;
* orders cells **cheapest-first** (small sizes and cheap modes run early, so a
  sweep produces signal quickly and an interrupted run has banked the most
  cells possible);
* runs each cell through the existing :class:`~repro.campaign.runner.Campaign`
  machinery, sharing one multiprocessing pool across all cells;
* checkpoints progress in a resumable
  :class:`~repro.campaign.manifest.CampaignManifest` so
  ``campaign --resume <id>`` skips completed cells and re-queues interrupted
  ones.

Every sweep also runs under the distributed campaign fabric
(:mod:`repro.dist`): the scheduler claims each cell through a lease-based
:class:`~repro.dist.JobQueue` living next to the manifest, so any number of
extra workers can attach to a running sweep with ``campaign --join <id>``
(:meth:`MatrixScheduler.run_join`).  Joiners never write the manifest — they
drain the queue and publish idempotent completion records, which the
coordinator merges into the manifest and the ``summary.json`` roll-up.  With
no joiners every claim trivially succeeds and the sweep behaves exactly as a
solo run.  See ``docs/distributed.md`` for the protocol.

Specs load from TOML or JSON files (``MatrixSpec.from_file``) or from plain
mappings assembled by CLI flags (``MatrixSpec.from_mapping``).  A minimal TOML
spec::

    families = ["grover", "bv"]
    modes = ["hybrid", "composition"]
    mutants = 25

    [sizes]
    bv = "3-5"        # inclusive range
    grover = [2]      # explicit list; omitted families use their defaults
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..benchgen.families import (
    default_campaign_sizes,
    family_capability,
    resolve_family,
    validate_family_size,
)
from ..core.engine import AnalysisMode
from ..dist.queue import JobQueue
from ..faults import FaultPlan
from .cache import atomic_write_json, resolve_store_dir
from .manifest import CampaignManifest, ManifestError, default_manifest_dir
from .plan import MUTATION_KINDS
from .runner import Campaign, CampaignConfig, initialise_worker

__all__ = [
    "MatrixCell",
    "MatrixSpec",
    "MatrixRunResult",
    "JoinRunResult",
    "MatrixScheduler",
    "estimate_cell_cost",
    "parse_sizes",
]

#: relative per-verification weight of each engine mode (ordering heuristic
#: only — composition-based gate application dominates hybrid, which dominates
#: the pure permutation encoding)
MODE_COST = {
    AnalysisMode.PERMUTATION: 0.5,
    AnalysisMode.HYBRID: 1.0,
    AnalysisMode.COMPOSITION: 2.0,
}

_RANGE_PATTERN = re.compile(r"^\s*(\d+)\s*-\s*(\d+)\s*$")

#: how often a scheduler refreshes its lease heartbeat on the cell it is
#: executing (piggybacked on campaign record completion, so it costs one
#: manifest write at most this often) — well under the lease TTL
HEARTBEAT_INTERVAL_SECONDS = 60.0

#: how long the coordinator sleeps between polls while every remaining cell
#: is held by a live joiner (it wakes to merge their completions, or to steal
#: cells whose leases went stale)
FABRIC_POLL_SECONDS = 0.5

#: per-cell summary counters copied into matrix rows and summed into totals
_ROW_COUNTER_KEYS = (
    "jobs", "holds", "violated", "unsupported", "errors", "cache_hits",
    "store_hits", "store_misses", "store_publishes",
    "faults_injected", "retries", "quarantined_entries",
    "backend_hits", "cells_claimed", "cells_stolen", "cells_requeued",
    "lease_renewals",
)


def parse_sizes(value: Union[int, str, Sequence]) -> Tuple[int, ...]:
    """Expand a size field into a sorted tuple of ints.

    Accepts a single int (``4``), a decimal string (``"4"``), an inclusive
    range string (``"2-5"``), or a list mixing any of those.
    """
    if isinstance(value, bool):
        raise ValueError(f"invalid size value {value!r}")
    if isinstance(value, int):
        return (value,)
    if isinstance(value, str):
        sizes: List[int] = []
        for part in value.split(","):
            part = part.strip()
            if not part:
                continue
            match = _RANGE_PATTERN.match(part)
            if match:
                low, high = int(match.group(1)), int(match.group(2))
                if high < low:
                    raise ValueError(f"size range {part!r} is empty (end < start)")
                sizes.extend(range(low, high + 1))
            elif part.isdigit():
                sizes.append(int(part))
            else:
                raise ValueError(f"cannot parse size {part!r} (expected e.g. 4, 2-5, or 3,4)")
        if not sizes:
            raise ValueError(f"no sizes in {value!r}")
        return tuple(sorted(set(sizes)))
    if isinstance(value, Sequence):
        sizes = []
        for item in value:
            sizes.extend(parse_sizes(item))
        if not sizes:
            raise ValueError("size list is empty")
        return tuple(sorted(set(sizes)))
    raise ValueError(f"invalid size value {value!r}")


def _toml_module():
    """``tomllib`` (3.11+) or the backport; a clean ``ValueError`` without either."""
    try:
        import tomllib

        return tomllib
    except ImportError:  # pragma: no cover - Python 3.10
        try:
            import tomli

            return tomli
        except ImportError:
            raise ValueError(
                "no TOML parser available (needs Python >= 3.11 or the 'tomli' "
                "package); use a .json sweep spec instead"
            ) from None


def _as_name_tuple(value: Union[str, Sequence[str]], what: str) -> Tuple[str, ...]:
    """Normalise a list-or-comma-string field into a tuple of names."""
    if isinstance(value, str):
        names = tuple(part.strip() for part in value.split(",") if part.strip())
    elif isinstance(value, Sequence):
        names = tuple(str(part).strip() for part in value)
    else:
        raise ValueError(f"invalid {what} value {value!r}")
    if not names:
        raise ValueError(f"at least one {what} is required")
    return names


@dataclass(frozen=True)
class MatrixCell:
    """One campaign of a sweep: a (family, size, mode) point with its budget."""

    family: str  # canonical family name
    size: int
    mode: str
    mutants: int

    @property
    def cell_id(self) -> str:
        """Stable, filename-safe identifier (``grover-single-n2-hybrid``)."""
        return f"{self.family}-n{self.size}-{self.mode}"


def estimate_cell_cost(cell: MatrixCell) -> float:
    """Relative cost of a cell, used only to order the sweep cheapest-first.

    jobs × family cost scale × size² × mode weight — a coarse model of "bigger
    circuits and heavier encodings take longer", deliberately cheap to compute
    (no circuit is built during scheduling).
    """
    jobs = cell.mutants + 1
    scale = family_capability(cell.family).cost_scale
    return jobs * scale * float(cell.size**2) * MODE_COST.get(cell.mode, 1.0)


#: keys accepted in a sweep spec mapping (anything else is a typo)
_SPEC_KEYS = frozenset(
    {"families", "sizes", "modes", "mutants", "mutations", "seed", "include_reference"}
)


@dataclass(frozen=True)
class MatrixSpec:
    """Declarative description of a families × sizes × modes sweep."""

    families: Tuple[str, ...]
    sizes: Mapping[str, Tuple[int, ...]]  # canonical family -> sorted sizes
    modes: Tuple[str, ...] = (AnalysisMode.HYBRID,)
    mutants: int = 25
    mutation_kinds: Tuple[str, ...] = ("insert",)
    seed: int = 0
    include_reference: bool = True

    def __post_init__(self) -> None:
        if not self.families:
            raise ValueError("a matrix spec needs at least one family")
        if self.mutants < 0:
            raise ValueError("mutants must be non-negative")
        for mode in self.modes:
            if mode not in AnalysisMode.ALL:
                raise ValueError(
                    f"unknown analysis mode {mode!r}; expected one of {AnalysisMode.ALL}"
                )
        for kind in self.mutation_kinds:
            if kind not in MUTATION_KINDS:
                raise ValueError(
                    f"unknown mutation kind {kind!r}; expected one of {MUTATION_KINDS}"
                )
        for family in self.families:
            for size in self.sizes.get(family, ()):
                validate_family_size(family, size)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "MatrixSpec":
        """Build a spec from a plain dict (parsed TOML/JSON or CLI flags).

        The mapping may nest everything under a ``matrix`` table.  ``sizes``
        is either one value applied to every family (int, ``"2-5"`` range
        string, or list) or a per-family table; families without an entry use
        their registry defaults (:func:`~repro.benchgen.families.default_campaign_sizes`).
        """
        if "matrix" in mapping and isinstance(mapping["matrix"], Mapping):
            inner = dict(mapping["matrix"])
            for key, value in mapping.items():
                if key != "matrix":
                    inner.setdefault(key, value)
            mapping = inner
        unknown = set(mapping) - _SPEC_KEYS
        if unknown:
            raise ValueError(
                f"unknown spec keys {sorted(unknown)}; expected a subset of {sorted(_SPEC_KEYS)}"
            )
        if "families" not in mapping:
            raise ValueError("a matrix spec needs a 'families' list")
        families = tuple(resolve_family(name) for name in
                         _as_name_tuple(mapping["families"], "family"))
        if len(set(families)) != len(families):
            raise ValueError("duplicate families in spec (after alias resolution)")

        sizes_value = mapping.get("sizes")
        sizes: Dict[str, Tuple[int, ...]] = {}
        if sizes_value is None:
            for family in families:
                sizes[family] = default_campaign_sizes(family)
        elif isinstance(sizes_value, Mapping):
            for name, value in sizes_value.items():
                canonical = resolve_family(name)
                if canonical not in families:
                    raise ValueError(f"sizes given for {name!r}, which is not in 'families'")
                sizes[canonical] = parse_sizes(value)
            for family in families:
                sizes.setdefault(family, default_campaign_sizes(family))
        else:
            shared = parse_sizes(sizes_value)
            for family in families:
                sizes[family] = shared

        modes = mapping.get("modes", (AnalysisMode.HYBRID,))
        mutations = mapping.get("mutations", ("insert",))
        return cls(
            families=families,
            sizes=sizes,
            modes=_as_name_tuple(modes, "mode"),
            mutants=int(mapping.get("mutants", 25)),
            mutation_kinds=_as_name_tuple(mutations, "mutation kind"),
            seed=int(mapping.get("seed", 0)),
            include_reference=bool(mapping.get("include_reference", True)),
        )

    @classmethod
    def from_file(cls, path: str) -> "MatrixSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        with open(path, "rb") as handle:
            raw = handle.read()
        if path.endswith(".json"):
            mapping = json.loads(raw.decode("utf-8"))
        else:
            toml = _toml_module()
            try:
                mapping = toml.loads(raw.decode("utf-8"))
            except toml.TOMLDecodeError as error:
                raise ValueError(f"cannot parse sweep spec {path!r}: {error}") from error
        if not isinstance(mapping, Mapping):
            raise ValueError(f"sweep spec {path!r} must be a table/object at the top level")
        return cls.from_mapping(mapping)

    # -- identity ----------------------------------------------------------

    def to_dict(self) -> Dict:
        """Canonical JSON-serialisable form (stored in the manifest)."""
        return {
            "families": list(self.families),
            "sizes": {family: list(self.sizes[family]) for family in self.families},
            "modes": list(self.modes),
            "mutants": self.mutants,
            "mutations": list(self.mutation_kinds),
            "seed": self.seed,
            "include_reference": self.include_reference,
        }

    def fingerprint(self) -> str:
        """Digest of the canonical spec — the resume-compatibility check."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def default_campaign_id(self) -> str:
        """A short content-derived campaign id (``mx-<12 hex digits>``)."""
        return f"mx-{self.fingerprint()[:12]}"

    # -- expansion ---------------------------------------------------------

    def cells(self) -> List[MatrixCell]:
        """Expand into cells, silently dropping unsupported (family, mode)
        combinations (see :meth:`skipped_combinations`); error if nothing is
        left."""
        cells = []
        for family in self.families:
            supported = family_capability(family).modes
            for size in self.sizes[family]:
                for mode in self.modes:
                    if mode in supported:
                        cells.append(MatrixCell(family, size, mode, self.mutants))
        if not cells:
            raise ValueError(
                "the sweep is empty: no requested family supports any requested mode"
            )
        return cells

    def skipped_combinations(self) -> List[Tuple[str, str]]:
        """(family, mode) pairs the expansion dropped — surfaced in reports so
        partial coverage is never silent."""
        skipped = []
        for family in self.families:
            supported = family_capability(family).modes
            for mode in self.modes:
                if mode not in supported:
                    skipped.append((family, mode))
        return skipped


@dataclass
class MatrixRunResult:
    """Everything a front-end needs after a sweep: per-cell rows + totals."""

    campaign_id: str
    manifest_path: str
    summary_path: str
    rows: List[Dict]  # one per cell, in spec order
    totals: Dict
    reused_cells: int  # completed cells skipped thanks to the manifest
    skipped_combinations: List[Tuple[str, str]]
    wall_seconds: float

    @property
    def trustworthy(self) -> bool:
        """False when any cell errored or any reference circuit violated its
        own specification (mirrors the single-campaign exit-code contract)."""
        return not (
            self.totals.get("errors", 0)
            or any(row.get("reference_violated") for row in self.rows)
        )


@dataclass
class JoinRunResult:
    """What a fabric worker reports after ``campaign --join`` drains the queue.

    ``rows`` covers only the cells *this* worker executed and published —
    the campaign-wide picture lives with the coordinator.  ``counters`` is
    the worker's :meth:`~repro.dist.JobQueue.counter_snapshot`: claims,
    steals, re-queues, lease renewals, completions, duplicates, conflicts.
    """

    campaign_id: str
    manifest_path: str
    queue_dir: str
    rows: List[Dict]  # one per cell this worker completed
    totals: Dict
    counters: Dict
    wall_seconds: float

    @property
    def cells_executed(self) -> int:
        return len(self.rows)

    @property
    def trustworthy(self) -> bool:
        """Same contract as a sweep, plus: a completion *conflict* (two
        workers publishing different verdicts for one cell) taints the run —
        deterministic verification should make that impossible."""
        return not (
            self.totals.get("errors", 0)
            or any(row.get("reference_violated") for row in self.rows)
            or self.counters.get("conflicts", 0)
        )


class MatrixScheduler:
    """Drives a :class:`MatrixSpec` to completion, checkpointing every cell."""

    def __init__(
        self,
        spec: MatrixSpec,
        workers: int = 1,
        report_dir: str = "campaign_reports",
        manifest_dir: Optional[str] = None,
        cache_dir: Optional[str] = None,
        campaign_id: Optional[str] = None,
        store_dir: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.spec = spec
        self.workers = workers
        self.report_dir = report_dir
        self.manifest_dir = manifest_dir or default_manifest_dir()
        self.cache_dir = cache_dir
        self.store_dir = store_dir
        self.fault_plan = fault_plan
        self.campaign_id = campaign_id or spec.default_campaign_id()

    @classmethod
    def resume(
        cls,
        campaign_id: str,
        workers: int = 1,
        report_dir: str = "campaign_reports",
        manifest_dir: Optional[str] = None,
        cache_dir: Optional[str] = None,
        store_dir: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "MatrixScheduler":
        """Rebuild a scheduler from a manifest alone (``campaign --resume <id>``)."""
        manifest = CampaignManifest.load(manifest_dir or default_manifest_dir(), campaign_id)
        spec = MatrixSpec.from_mapping(manifest.spec)
        return cls(spec, workers=workers, report_dir=report_dir,
                   manifest_dir=manifest_dir, cache_dir=cache_dir,
                   campaign_id=campaign_id, store_dir=store_dir,
                   fault_plan=fault_plan)

    #: ``campaign --join <id>`` rebuilds a scheduler exactly like ``--resume``
    #: — the difference is which entry point runs (:meth:`run_join` never
    #: plans and never writes the manifest)
    join = resume

    # -- internals ---------------------------------------------------------

    def _cell_report_path(self, cell: MatrixCell) -> str:
        return os.path.join(self.report_dir, self.campaign_id, f"{cell.cell_id}.jsonl")

    def _cell_config(self, cell: MatrixCell) -> CampaignConfig:
        return CampaignConfig(
            family=cell.family,
            size=cell.size,
            mutants=cell.mutants,
            mutation_kinds=self.spec.mutation_kinds,
            mode=cell.mode,
            workers=self.workers,
            seed=self.spec.seed,
            include_reference=self.spec.include_reference,
            report_path=self._cell_report_path(cell),
            cache_dir=self.cache_dir,
            store_dir=self.store_dir,
            fault_plan=self.fault_plan,
        )

    def _open_manifest(self, resume: bool) -> CampaignManifest:
        cell_ids = [cell.cell_id for cell in self.spec.cells()]
        if resume:
            manifest = CampaignManifest.load(self.manifest_dir, self.campaign_id)
            manifest.check_fingerprint(self.spec.fingerprint())
            if sorted(manifest.cells) != sorted(cell_ids):  # pragma: no cover - fingerprint guards this
                raise ManifestError(
                    f"manifest {self.campaign_id!r} tracks a different cell set"
                )
            return manifest
        return CampaignManifest.create(
            self.manifest_dir, self.campaign_id, self.spec.to_dict(),
            self.spec.fingerprint(), cell_ids,
        )

    def _queue(self) -> JobQueue:
        return JobQueue(self.manifest_dir, self.campaign_id)

    def _make_pool(self, wanted: bool):
        """The shared worker pool (or ``None`` for in-process execution)."""
        if self.workers <= 1 or not wanted:
            return None
        context = Campaign._pool_context()
        # all cells share one pool AND one automaton store: workers attach
        # to it once here, then reuse prefixes across cells
        return context.Pool(
            processes=self.workers,
            initializer=initialise_worker,
            initargs=(resolve_store_dir(self.cache_dir, self.store_dir),
                      self.fault_plan),
        )

    def _row_for(self, cell: MatrixCell, summary: Dict, reused: bool) -> Dict:
        row = {
            "cell": cell.cell_id,
            "family": cell.family,
            "size": cell.size,
            "mode": cell.mode,
            "reused": reused,
        }
        for key in _ROW_COUNTER_KEYS:
            row[key] = summary.get(key, 0)
        row["store_disabled"] = summary.get("store_disabled", False)
        row["wall_seconds"] = summary.get("wall_seconds", 0.0)
        row["reference_violated"] = summary.get("reference_violated", False)
        row["report_path"] = summary.get("report_path")
        row["phase_seconds"] = summary.get("phase_seconds", {})
        return row

    @staticmethod
    def _totals_for(rows: List[Dict]) -> Dict:
        totals = {key: sum(row.get(key, 0) for row in rows)
                  for key in _ROW_COUNTER_KEYS}
        totals["store_disabled"] = any(row.get("store_disabled") for row in rows)
        totals["wall_seconds"] = sum(row.get("wall_seconds", 0.0) for row in rows)
        return totals

    def _execute_cell(self, cell: MatrixCell, queue: JobQueue, lease,
                      manifest: Optional[CampaignManifest], pool, runtime,
                      say: Callable[[str], None]) -> Dict:
        """Run one claimed cell and publish its completion to the queue.

        When ``manifest`` is given (coordinator), the cell is also tracked
        through the manifest lease states; joiners pass ``None`` and leave
        the manifest to the coordinator.  Returns the cell's accepted
        summary dict — the winner's, if another worker published first.
        """
        if manifest is not None:
            manifest.mark_running(cell.cell_id, report_path=self._cell_report_path(cell))
            if manifest.attempts(cell.cell_id) > 1:
                say(f"  (attempt {manifest.attempts(cell.cell_id)} — previous "
                    "claim of this cell died or was interrupted)")
        # refresh the lease heartbeats as records complete, so a long cell
        # never looks abandoned to the other fabric workers
        beat = [time.monotonic()]

        def _heartbeat(_record, cell_id=cell.cell_id, lease=lease, beat=beat):
            if time.monotonic() - beat[0] >= HEARTBEAT_INTERVAL_SECONDS:
                if manifest is not None:
                    manifest.touch_running(cell_id)
                queue.renew(lease)
                beat[0] = time.monotonic()

        summary = Campaign(self._cell_config(cell)).run(
            pool=pool, runtime=runtime, on_record=_heartbeat)
        summary.apply_lease(lease)
        summary_dict = summary.to_dict()
        outcome = queue.complete(lease, summary_dict,
                                 report_path=self._cell_report_path(cell))
        if outcome != "accepted":
            say(f"  completion discarded ({outcome}): another worker already "
                f"published {cell.cell_id}")
            winner = queue.result(cell.cell_id)
            if winner is not None and isinstance(winner.get("summary"), dict):
                summary_dict = winner["summary"]
        if manifest is not None:
            manifest.mark_done(cell.cell_id, summary_dict)
        return summary_dict

    # -- execution ---------------------------------------------------------

    def plan(self, resume: bool = False) -> str:
        """Materialise the manifest and the fabric queue without running
        anything; returns the manifest path.

        This is how a coordinator opens a campaign for ``--join`` workers
        before (or instead of) executing cells itself — the benchmark and
        smoke harnesses use it to measure pure-joiner throughput.
        """
        manifest = self._open_manifest(resume)
        queue = self._queue()
        if not resume:
            queue.reset()
        return manifest.path

    def run(
        self,
        resume: bool = False,
        progress: Optional[Callable[[str], None]] = None,
        runtime=None,
    ) -> MatrixRunResult:
        """Run (or resume) the sweep; returns per-cell rows and totals.

        On ``KeyboardInterrupt`` (or any crash) the manifest is left with the
        current cell in ``running`` state, so the next ``run(resume=True)``
        re-queues exactly that cell and skips everything already ``done``.

        ``runtime`` optionally names the :class:`~repro.core.engine.GateRuntime`
        used for in-process verification (see :meth:`Campaign.run`); pool
        workers always use their own per-process runtimes.

        The run is also the campaign's fabric *coordinator*: every cell is
        claimed through the lease queue before executing, completions
        published by ``--join`` workers are merged into the manifest instead
        of re-executed, and cells currently held by a live joiner are waited
        on (or stolen, once their lease goes stale).
        """
        say = progress or (lambda message: None)
        start = time.perf_counter()
        cells = self.spec.cells()
        by_id = {cell.cell_id: cell for cell in cells}
        manifest = self._open_manifest(resume)
        queue = self._queue()
        if not resume:
            queue.reset()

        reused = set(manifest.completed_cell_ids())
        interrupted = manifest.interrupted_cell_ids()
        live = manifest.live_cell_ids()
        if reused:
            say(f"resume: {len(reused)} of {len(cells)} cell(s) already done")
        if interrupted:
            say(f"resume: re-queueing interrupted cell(s): {', '.join(interrupted)}")
        if live:
            say("resume: skipping cell(s) held by a live worker: "
                + ", ".join(live))

        todo = [by_id[cell_id] for cell_id in manifest.remaining_cell_ids()]
        todo.sort(key=estimate_cell_cost)

        os.makedirs(os.path.join(self.report_dir, self.campaign_id), exist_ok=True)
        pool = None
        merged = 0
        try:
            pool = self._make_pool(wanted=bool(todo))
            position = 0
            remaining = list(todo)
            waiting_announced = False
            while remaining:
                progressed = False
                held: List[MatrixCell] = []
                for cell in remaining:
                    record = queue.result(cell.cell_id)
                    if record is not None:
                        # a joiner finished this cell — adopt its verdicts
                        summary = record.get("summary")
                        manifest.mark_done(
                            cell.cell_id,
                            summary if isinstance(summary, dict) else {})
                        worker = record.get("worker") or {}
                        say(f"merged {cell.cell_id} completed by worker "
                            f"{worker.get('pid', '?')}@{worker.get('host', '?')}")
                        merged += 1
                        progressed = True
                        continue
                    lease = queue.claim(cell.cell_id)
                    if lease is None:
                        held.append(cell)  # a live joiner owns it (for now)
                        continue
                    position += 1
                    say(f"[{position}/{len(todo)}] {cell.cell_id} "
                        f"({cell.mutants} mutant(s), est. cost {estimate_cell_cost(cell):.0f})")
                    self._execute_cell(cell, queue, lease, manifest, pool,
                                       runtime, say)
                    progressed = True
                remaining = held
                if remaining and not progressed:
                    if not waiting_announced:
                        say(f"waiting on {len(remaining)} cell(s) held by "
                            "joined worker(s): "
                            + ", ".join(cell.cell_id for cell in remaining))
                        waiting_announced = True
                    time.sleep(FABRIC_POLL_SECONDS)
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

        rows = [self._row_for(cell, manifest.summary(cell.cell_id) or {},
                              reused=cell.cell_id in reused)
                for cell in cells]
        totals = self._totals_for(rows)
        wall = time.perf_counter() - start

        summary_path = os.path.join(self.report_dir, self.campaign_id, "summary.json")
        result = MatrixRunResult(
            campaign_id=self.campaign_id,
            manifest_path=manifest.path,
            summary_path=summary_path,
            rows=rows,
            totals=totals,
            reused_cells=len(reused),
            skipped_combinations=self.spec.skipped_combinations(),
            wall_seconds=wall,
        )
        atomic_write_json(summary_path, {
            "campaign_id": self.campaign_id,
            "spec": self.spec.to_dict(),
            "spec_fingerprint": self.spec.fingerprint(),
            "cells": rows,
            "totals": totals,
            "reused_cells": result.reused_cells,
            #: cells executed and published by --join workers this run
            "merged_cells": merged,
            "skipped_combinations": [list(pair) for pair in result.skipped_combinations],
            "wall_seconds": wall,
        }, indent=2)
        return result

    def run_join(
        self,
        progress: Optional[Callable[[str], None]] = None,
        runtime=None,
    ) -> JoinRunResult:
        """Attach to an existing campaign as a fabric worker and drain it.

        A joiner does **no planning** and never writes the manifest: it
        claims claimable cells from the lease queue (cheapest-first, the
        same priority order the coordinator uses), executes each through the
        normal campaign machinery (own per-cell JSONL report), and publishes
        idempotent completion records the coordinator merges.  It returns
        once nothing is left to claim — every remaining cell is either
        completed or held by another live worker.
        """
        say = progress or (lambda message: None)
        start = time.perf_counter()
        # read-only manifest load: the authoritative "what is this sweep"
        # record, and a guard against joining a different spec under this id
        manifest = CampaignManifest.load(self.manifest_dir, self.campaign_id)
        manifest.check_fingerprint(self.spec.fingerprint())
        queue = self._queue()

        done = set(manifest.completed_cell_ids())
        order = [cell for cell in sorted(self.spec.cells(), key=estimate_cell_cost)
                 if cell.cell_id not in done]
        os.makedirs(os.path.join(self.report_dir, self.campaign_id), exist_ok=True)

        rows: List[Dict] = []
        pool = None
        try:
            pool = self._make_pool(wanted=bool(order))
            progressed = True
            while progressed:
                # re-scan after every pass: cells abandoned by a worker that
                # died while we were busy become claimable (stale lease)
                progressed = False
                for cell in order:
                    if queue.result(cell.cell_id) is not None:
                        continue
                    lease = queue.claim(cell.cell_id)
                    if lease is None:
                        continue
                    say(f"join: {cell.cell_id} (claim generation {lease.token}"
                        + (", stolen from a stale lease" if lease.stolen else "")
                        + ")")
                    summary = self._execute_cell(cell, queue, lease, None,
                                                 pool, runtime, say)
                    rows.append(self._row_for(cell, summary, reused=False))
                    progressed = True
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()

        return JoinRunResult(
            campaign_id=self.campaign_id,
            manifest_path=manifest.path,
            queue_dir=queue.directory,
            rows=rows,
            totals=self._totals_for(rows),
            counters=queue.counter_snapshot(),
            wall_seconds=time.perf_counter() - start,
        )
