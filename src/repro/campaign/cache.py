"""Persistent result cache for verification campaigns.

Cache entries are JSON files in a flat directory, one per key.  The key is the
SHA-256 digest of ``(circuit fingerprint, precondition fingerprint, mode)`` —
the triple that determines the verification outcome for a fixed family
specification.  The post-condition fingerprint is stored inside each record
and checked on lookup, so changing the expected outputs (while keeping the
circuit and inputs) correctly invalidates the entry instead of replaying a
stale verdict.

Writes are atomic (temp file + ``os.replace``), which makes the cache safe to
share between the campaign parent process and concurrent campaign runs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

from ..circuits.circuit import Circuit
from ..circuits.qasm import to_qasm
from ..ta import serialization
from ..ta.automaton import TreeAutomaton
from ..ta.store import default_store_dir

__all__ = [
    "fingerprint_circuit",
    "fingerprint_qasm",
    "fingerprint_automaton",
    "default_cache_dir",
    "resolve_store_dir",
    "atomic_write_json",
    "ResultCache",
]

#: environment variable overriding the default cache directory
CACHE_DIR_ENV = "AUTOQ_REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The campaign cache directory: ``$AUTOQ_REPRO_CACHE_DIR`` or ``~/.cache/autoq-repro/campaign``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "autoq-repro", "campaign")


def resolve_store_dir(cache_dir: Optional[str], store_dir: Optional[str]) -> Optional[str]:
    """Where a campaign's cross-process automaton store lives (``None`` = off).

    ``store_dir`` wins when given (``""`` disables the store explicitly).
    With ``store_dir=None`` the store follows the result-cache setting:
    disabled result cache (``cache_dir == ""``) disables the store too, an
    explicit ``cache_dir`` puts the store in its ``store/`` subdirectory, and
    the default falls back to :func:`repro.ta.store.default_store_dir`
    (``$AUTOQ_REPRO_CACHE_DIR/store`` or ``~/.cache/autoq-repro/store``).
    """
    if store_dir == "":
        return None
    if store_dir is not None:
        return store_dir
    if cache_dir == "":
        return None
    if cache_dir:
        return os.path.join(cache_dir, "store")
    return default_store_dir()


def atomic_write_json(path: str, payload, indent: Optional[int] = None) -> None:
    """Serialize ``payload`` to ``path`` via a temp file + ``os.replace``.

    The write is atomic on POSIX, so concurrent readers (another campaign
    process, a resumed sweep, ``tail``-style monitoring) never observe a
    partially written file.  Used for both cache entries and campaign
    manifests.
    """
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=indent)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def fingerprint_qasm(qasm: str) -> str:
    """Digest of an already-serialized circuit (avoids re-serializing)."""
    return hashlib.sha256(qasm.encode("utf-8")).hexdigest()


def fingerprint_circuit(circuit: Circuit) -> str:
    """Deterministic digest of a circuit's gate-level content (name-independent:
    :func:`~repro.circuits.qasm.to_qasm` emits only the register and gates)."""
    return fingerprint_qasm(to_qasm(circuit))


def fingerprint_automaton(automaton: TreeAutomaton) -> str:
    """Deterministic digest of an (untagged) automaton, up to state renaming."""
    canonical = automaton.relabelled()
    lines = sorted(serialization.dumps(canonical).splitlines())
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


class ResultCache:
    """Directory-backed map from campaign cache keys to JSON result records."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    @staticmethod
    def key(circuit_fingerprint: str, precondition_fingerprint: str, mode: str) -> str:
        """The cache key of a job: digest of the determining triple."""
        material = f"{circuit_fingerprint}\n{precondition_fingerprint}\n{mode}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str, postcondition_fingerprint: Optional[str] = None) -> Optional[Dict]:
        """Fetch a record; ``None`` on miss, corruption, or post-condition mismatch."""
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict):
            return None
        if (
            postcondition_fingerprint is not None
            and record.get("postcondition_fingerprint") != postcondition_fingerprint
        ):
            return None
        return record

    def put(self, key: str, record: Dict) -> None:
        """Store a record atomically under ``key``."""
        atomic_write_json(self._path(key), record)

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory) if name.endswith(".json"))

    def clear(self) -> int:
        """Delete every cache entry; return how many were removed."""
        removed = 0
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed
