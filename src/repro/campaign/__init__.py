"""Parallel bug-hunting campaigns (the paper's Tables 2-3 workload at scale).

A *campaign* sweeps a whole family of mutated circuits against one
``{P} C {Q}`` specification: a benchmark family instance (from
:mod:`repro.benchgen`) is mutated many times (via
:mod:`repro.circuits.mutations`), every mutant is verified against the family's
pre-/post-condition automata, and the structured verdicts are streamed into a
JSON-lines report.  Jobs fan out over a :mod:`multiprocessing` worker pool and
a persistent on-disk cache keyed by ``(circuit fingerprint, precondition
fingerprint, mode)`` lets re-runs skip already-verified jobs.
"""

from .cache import ResultCache, default_cache_dir, fingerprint_automaton, fingerprint_circuit
from .plan import CampaignJob, MutationPlan
from .report import CampaignReportWriter, read_report, summarise_records
from .runner import Campaign, CampaignConfig, CampaignSummary, run_campaign

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignSummary",
    "run_campaign",
    "CampaignJob",
    "MutationPlan",
    "ResultCache",
    "default_cache_dir",
    "fingerprint_circuit",
    "fingerprint_automaton",
    "CampaignReportWriter",
    "read_report",
    "summarise_records",
]
