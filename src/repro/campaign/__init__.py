"""Parallel bug-hunting campaigns (the paper's Tables 2-3 workload at scale).

A *campaign* sweeps a whole family of mutated circuits against one
``{P} C {Q}`` specification: a benchmark family instance (from
:mod:`repro.benchgen`) is mutated many times (via
:mod:`repro.circuits.mutations`), every mutant is verified against the family's
pre-/post-condition automata, and the structured verdicts are streamed into a
JSON-lines report.  Jobs fan out over a :mod:`multiprocessing` worker pool and
a persistent on-disk cache keyed by ``(circuit fingerprint, precondition
fingerprint, mode)`` lets re-runs skip already-verified jobs.

A *matrix* campaign (:mod:`repro.campaign.scheduler`) lifts this one level up,
to the shape of the paper's evaluation tables: a declarative
:class:`MatrixSpec` (families × sizes × modes, from a TOML/JSON file or CLI
flags) expands into one campaign per cell, cells are scheduled cheapest-first
over a shared worker pool, and progress checkpoints into a resumable
:class:`~repro.campaign.manifest.CampaignManifest` so ``campaign --resume
<id>`` skips completed cells and re-queues interrupted ones.
"""

from .cache import (
    ResultCache,
    atomic_write_json,
    default_cache_dir,
    fingerprint_automaton,
    fingerprint_circuit,
    resolve_store_dir,
)
from .manifest import CampaignManifest, ManifestError, default_manifest_dir, list_campaign_ids
from .plan import CampaignJob, MutationPlan
from .report import CampaignReportWriter, format_cell_table, read_report, summarise_records
from .runner import Campaign, CampaignConfig, CampaignSummary, run_campaign
from .scheduler import (
    JoinRunResult,
    MatrixCell,
    MatrixRunResult,
    MatrixScheduler,
    MatrixSpec,
    estimate_cell_cost,
    parse_sizes,
)

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignSummary",
    "run_campaign",
    "CampaignJob",
    "MutationPlan",
    "ResultCache",
    "default_cache_dir",
    "resolve_store_dir",
    "fingerprint_circuit",
    "fingerprint_automaton",
    "atomic_write_json",
    "CampaignReportWriter",
    "read_report",
    "summarise_records",
    "format_cell_table",
    "CampaignManifest",
    "ManifestError",
    "default_manifest_dir",
    "list_campaign_ids",
    "MatrixCell",
    "MatrixSpec",
    "MatrixScheduler",
    "MatrixRunResult",
    "JoinRunResult",
    "estimate_cell_cost",
    "parse_sizes",
]
