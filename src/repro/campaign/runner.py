"""The campaign runner: fan verification jobs out over a worker pool.

The parent process materialises the job list (see :mod:`repro.campaign.plan`),
answers what it can from the persistent :class:`~repro.campaign.cache.ResultCache`,
and ships the remaining jobs to a :mod:`multiprocessing` pool.  Results are
streamed into the JSONL report in deterministic job order, and every fresh
verdict is written back to the cache so the next campaign over the same
circuits is nearly free.

Dispatch is crash-tolerant (see ``docs/robustness.md``): each miss is an
individual ``apply_async`` submission consumed in input order under a short
poll timeout; when the pool's worker pid-set changes — a worker was
SIGKILL'd, OOM-killed, or crashed by the ``worker.cell`` fault site — the
in-flight head-of-line job is re-submitted (bounded by
``CampaignConfig.max_job_retries``) and its ``retried`` count lands in the
JSONL record.  A job that exhausts its retries becomes a synthetic
``error`` record instead of aborting the sweep.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

try:  # the concurrent.futures pool raises this; ours may relay it
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover - very old pythons
    class BrokenProcessPool(RuntimeError):
        pass

from ..benchgen.families import build_family
from ..circuits.qasm import parse_qasm
from ..core.engine import AnalysisMode, GateRuntime, configure_gate_store, default_gate_runtime
from ..core.permutation import PermutationUnsupported
from ..core.verification import verify_triple
from ..faults import (
    FaultPlan,
    InjectedFault,
    active_injector,
    inject,
    install_fault_plan,
    install_injector,
)
from ..ta import serialization
from .cache import ResultCache, default_cache_dir, resolve_store_dir
from .plan import CampaignJob, MutationPlan
from .report import CampaignReportWriter, summarise_records

__all__ = [
    "CampaignConfig",
    "CampaignSummary",
    "Campaign",
    "run_campaign",
    "execute_job",
    "initialise_worker",
]


def initialise_worker(store_dir, fault_plan: Optional[FaultPlan] = None) -> None:
    """Pool-worker initializer: attach the shared cross-process automaton store.

    Passed as ``initializer`` when campaign pools are created, so every worker
    process reads and publishes gate-memo entries under the same directory —
    one worker's circuit prefix becomes every other worker's store hit.  The
    store attaches to the worker's process-default :class:`GateRuntime`
    (each pool worker is its own process, so nothing can leak into the
    parent's sessions).

    ``fault_plan`` (chaos testing, see ``docs/robustness.md``) arms the
    worker's process-global fault injector before any job runs, so injected
    store/worker faults follow the same deterministic schedule in every
    worker.
    """
    if fault_plan is not None:
        install_fault_plan(fault_plan)
    configure_gate_store(store_dir)


def _fault_snapshot(store) -> Dict[str, int]:
    """Current robustness counters of this process (injector + store)."""
    injector = active_injector()
    counters = store.counters if store is not None else {}
    return {
        "injected": injector.total_injected() if injector is not None else 0,
        "quarantined": int(counters.get("quarantined") or 0),
        "store_retries": int(counters.get("retries") or 0),
        # remote store-backend hits (shared fabric store); rides the same
        # worker -> record -> summary channel as the robustness counters
        "backend_hits": int(counters.get("backend_hits") or 0),
    }


def execute_job(job: CampaignJob, runtime: Optional[GateRuntime] = None) -> Dict:
    """Run one verification job; always returns a report record — the only
    exceptions that escape are *injected* ``worker.cell`` faults (and process
    death), which the dispatcher treats as a crashed worker and re-queues.

    Top-level (not a method) so worker pools can pickle it under every
    multiprocessing start method; pool workers call it without ``runtime``
    (using their process-default runtime), the in-process path passes the
    campaign's runtime explicitly.
    """
    # the worker.cell fault site: 'raise' propagates to the dispatcher (a
    # retryable crash), 'crash-process' is os._exit — a dead pool worker
    inject("worker.cell")
    if runtime is None:
        runtime = default_gate_runtime()
    # hold the store object: the engine detaches it from the runtime when it
    # degrades mid-job, and the counter deltas must survive that
    store = runtime.store
    faults_before = _fault_snapshot(store)
    start = time.perf_counter()
    record: Dict = {
        "job_id": job.job_id,
        "benchmark": job.benchmark,
        "mode": job.mode,
        "mutation_kind": job.mutation_kind,
        "mutation": job.mutation,
        "seed": job.seed,
        "num_qubits": job.num_qubits,
        "num_gates": job.num_gates,
        "circuit_fingerprint": job.circuit_fingerprint,
        "precondition_fingerprint": job.precondition_fingerprint,
        "postcondition_fingerprint": job.postcondition_fingerprint,
        "witness": None,
        "witness_kind": None,
        "error": None,
        "statistics": None,
        "comparison_seconds": None,
        "cached": False,
    }
    try:
        circuit = parse_qasm(job.circuit_qasm)
        precondition = serialization.loads(job.precondition_text)
        postcondition = serialization.loads(job.postcondition_text)
        result = verify_triple(
            precondition, circuit, postcondition, mode=job.mode, runtime=runtime
        )
        record["verdict"] = "holds" if result.holds else "violated"
        record["witness"] = None if result.witness is None else repr(result.witness)
        record["witness_kind"] = result.witness_kind
        record["statistics"] = result.statistics.to_dict()
        record["comparison_seconds"] = result.comparison_seconds
    except PermutationUnsupported as exc:
        # a mutation inserted a gate the permutation-only encoding cannot
        # express — the mutant is unverifiable under this mode, not a crash
        record["verdict"] = "unsupported"
        record["error"] = f"{type(exc).__name__}: {exc}"
    except InjectedFault:
        # injected infrastructure faults must reach the dispatcher's
        # crash/retry machinery, not be recorded as a mutant error
        raise
    except Exception as exc:  # noqa: BLE001 - a broken mutant must not kill the campaign
        record["verdict"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["elapsed_seconds"] = time.perf_counter() - start
    faults_after = _fault_snapshot(store)
    deltas = {key: faults_after[key] - faults_before[key] for key in faults_after}
    store_disabled = bool(store is not None and store.disabled)
    if any(deltas.values()) or store_disabled:
        record["faults"] = {**deltas, "store_disabled": store_disabled}
    else:
        record["faults"] = None
    return record


@dataclass
class CampaignConfig:
    """Everything needed to reproduce a campaign run."""

    family: str
    size: Optional[int] = None
    mutants: int = 100
    mutation_kinds: Sequence[str] = ("insert",)
    mode: str = AnalysisMode.HYBRID
    workers: int = 1
    seed: int = 0
    include_reference: bool = True
    report_path: str = "campaign_report.jsonl"
    #: ``None`` -> :func:`~repro.campaign.cache.default_cache_dir`; "" disables caching
    cache_dir: Optional[str] = None
    #: cross-process automaton store directory shared by all workers;
    #: ``None`` -> derived from ``cache_dir`` (see
    #: :func:`~repro.campaign.cache.resolve_store_dir`), "" disables the store
    store_dir: Optional[str] = None
    #: fuzz regression corpus replayed as a gate before the sweep
    #: (``repro.fuzz.corpus``); any replay failure taints the campaign
    corpus_dir: Optional[str] = None
    #: deterministic fault-injection plan armed in the parent and every pool
    #: worker for this run (chaos testing; see ``docs/robustness.md``)
    fault_plan: Optional[FaultPlan] = None
    #: times one job is re-queued after a dead worker / injected crash before
    #: it is recorded as a synthetic ``error``
    max_job_retries: int = 2

    def __post_init__(self) -> None:
        if self.mode not in AnalysisMode.ALL:
            raise ValueError(f"unknown analysis mode {self.mode!r}; expected one of {AnalysisMode.ALL}")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.max_job_retries < 0:
            raise ValueError("max_job_retries must be >= 0")


@dataclass
class CampaignSummary:
    """Campaign-level outcome (one row of the CLI summary table)."""

    benchmark: str
    mode: str
    workers: int
    jobs: int
    holds: int
    violated: int
    errors: int
    cache_hits: int
    analysis_seconds: float
    wall_seconds: float
    report_path: str
    #: mutants unverifiable under this mode (e.g. a non-permutation gate was
    #: inserted into a permutation-mode campaign) — not counted as errors
    unsupported: int = 0
    #: the *unmutated* circuit failed its spec — every mutant verdict is suspect
    reference_violated: bool = False
    #: per-phase engine wall-clock summed over freshly verified jobs
    #: (``tag``/``terms``/``bin``/``untag``/``permutation``/``reduce``/``store``)
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: cross-process automaton-store counters summed over freshly verified
    #: jobs (0 when the store is disabled)
    store_hits: int = 0
    store_misses: int = 0
    store_publishes: int = 0
    #: fuzz regression gate (0/0 when the campaign ran without a corpus)
    corpus_replayed: int = 0
    corpus_failures: int = 0
    #: robustness roll-up (all 0/False on a fault-free run, see
    #: ``docs/robustness.md``): faults injected by the active plan, job
    #: re-queues + store I/O retries, store entries quarantined, and whether
    #: any worker's store tier disabled itself
    faults_injected: int = 0
    retries: int = 0
    quarantined_entries: int = 0
    store_disabled: bool = False
    #: distributed-fabric counters (see ``docs/distributed.md``): remote
    #: store-backend hits by this cell's workers, plus — when the cell ran
    #: under the fabric queue — its claim generations, steals from stale
    #: leases, re-queues, and lease heartbeat renewals.  All 0 for a plain
    #: single-process campaign.
    backend_hits: int = 0
    cells_claimed: int = 0
    cells_stolen: int = 0
    cells_requeued: int = 0
    lease_renewals: int = 0

    def to_dict(self) -> Dict:
        return asdict(self)

    def apply_lease(self, lease) -> "CampaignSummary":
        """Stamp the fabric facts of the :class:`~repro.dist.QueueLease`
        this cell ran under; returns self for chaining."""
        self.cells_claimed = int(lease.token)
        self.cells_requeued = max(0, int(lease.token) - 1)
        self.cells_stolen = 1 if lease.stolen else 0
        self.lease_renewals = int(lease.renewals)
        return self


class Campaign:
    """Builds and executes the job fleet described by a :class:`CampaignConfig`."""

    def __init__(self, config: CampaignConfig):
        self.config = config
        self.benchmark = build_family(config.family, config.size)
        self.plan = MutationPlan(
            num_mutants=config.mutants,
            kinds=tuple(config.mutation_kinds),
            base_seed=config.seed,
            include_reference=config.include_reference,
        )

    def build_jobs(self) -> List[CampaignJob]:
        """The deterministic job list for this campaign."""
        return self.plan.jobs(self.benchmark, self.config.mode)

    def _open_cache(self) -> Optional[ResultCache]:
        cache_dir = self.config.cache_dir
        if cache_dir == "":
            return None
        return ResultCache(cache_dir or default_cache_dir())

    def run(
        self,
        pool=None,
        runtime: Optional[GateRuntime] = None,
        on_record=None,
    ) -> CampaignSummary:
        """Execute every job, stream the JSONL report, and return the summary.

        ``pool`` optionally supplies an already-running multiprocessing pool
        (the matrix scheduler shares one across all sweep cells instead of
        paying pool start-up per cell); when ``None``, the campaign creates
        its own pool sized by ``config.workers``.

        ``runtime`` optionally supplies the :class:`GateRuntime` in-process
        verification should use (a :class:`repro.api.Session` passes its own);
        when ``None``, the process-default runtime is used, matching the
        legacy behaviour.

        ``on_record`` is an optional callable invoked with each stamped
        ``campaign-job`` document right after it is written to the report —
        the live-progress hook behind SSE streaming and scheduler lease
        heartbeats.  It runs on the draining thread; exceptions propagate and
        abort the campaign.
        """
        config = self.config
        start = time.perf_counter()
        corpus_replayed = 0
        corpus_failures = 0
        if config.corpus_dir:
            # regression gate: replay the committed fuzz corpus before paying
            # for the sweep — a diverging entry means the engine regressed and
            # every mutant verdict below would be suspect.  Imported lazily:
            # repro.fuzz depends on this package (cache fingerprints).
            from ..fuzz.driver import replay_corpus

            replay = replay_corpus(config.corpus_dir, runtime=runtime)
            corpus_replayed = replay.replayed
            corpus_failures = replay.divergences
        jobs = self.build_jobs()
        cache = self._open_cache()
        # attach the shared automaton store in the parent too: the serial
        # (workers == 1) path verifies in-process, and fork-started pools
        # inherit the configuration even before their initializer runs; the
        # previous store is restored on exit so a campaign never leaks its
        # (possibly temporary) store into unrelated later analyses
        store_dir = resolve_store_dir(config.cache_dir, config.store_dir)
        if runtime is None:
            runtime = default_gate_runtime()
        previous_store = runtime.store
        runtime.configure_store(store_dir)
        # arm the configured fault plan for the scope of this run (the
        # in-process path and fork-started pools see it immediately; every
        # pool initializer re-installs it per worker); whatever injector was
        # active before — usually none — is restored on exit
        previous_injector = None
        injector_swapped = False
        if config.fault_plan is not None:
            previous_injector = install_injector(None)
            install_fault_plan(config.fault_plan)
            injector_swapped = True

        job_keys = {
            job.job_id: ResultCache.key(
                job.circuit_fingerprint, job.precondition_fingerprint, job.mode
            )
            for job in jobs
        }
        cached_records: Dict[str, Dict] = {}
        misses: List[CampaignJob] = []
        dispatched_keys = set()
        for job in jobs:
            record = None
            if cache is not None:
                record = cache.get(
                    job_keys[job.job_id], postcondition_fingerprint=job.postcondition_fingerprint
                )
            if record is not None:
                record = dict(record)
                record["cached"] = True
                cached_records[job.job_id] = self._restore_identity(record, job)
            elif job_keys[job.job_id] not in dispatched_keys:
                # mutation operators on small circuits collide often; verify
                # each distinct (circuit, precondition, mode) key only once
                dispatched_keys.add(job_keys[job.job_id])
                misses.append(job)

        records: List[Dict] = []
        try:
            with CampaignReportWriter(config.report_path) as report:

                def drain(results) -> None:
                    resolved: Dict[str, Dict] = {}
                    for job in jobs:
                        key = job_keys[job.job_id]
                        if job.job_id in cached_records:
                            record = cached_records[job.job_id]
                        elif key in resolved:
                            record = self._restore_identity(dict(resolved[key]), job)
                            record["deduplicated"] = True
                        else:
                            record = self._finish(cache, key, next(results))
                            resolved[key] = record
                        records.append(record)
                        stamped = report.write(record)
                        if on_record is not None:
                            on_record(stamped)

                if pool is not None and len(misses) > 1:
                    drain(self._pool_results(pool, misses))
                elif config.workers == 1 or len(misses) <= 1:
                    drain(self._inprocess_results(misses, runtime))
                else:
                    context = self._pool_context()
                    with context.Pool(
                        processes=min(config.workers, len(misses)),
                        initializer=initialise_worker,
                        initargs=(store_dir, config.fault_plan),
                    ) as own_pool:
                        drain(self._pool_results(own_pool, misses))
        finally:
            runtime.store = previous_store
            if injector_swapped:
                install_injector(previous_injector)
        wall = time.perf_counter() - start
        summary = summarise_records(records)
        # only an actual "violated" verdict taints the sweep: an errored
        # reference is already counted in `errors`, and an "unsupported" one
        # (wrong mode for the family) is not a specification violation
        reference_violated = any(
            record["mutation_kind"] == "reference" and record["verdict"] == "violated"
            for record in records
        )
        return CampaignSummary(
            benchmark=self.benchmark.name,
            mode=config.mode,
            workers=config.workers,
            jobs=summary["jobs"],
            holds=summary["holds"],
            violated=summary["violated"],
            unsupported=summary["unsupported"],
            errors=summary["errors"],
            cache_hits=summary["cache_hits"],
            analysis_seconds=summary["analysis_seconds"],
            wall_seconds=wall,
            report_path=config.report_path,
            reference_violated=reference_violated,
            phase_seconds=summary["phase_seconds"],
            store_hits=summary["store_hits"],
            store_misses=summary["store_misses"],
            store_publishes=summary["store_publishes"],
            corpus_replayed=corpus_replayed,
            corpus_failures=corpus_failures,
            faults_injected=summary["faults_injected"],
            retries=summary["retries"],
            quarantined_entries=summary["quarantined_entries"],
            store_disabled=summary["store_disabled"],
            backend_hits=summary["backend_hits"],
        )

    #: dead-worker poll interval of the pool dispatcher (seconds); short
    #: enough that a killed worker delays its cell by well under a second
    POLL_SECONDS = 0.25

    def _inprocess_results(self, misses: List[CampaignJob],
                           runtime: Optional[GateRuntime]) -> Iterator[Dict]:
        """Serial dispatch with the same bounded-retry contract as the pool.

        An injected ``worker.cell`` raise is retried up to
        ``max_job_retries`` times before degrading to a synthetic error
        record.  (A ``crash-process`` fault here kills the campaign itself —
        that kind only makes sense for pool workers.)
        """
        max_retries = self.config.max_job_retries
        for job in misses:
            retried = 0
            while True:
                try:
                    record = execute_job(job, runtime)
                    break
                except InjectedFault as fault:
                    retried += 1
                    if retried > max_retries:
                        record = self._crash_record(job, fault)
                        break
            record["retried"] = retried
            yield record

    def _pool_results(self, pool, misses: List[CampaignJob]) -> Iterator[Dict]:
        """Crash-tolerant pool dispatch: per-job ``apply_async``, consumed in
        input order under a poll timeout.

        ``imap`` would hang forever on a dead worker: the pool replaces the
        process but the tasks it had taken are silently lost.  Instead, each
        pending head-of-line job is waited on with a short timeout; when the
        wait times out *and* the pool's worker pid-set changed since the job
        was (re)submitted, the job is re-submitted (its earlier submission
        may be lost) — bounded by ``max_job_retries``, after which a
        synthetic error record is emitted and the sweep carries on.

        The comparison baseline is *per job*, captured just before its
        submission: two workers dying inside one poll window still differ
        from every affected job's own snapshot, where a single shared
        "last seen" set would swallow the second death and hang.
        """
        max_retries = self.config.max_job_retries
        submitted_pids = [self._worker_pids(pool)] * len(misses)
        pending = [pool.apply_async(execute_job, (job,)) for job in misses]
        retried = [0] * len(misses)

        def resubmit(index: int, job: CampaignJob) -> None:
            retried[index] += 1
            submitted_pids[index] = self._worker_pids(pool)
            pending[index] = pool.apply_async(execute_job, (job,))

        for index, job in enumerate(misses):
            while True:
                try:
                    record = pending[index].get(timeout=self.POLL_SECONDS)
                    break
                except multiprocessing.TimeoutError:
                    pids = self._worker_pids(pool)
                    if pids is None:
                        continue  # can't introspect; keep waiting
                    if submitted_pids[index] is None:
                        submitted_pids[index] = pids  # baseline recovered
                        continue
                    if pids == submitted_pids[index]:
                        continue  # just slow; keep waiting
                    # a worker died since this job went in — it may be lost
                    if retried[index] >= max_retries:
                        record = self._crash_record(
                            job, RuntimeError("pool worker died"))
                        break
                    resubmit(index, job)
                except (InjectedFault, BrokenProcessPool, OSError) as fault:
                    # raised inside the worker (injected crash) or by a
                    # broken pool: retryable infrastructure failure
                    if retried[index] >= max_retries:
                        record = self._crash_record(job, fault)
                        break
                    resubmit(index, job)
            record["retried"] = retried[index]
            yield record

    @staticmethod
    def _worker_pids(pool):
        """The pool's current worker pid-set; ``None`` when not introspectable."""
        processes = getattr(pool, "_pool", None)  # noqa: SLF001 - no public API
        if processes is None:
            return None
        try:
            return {process.pid for process in processes}
        except Exception:  # noqa: BLE001 - racing pool maintenance
            return None

    @staticmethod
    def _crash_record(job: CampaignJob, error: BaseException) -> Dict:
        """Synthetic ``error`` record for a job whose retries are exhausted."""
        return {
            "job_id": job.job_id,
            "benchmark": job.benchmark,
            "mode": job.mode,
            "mutation_kind": job.mutation_kind,
            "mutation": job.mutation,
            "seed": job.seed,
            "num_qubits": job.num_qubits,
            "num_gates": job.num_gates,
            "circuit_fingerprint": job.circuit_fingerprint,
            "precondition_fingerprint": job.precondition_fingerprint,
            "postcondition_fingerprint": job.postcondition_fingerprint,
            "verdict": "error",
            "witness": None,
            "witness_kind": None,
            "error": f"worker-crash: {type(error).__name__}: {error}",
            "statistics": None,
            "comparison_seconds": None,
            "elapsed_seconds": 0.0,
            "cached": False,
            "faults": None,
        }

    @staticmethod
    def _pool_context():
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platforms without fork
            return multiprocessing.get_context()

    @staticmethod
    def _restore_identity(record: Dict, job: CampaignJob) -> Dict:
        """Overwrite a reused record's identity fields with this job's.

        A cached or deduplicated verdict may come from a *different* job that
        happened to produce the same circuit (e.g. another seed), so the
        plan-specific fields must reflect the job being reported.
        """
        record["job_id"] = job.job_id
        record["benchmark"] = job.benchmark
        record["mutation_kind"] = job.mutation_kind
        record["mutation"] = job.mutation
        record["seed"] = job.seed
        # robustness counters belong to the run that paid them: a replayed
        # verdict must not re-count the original run's retries or faults
        record["retried"] = None
        record["faults"] = None
        return record

    @staticmethod
    def _finish(cache: Optional[ResultCache], key: str, record: Dict) -> Dict:
        """Cache a fresh verdict (errors are not cached, so they are retried)."""
        if cache is not None and record.get("verdict") != "error":
            cache.put(key, record)
        return record


def run_campaign(config: CampaignConfig) -> CampaignSummary:
    """Convenience wrapper: build and run a campaign in one call."""
    return Campaign(config).run()
