"""Symbolic update formulae for quantum gates (Table 1 of the paper).

Every supported gate is described by a :class:`UpdateFormula`: a signed sum of
:class:`Term` objects, optionally divided by ``sqrt(2)``.  A term is built from
the primitive tree operations of Section 4:

* **projection** ``T_{x_t}`` / ``T_{x̄_t}`` — fix the value of qubit ``t`` to
  1 / 0 before looking up the amplitude,
* **restriction** ``B_{x_t}·(...)`` / ``B_{x̄_t}·(...)`` — keep only the
  positions where qubit ``t`` is 1 / 0 (zero elsewhere),
* **scalar multiplication** by an algebraic constant,
* the whole sum may carry a global ``1/sqrt(2)`` factor.

The module provides the formulae themselves (:func:`formula_for`), a reference
implementation that applies a formula to an explicit
:class:`~repro.states.QuantumState` (:func:`apply_formula_to_state`), used both
by tests validating Theorem 4.1 and by the composition-based TA encoding
driver, which interprets the very same term structure over tree automata.

The concrete signs/scalars follow the standard gate matrices of Appendix A
(e.g. ``Y = [[0, -i], [i, 0]]``); they are cross-checked against the matrices
in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..algebraic import ONE, AlgebraicNumber
from ..circuits.gates import Gate
from ..states import QuantumState

__all__ = ["Term", "UpdateFormula", "formula_for", "apply_formula_to_state", "apply_gate_to_state"]

_OMEGA = AlgebraicNumber(0, 1, 0, 0, 0)
_OMEGA2 = AlgebraicNumber(0, 0, 1, 0, 0)
_NEG_OMEGA2 = AlgebraicNumber(0, 0, -1, 0, 0)
_OMEGA_DAG = _OMEGA.conjugate()


@dataclass(frozen=True)
class Term:
    """One summand of an update formula.

    Attributes:
        sign: ``+1`` or ``-1``.
        scalar: algebraic constant multiplying the term (default 1).
        restrictions: tuple of ``(qubit, bit)``; ``B_{x_q}`` when ``bit == 1``
            and ``B_{x̄_q}`` when ``bit == 0``.
        projection: ``None`` for the plain ``T``; otherwise ``(qubit, bit)``
            meaning ``T_{x_q}`` (``bit == 1``) or ``T_{x̄_q}`` (``bit == 0``).
    """

    sign: int = 1
    scalar: AlgebraicNumber = ONE
    restrictions: Tuple[Tuple[int, int], ...] = ()
    projection: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")


@dataclass(frozen=True)
class UpdateFormula:
    """A full gate update: ``(sum of terms) / sqrt(2)^sqrt2_divisions``."""

    gate_kind: str
    terms: Tuple[Term, ...]
    sqrt2_divisions: int = 0


def formula_for(gate: Gate) -> UpdateFormula:
    """Return the Table 1 update formula for a concrete gate application."""
    kind = gate.kind
    if kind in ("swap", "cswap"):
        raise ValueError(f"{kind} must be decomposed before analysis (Circuit.decomposed())")
    target = gate.target
    if kind == "x":
        terms = (
            Term(restrictions=((target, 0),), projection=(target, 1)),
            Term(restrictions=((target, 1),), projection=(target, 0)),
        )
        return UpdateFormula(kind, terms)
    if kind == "y":
        # Y = [[0, -w^2], [w^2, 0]]  (Appendix A)
        terms = (
            Term(scalar=_NEG_OMEGA2, restrictions=((target, 0),), projection=(target, 1)),
            Term(scalar=_OMEGA2, restrictions=((target, 1),), projection=(target, 0)),
        )
        return UpdateFormula(kind, terms)
    if kind == "z":
        terms = (
            Term(restrictions=((target, 0),)),
            Term(sign=-1, restrictions=((target, 1),)),
        )
        return UpdateFormula(kind, terms)
    if kind in ("s", "sdg", "t", "tdg"):
        scalar = {"s": _OMEGA2, "sdg": _NEG_OMEGA2, "t": _OMEGA, "tdg": _OMEGA_DAG}[kind]
        terms = (
            Term(restrictions=((target, 0),)),
            Term(scalar=scalar, restrictions=((target, 1),)),
        )
        return UpdateFormula(kind, terms)
    if kind == "h":
        terms = (
            Term(projection=(target, 0)),
            Term(restrictions=((target, 0),), projection=(target, 1)),
            Term(sign=-1, restrictions=((target, 1),), projection=(target, 1)),
        )
        return UpdateFormula(kind, terms, sqrt2_divisions=1)
    if kind == "rx":
        # Rx(pi/2) = 1/sqrt2 [[1, -w^2], [-w^2, 1]]
        terms = (
            Term(),
            Term(scalar=_NEG_OMEGA2, restrictions=((target, 0),), projection=(target, 1)),
            Term(scalar=_NEG_OMEGA2, restrictions=((target, 1),), projection=(target, 0)),
        )
        return UpdateFormula(kind, terms, sqrt2_divisions=1)
    if kind == "ry":
        # Ry(pi/2) = 1/sqrt2 [[1, -1], [1, 1]]
        terms = (
            Term(projection=(target, 0)),
            Term(restrictions=((target, 1),)),
            Term(sign=-1, restrictions=((target, 0),), projection=(target, 1)),
        )
        return UpdateFormula(kind, terms, sqrt2_divisions=1)
    if kind == "cx":
        control = gate.qubits[0]
        terms = (
            Term(restrictions=((control, 0),)),
            Term(restrictions=((control, 1), (target, 0)), projection=(target, 1)),
            Term(restrictions=((control, 1), (target, 1)), projection=(target, 0)),
        )
        return UpdateFormula(kind, terms)
    if kind == "cz":
        control = gate.qubits[0]
        terms = (
            Term(restrictions=((control, 0),)),
            Term(restrictions=((control, 1), (target, 0))),
            Term(sign=-1, restrictions=((control, 1), (target, 1))),
        )
        return UpdateFormula(kind, terms)
    if kind in ("cs", "csdg", "ct", "ctdg"):
        # Controlled phase gates diag(1, 1, 1, phase): scale the |11> branch only.
        control = gate.qubits[0]
        phase = {"cs": _OMEGA2, "csdg": _NEG_OMEGA2, "ct": _OMEGA, "ctdg": _OMEGA_DAG}[kind]
        terms = (
            Term(restrictions=((control, 0),)),
            Term(restrictions=((control, 1), (target, 0))),
            Term(scalar=phase, restrictions=((control, 1), (target, 1))),
        )
        return UpdateFormula(kind, terms)
    if kind == "ccx":
        control_a, control_b = gate.qubits[0], gate.qubits[1]
        terms = (
            Term(restrictions=((control_a, 0),)),
            Term(restrictions=((control_a, 1), (control_b, 0))),
            Term(restrictions=((control_a, 1), (control_b, 1), (target, 0)), projection=(target, 1)),
            Term(restrictions=((control_a, 1), (control_b, 1), (target, 1)), projection=(target, 0)),
        )
        return UpdateFormula(kind, terms)
    raise ValueError(f"no update formula for gate kind {kind!r}")


# --------------------------------------------------------------------------- reference semantics
def _apply_term_to_state(term: Term, state: QuantumState) -> QuantumState:
    """Evaluate a single term on an explicit quantum state."""
    result = QuantumState(state.num_qubits)
    # Output positions with a potentially non-zero value are the input support,
    # closed under flipping the projected qubit (a projection on qubit q makes
    # position `bits` read the input at `bits` with bit q overwritten).
    candidates = set()
    for bits, _amplitude in state.items():
        candidates.add(bits)
        if term.projection is not None:
            qubit, _value = term.projection
            flipped = list(bits)
            flipped[qubit] ^= 1
            candidates.add(tuple(flipped))
    for bits in candidates:
        if any(bits[qubit] != value for qubit, value in term.restrictions):
            continue
        if term.projection is None:
            source = bits
        else:
            qubit, value = term.projection
            source = list(bits)
            source[qubit] = value
            source = tuple(source)
        amplitude = state[source]
        if amplitude.is_zero():
            continue
        contribution = amplitude * term.scalar
        if term.sign < 0:
            contribution = -contribution
        result[bits] = result[bits] + contribution
    return result


def apply_formula_to_state(formula: UpdateFormula, state: QuantumState) -> QuantumState:
    """Apply an update formula to an explicit quantum state (reference semantics)."""
    total = QuantumState(state.num_qubits)
    for term in formula.terms:
        total = total + _apply_term_to_state(term, state)
    if formula.sqrt2_divisions:
        total = total.scaled(AlgebraicNumber(1, 0, 0, 0, formula.sqrt2_divisions))
    return total


def apply_gate_to_state(gate: Gate, state: QuantumState) -> QuantumState:
    """Apply a gate to an explicit state using its Table 1 update formula."""
    return apply_formula_to_state(formula_for(gate), state)
