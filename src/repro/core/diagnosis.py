"""Witness replay and bug localisation.

When a verification or non-equivalence check fails, the framework returns a
*witness*: a quantum state that is reachable but forbidden (or produced by one
circuit and not the other).  The paper validates such witnesses by feeding
them to SliQSim ("we fed the witness produced by AutoQ to SliQSim and
confirmed the two circuits are different"); this module automates that step
and goes one step further by localising the first gate at which two circuit
versions diverge.

* :func:`replay_witness` — confirm a witness on the exact simulator: find the
  basis input(s) of the pre-condition whose output matches the witness in one
  circuit but not the other.
* :func:`localise_divergence` — given one distinguishing basis input, binary
  search over the common gate prefix for the earliest position at which the
  two circuits' states stop agreeing (the natural "which gate did the
  optimizer break?" question).
* :class:`DiagnosisReport` — a small container that renders as a
  human-readable multi-line report.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..simulator.statevector import StateVectorSimulator
from ..states import QuantumState
from ..ta.automaton import TreeAutomaton

__all__ = [
    "DiagnosisReport",
    "replay_witness",
    "localise_divergence",
    "localise_mutation",
    "diagnose",
]


@dataclass
class DiagnosisReport:
    """Everything learned while replaying a witness against two circuits."""

    witness: QuantumState
    #: basis inputs from the pre-condition whose outputs differ between the circuits
    distinguishing_inputs: List[Tuple[int, ...]] = field(default_factory=list)
    #: earliest gate index (into the decomposed reference circuit) where states diverge
    first_divergent_gate: Optional[int] = None
    #: string rendering of that gate in the candidate circuit (if it exists there)
    divergent_gate: Optional[str] = None
    confirmed: bool = False

    def render(self) -> str:
        """A short multi-line report for CLI / example output."""
        lines = [f"witness: {self.witness}"]
        if not self.confirmed:
            lines.append("replay could NOT confirm the witness on the simulator")
            return "\n".join(lines)
        inputs = ", ".join("|" + "".join(map(str, bits)) + ">" for bits in self.distinguishing_inputs)
        lines.append(f"confirmed on the exact simulator; distinguishing input(s): {inputs}")
        if self.first_divergent_gate is not None:
            lines.append(
                f"first divergent gate position: {self.first_divergent_gate}"
                + (f" ({self.divergent_gate})" if self.divergent_gate else "")
            )
        return "\n".join(lines)


def replay_witness(
    reference: Circuit,
    candidate: Circuit,
    witness: QuantumState,
    precondition: TreeAutomaton,
    limit: int = 1024,
) -> List[Tuple[int, ...]]:
    """Find pre-condition basis inputs whose outputs distinguish the circuits via the witness.

    An input counts as distinguishing when exactly one of the two circuits
    maps it to the witness state.  Non-basis pre-condition states are replayed
    as-is.  Returns the (possibly empty) list of distinguishing basis inputs;
    an empty list means the witness could not be confirmed this way.
    """
    simulator = StateVectorSimulator()
    distinguishing: List[Tuple[int, ...]] = []
    for state in precondition.enumerate_states(limit=limit):
        reference_output = simulator.run(reference, state)
        candidate_output = simulator.run(candidate, state)
        matches_reference = reference_output == witness
        matches_candidate = candidate_output == witness
        if matches_reference != matches_candidate:
            if state.nonzero_count() == 1:
                bits, _amplitude = next(iter(state.items()))
                distinguishing.append(bits)
            else:
                distinguishing.append(tuple(-1 for _ in range(state.num_qubits)))
    return distinguishing


def localise_divergence(
    reference: Circuit, candidate: Circuit, basis_input
) -> Optional[int]:
    """Earliest gate position at which the two circuits' states diverge on one input.

    Both circuits are decomposed and executed gate by gate from the same basis
    input; the returned index is the first position ``i`` such that the states
    after ``i + 1`` gates differ (comparing exactly).  ``None`` means the
    common prefix never diverges (the difference lies purely in extra trailing
    gates of the longer circuit, or there is no difference at all).
    """
    reference_gates = list(reference.decomposed())
    candidate_gates = list(candidate.decomposed())
    simulator = StateVectorSimulator()
    state_reference = QuantumState.basis_state(reference.num_qubits, basis_input)
    state_candidate = QuantumState.basis_state(candidate.num_qubits, basis_input)
    common = min(len(reference_gates), len(candidate_gates))
    for position in range(common):
        state_reference = simulator.apply_gate(state_reference, reference_gates[position])
        state_candidate = simulator.apply_gate(state_candidate, candidate_gates[position])
        if state_reference != state_candidate:
            return position
    return None


def localise_mutation(
    reference: Circuit,
    candidate: Circuit,
    inputs: Optional[Iterable[Sequence[int]]] = None,
) -> Optional[int]:
    """Earliest gate index at which ``candidate``'s behaviour departs from ``reference``.

    The fuzz corpus stores a mutant next to its seed circuit; this bisects the
    pair without knowing the mutation: both circuits run in lockstep (their
    *undecomposed* gate lists, so indices match :class:`MutationRecord`
    positions) over every basis input — or the supplied ``inputs`` — and the
    earliest position where any input's states differ is returned.  When the
    common prefix agrees everywhere but trailing gates of the longer circuit
    change some input's state, the common length is returned (the first extra
    or missing gate).  ``None`` means no basis input distinguishes the
    circuits at all (the mutation is semantically invisible).
    """
    num_qubits = max(reference.num_qubits, candidate.num_qubits)
    if inputs is None:
        inputs = itertools.product((0, 1), repeat=num_qubits)
    simulator = StateVectorSimulator()
    reference_gates = list(reference.gates)
    candidate_gates = list(candidate.gates)
    common = min(len(reference_gates), len(candidate_gates))
    best: Optional[int] = None
    for bits in inputs:
        state_reference = QuantumState.basis_state(num_qubits, bits)
        state_candidate = QuantumState.basis_state(num_qubits, bits)
        diverged = False
        for position in range(common):
            if best is not None and position >= best:
                diverged = True  # cannot improve on the current best
                break
            state_reference = simulator.apply_gate(state_reference, reference_gates[position])
            state_candidate = simulator.apply_gate(state_candidate, candidate_gates[position])
            if state_reference != state_candidate:
                best = position
                diverged = True
                break
        if diverged:
            if best == 0:
                return 0
            continue
        # the common prefix agrees on this input; any difference must come
        # from the longer circuit's trailing gates
        if len(reference_gates) != len(candidate_gates):
            for position in range(common, max(len(reference_gates), len(candidate_gates))):
                if position < len(reference_gates):
                    state_reference = simulator.apply_gate(state_reference, reference_gates[position])
                if position < len(candidate_gates):
                    state_candidate = simulator.apply_gate(state_candidate, candidate_gates[position])
            if state_reference != state_candidate and (best is None or common < best):
                best = common
    return best


def diagnose(
    reference: Circuit,
    candidate: Circuit,
    witness: QuantumState,
    precondition: TreeAutomaton,
    limit: int = 1024,
) -> DiagnosisReport:
    """Full diagnosis: replay the witness, then localise the divergence.

    This is the automated version of the paper's manual confirmation step
    ("feed the witness to the simulator"), plus gate-level localisation that
    points at the injected/buggy gate in the common case of a single mutation.
    """
    report = DiagnosisReport(witness=witness)
    report.distinguishing_inputs = replay_witness(reference, candidate, witness, precondition, limit)
    report.confirmed = bool(report.distinguishing_inputs)
    if not report.confirmed:
        return report
    probe = next((bits for bits in report.distinguishing_inputs if all(b >= 0 for b in bits)), None)
    if probe is None:
        return report
    position = localise_divergence(reference, candidate, probe)
    report.first_divergent_gate = position
    if position is not None:
        candidate_gates = list(candidate.decomposed())
        if position < len(candidate_gates):
            report.divergent_gate = str(candidate_gates[position])
    return report
