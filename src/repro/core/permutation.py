"""Permutation-based encoding of quantum gates on tree automata (Section 5).

The gates X, Y, Z, S, S†, T, T†, CNOT, CZ and Toffoli permute the computational
basis states (possibly scaling amplitudes by a constant).  Their effect on a
tree automaton can therefore be computed *structurally*, without any product
construction:

* ``X_t`` swaps the left and right children of every ``x_t`` transition
  (Theorem 5.1),
* constant-scaling gates create one "primed" copy of the automaton whose leaf
  amplitudes are scaled, and redirect the ``x_t`` right children into that copy
  (Algorithm 1, Theorem 5.2),
* controlled gates apply the inner gate, prime the result, and redirect the
  right children of the control-qubit transitions into the primed copy
  (Algorithm 2, Theorem 5.3); this requires every control index to be smaller
  than the target index — otherwise the caller must fall back to the
  composition-based encoding.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algebraic import ONE, AlgebraicNumber
from ..circuits.gates import Gate
from ..ta.automaton import InternalTransition, TreeAutomaton, intern_transition, symbol_qubit
from .composition import _copy_subtrees

__all__ = ["PermutationUnsupported", "supports_permutation", "apply_permutation_gate"]

_OMEGA = AlgebraicNumber(0, 1, 0, 0, 0)
_OMEGA2 = AlgebraicNumber(0, 0, 1, 0, 0)
_NEG_ONE = AlgebraicNumber(-1, 0, 0, 0, 0)

#: gate kind -> (swap_children, scalar_for_branch0, scalar_for_branch1)
#: semantics: new_amp(b_t = 0) = scalar0 * old_amp(b_t = 1 if swap else 0), and
#:            new_amp(b_t = 1) = scalar1 * old_amp(b_t = 0 if swap else 1).
_SINGLE_QUBIT_RULES: Dict[str, Tuple[bool, AlgebraicNumber, AlgebraicNumber]] = {
    "x": (True, ONE, ONE),
    "y": (True, -_OMEGA2, _OMEGA2),
    "z": (False, ONE, _NEG_ONE),
    "s": (False, ONE, _OMEGA2),
    "sdg": (False, ONE, -_OMEGA2),
    "t": (False, ONE, _OMEGA),
    "tdg": (False, ONE, _OMEGA.conjugate()),
}


class PermutationUnsupported(ValueError):
    """Raised when a gate cannot be handled by the permutation-based encoding."""


def supports_permutation(gate: Gate) -> bool:
    """True iff :func:`apply_permutation_gate` can handle this gate application."""
    if gate.kind in _SINGLE_QUBIT_RULES:
        return True
    if gate.kind == "cx":
        return gate.qubits[0] < gate.qubits[1]
    if gate.kind in ("cz", "cs", "csdg", "ct", "ctdg"):
        return True  # diagonal controlled-phase gates are symmetric; roles can always be arranged
    if gate.kind == "ccx":
        return max(gate.qubits[0], gate.qubits[1]) < gate.qubits[2]
    return False


def apply_permutation_gate(automaton: TreeAutomaton, gate: Gate) -> TreeAutomaton:
    """Apply a permutation-style gate to a TA; raise :class:`PermutationUnsupported` otherwise."""
    kind = gate.kind
    if kind in _SINGLE_QUBIT_RULES:
        swap, scalar0, scalar1 = _SINGLE_QUBIT_RULES[kind]
        result = automaton
        if swap:
            result = _swap_children(result, gate.target)
        if not (scalar0 == ONE and scalar1 == ONE):
            result = _scale_branches(result, gate.target, scalar0, scalar1)
        return result
    if kind == "cx":
        control, target = gate.qubits
        if control >= target:
            raise PermutationUnsupported(f"CNOT with control {control} >= target {target}")
        return _apply_controlled(automaton, control, lambda a: apply_permutation_gate(a, Gate("x", (target,))))
    if kind in ("cz", "cs", "csdg", "ct", "ctdg"):
        control, target = sorted(gate.qubits)
        inner_kind = kind[1:]  # "z", "s", "sdg", "t" or "tdg"
        return _apply_controlled(
            automaton, control, lambda a: apply_permutation_gate(a, Gate(inner_kind, (target,)))
        )
    if kind == "ccx":
        control_a, control_b = sorted(gate.qubits[:2])
        target = gate.qubits[2]
        if control_b >= target:
            raise PermutationUnsupported(
                f"Toffoli with control {control_b} >= target {target}"
            )
        return _apply_controlled(
            automaton,
            control_a,
            lambda a: apply_permutation_gate(a, Gate("cx", (control_b, target))),
        )
    raise PermutationUnsupported(f"gate {kind!r} has no permutation-based encoding")


# --------------------------------------------------------------------------- helpers
def _swap_children(automaton: TreeAutomaton, target: int) -> TreeAutomaton:
    """The ``X_t`` construction: swap children of every ``x_target`` transition."""
    internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    for parent, transitions in automaton.internal.items():
        changed = False
        rewritten: List[InternalTransition] = []
        for entry in transitions:
            symbol, left, right = entry
            if symbol_qubit(symbol) == target and left != right:
                rewritten.append(intern_transition(symbol, right, left))
                changed = True
            else:
                rewritten.append(entry)
        internal[parent] = tuple(rewritten) if changed else transitions
    return TreeAutomaton._make(
        automaton.num_qubits, automaton.roots, internal, automaton.leaves
    )


def _redirect_right_children(
    automaton: TreeAutomaton, qubit: int, offset: int
) -> Tuple[Dict[int, Tuple[InternalTransition, ...]], List[int]]:
    """Rewrite every ``x_qubit`` transition to send its right child into the
    ``+offset`` copy; returns the new transition map and the redirected children."""
    internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    redirected: List[int] = []
    for parent, transitions in automaton.internal.items():
        changed = False
        rewritten: List[InternalTransition] = []
        for entry in transitions:
            symbol, left, right = entry
            if symbol_qubit(symbol) == qubit:
                rewritten.append(intern_transition(symbol, left, right + offset))
                redirected.append(right)
                changed = True
            else:
                rewritten.append(entry)
        internal[parent] = tuple(rewritten) if changed else transitions
    return internal, redirected


def _scale_branches(
    automaton: TreeAutomaton, target: int, scalar0: AlgebraicNumber, scalar1: AlgebraicNumber
) -> TreeAutomaton:
    """Algorithm 1's scaling step: multiply the ``b_target = 0`` branch amplitudes
    by ``scalar0`` and the ``b_target = 1`` branch amplitudes by ``scalar1``."""
    offset = automaton.next_free_state()
    # original part: leaves scaled by scalar0, x_target right children redirected
    internal, redirected = _redirect_right_children(automaton, target, offset)
    if scalar0 == ONE:
        leaves = dict(automaton.leaves)
    else:
        leaves = {state: amplitude * scalar0 for state, amplitude in automaton.leaves.items()}
    # primed copy of exactly the redirected subtrees, leaves scaled by scalar1
    _copy_subtrees(automaton, redirected, offset, internal, leaves, scalar1)
    return TreeAutomaton._make(automaton.num_qubits, automaton.roots, internal, leaves)


def _apply_controlled(automaton: TreeAutomaton, control: int, inner) -> TreeAutomaton:
    """Algorithm 2: apply ``inner`` under the ``b_control = 1`` branch only.

    ``inner`` is a function mapping a TA to the TA of the inner gate's output;
    it must keep the original state identifiers for the original states (all
    constructions in this module do).
    """
    inner_automaton = inner(automaton)
    offset = max(inner_automaton.next_free_state(), automaton.next_free_state())
    # original part with x_control right children redirected into the primed inner copy
    internal, redirected = _redirect_right_children(automaton, control, offset)
    leaves = dict(automaton.leaves)
    # primed copy of the inner-gate automaton, below the control level only
    _copy_subtrees(inner_automaton, redirected, offset, internal, leaves, ONE)
    return TreeAutomaton._make(automaton.num_qubits, automaton.roots, internal, leaves)
