"""Verification of ``{P} C {Q}`` triples (the paper's core use case).

Given a pre-condition TA ``P``, a circuit ``C`` and a post-condition TA ``Q``,
the framework computes the TA of all states reachable by running ``C`` on any
state of ``P`` and compares it against ``Q`` — either for language equality or
for inclusion.  When the check fails, a witness quantum state (reachable but
not allowed, or allowed but not reachable) is reported for diagnosis, exactly
like the tool described in the paper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..circuits.circuit import Circuit
from ..states import QuantumState
from ..ta import TreeAutomaton, check_equivalence, check_inclusion
from .engine import AnalysisMode, EngineStatistics, GateRuntime, run_circuit

__all__ = ["VerificationResult", "verify_triple"]


@dataclass
class VerificationResult:
    """Outcome of checking a ``{P} C {Q}`` triple."""

    holds: bool
    #: "equivalence" or "inclusion" depending on how Q was compared.
    check: str
    #: witness state demonstrating the violation (None when the triple holds)
    witness: Optional[QuantumState]
    #: "reachable-but-forbidden" (output \ Q) or "unreachable-but-required" (Q \ output)
    witness_kind: Optional[str]
    #: TA of the circuit's reachable output states
    output: TreeAutomaton
    #: analysis statistics from the engine
    statistics: EngineStatistics
    #: wall-clock seconds spent in the TA comparison (the paper's "=" column)
    comparison_seconds: float

    def __bool__(self) -> bool:
        return self.holds


def verify_triple(
    precondition: TreeAutomaton,
    circuit: Circuit,
    postcondition: TreeAutomaton,
    mode: str = AnalysisMode.HYBRID,
    inclusion_only: bool = False,
    reduce_after_each_gate: bool = True,
    runtime: Optional[GateRuntime] = None,
) -> VerificationResult:
    """Check the triple ``{precondition} circuit {postcondition}``.

    Args:
        precondition: TA of the allowed input states ``P``.
        circuit: the circuit ``C``.
        postcondition: TA of the allowed output states ``Q``.
        mode: engine setting (``hybrid`` or ``composition``).
        inclusion_only: check ``outputs ⊆ Q`` instead of ``outputs = Q``.
        reduce_after_each_gate: apply the lightweight reduction after each gate.
        runtime: gate memo/store to use (default: the process-wide runtime).
    """
    engine_result = run_circuit(
        circuit, precondition, mode=mode,
        reduce_after_each_gate=reduce_after_each_gate, runtime=runtime,
    )
    output = engine_result.output
    start = time.perf_counter()
    if inclusion_only:
        inclusion = check_inclusion(output, postcondition)
        elapsed = time.perf_counter() - start
        return VerificationResult(
            holds=inclusion.holds,
            check="inclusion",
            witness=inclusion.counterexample,
            witness_kind=None if inclusion.holds else "reachable-but-forbidden",
            output=output,
            statistics=engine_result.statistics,
            comparison_seconds=elapsed,
        )
    equivalence = check_equivalence(output, postcondition)
    elapsed = time.perf_counter() - start
    if equivalence.equivalent:
        witness_kind = None
    elif equivalence.side == "left-only":
        witness_kind = "reachable-but-forbidden"
    else:
        witness_kind = "unreachable-but-required"
    return VerificationResult(
        holds=equivalence.equivalent,
        check="equivalence",
        witness=equivalence.counterexample,
        witness_kind=witness_kind,
        output=output,
        statistics=engine_result.statistics,
        comparison_seconds=elapsed,
    )
