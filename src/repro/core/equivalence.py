"""Circuit (non-)equivalence checking and incremental bug hunting (Section 7.2).

Two circuits are run over the same input TA; if the resulting output TAs have
different languages, the circuits are certainly not equivalent and a witness
output state (reachable in one circuit but not the other) is produced.  If the
languages coincide the circuits may or may not be equivalent — this is the
quick *under-approximation* of non-equivalence the paper advertises.

:class:`IncrementalBugHunter` reproduces the search strategy used for Table 3:
start from a TA with a single basis state (no top-down nondeterminism) and
gradually add nondeterministic transitions (one per iteration, by freeing one
more qubit of the input), re-running the analysis each time until the bug is
caught or the iteration budget is exhausted.  Because the output-*set*
comparison can miss bugs once the input set becomes closed under the injected
permutation (the paper's own caveat), the hunter restarts from a fresh random
basis state when every qubit has been freed and budget remains.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..circuits.circuit import Circuit
from ..states import QuantumState
from ..ta import TreeAutomaton, basis_product_ta, check_equivalence
from .engine import AnalysisMode, GateRuntime, run_circuit

__all__ = ["NonEquivalenceResult", "check_circuit_equivalence", "BugHuntResult", "IncrementalBugHunter"]


@dataclass
class NonEquivalenceResult:
    """Outcome of the output-set comparison of two circuits over one input TA."""

    #: True when the output languages differ (circuits are certainly non-equivalent).
    non_equivalent: bool
    witness: Optional[QuantumState]
    #: which circuit reaches the witness: "first-only" or "second-only"
    witness_side: Optional[str]
    analysis_seconds: float
    comparison_seconds: float

    def __bool__(self) -> bool:
        return self.non_equivalent


def check_circuit_equivalence(
    first: Circuit,
    second: Circuit,
    inputs: TreeAutomaton,
    mode: str = AnalysisMode.HYBRID,
    runtime: Optional[GateRuntime] = None,
) -> NonEquivalenceResult:
    """Compare the output-state sets of two circuits for the given input TA."""
    if first.num_qubits != second.num_qubits:
        raise ValueError("circuits must have the same number of qubits")
    start = time.perf_counter()
    first_result = run_circuit(first, inputs, mode=mode, runtime=runtime)
    second_result = run_circuit(second, inputs, mode=mode, runtime=runtime)
    analysis_seconds = time.perf_counter() - start
    start = time.perf_counter()
    equivalence = check_equivalence(first_result.output, second_result.output)
    comparison_seconds = time.perf_counter() - start
    if equivalence.equivalent:
        return NonEquivalenceResult(False, None, None, analysis_seconds, comparison_seconds)
    side = "first-only" if equivalence.side == "left-only" else "second-only"
    return NonEquivalenceResult(True, equivalence.counterexample, side, analysis_seconds, comparison_seconds)


@dataclass
class BugHuntResult:
    """Outcome of an incremental bug hunt between a circuit and its mutated copy."""

    bug_found: bool
    iterations: int
    total_seconds: float
    witness: Optional[QuantumState] = None
    witness_side: Optional[str] = None
    #: number of basis states represented by the input TA that caught the bug
    final_input_size: int = 0
    per_iteration_seconds: List[float] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.bug_found


class IncrementalBugHunter:
    """The paper's bug-hunting strategy: grow the input TA until a bug shows up.

    The input TA always has the "product form": every qubit independently
    ranges over a set of classical values.  Iteration 1 uses a single basis
    state; each further iteration frees one more (randomly chosen) qubit,
    which adds one nondeterministic transition to the input TA.  When every
    qubit is free and the bug is still unseen, the hunt restarts from a new
    random basis state (different partial input sets can expose bugs that the
    full basis set hides, because the set comparison cannot see permutations
    of a closed set).
    """

    def __init__(
        self,
        mode: str = AnalysisMode.HYBRID,
        seed: Optional[int] = None,
        max_iterations: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
        runtime: Optional[GateRuntime] = None,
    ):
        self.mode = mode
        self.seed = seed
        self.max_iterations = max_iterations
        self.timeout_seconds = timeout_seconds
        self.runtime = runtime

    def hunt(
        self,
        reference: Circuit,
        candidate: Circuit,
        initial_basis: Optional[Sequence[int]] = None,
    ) -> BugHuntResult:
        """Search for an input set over which the two circuits' outputs differ."""
        if reference.num_qubits != candidate.num_qubits:
            raise ValueError("circuits must have the same number of qubits")
        num_qubits = reference.num_qubits
        rng = random.Random(self.seed)
        if initial_basis is None:
            initial_basis = [0] * num_qubits
        allowed = [{int(bit)} for bit in initial_basis]
        free_order = list(range(num_qubits))
        rng.shuffle(free_order)
        max_iterations = self.max_iterations or (num_qubits + 1)
        start = time.perf_counter()
        per_iteration: List[float] = []
        for iteration in range(1, max_iterations + 1):
            iteration_start = time.perf_counter()
            inputs = basis_product_ta(num_qubits, allowed)
            outcome = check_circuit_equivalence(
                reference, candidate, inputs, mode=self.mode, runtime=self.runtime
            )
            per_iteration.append(time.perf_counter() - iteration_start)
            elapsed = time.perf_counter() - start
            if outcome.non_equivalent:
                input_size = 1
                for values in allowed:
                    input_size *= len(values)
                return BugHuntResult(
                    bug_found=True,
                    iterations=iteration,
                    total_seconds=elapsed,
                    witness=outcome.witness,
                    witness_side=outcome.witness_side,
                    final_input_size=input_size,
                    per_iteration_seconds=per_iteration,
                )
            if self.timeout_seconds is not None and elapsed > self.timeout_seconds:
                break
            # free one more qubit (add one nondeterministic transition)
            for qubit in free_order:
                if len(allowed[qubit]) == 1:
                    allowed[qubit] = {0, 1}
                    break
            else:
                # every qubit already free: restart from a fresh random basis state
                allowed = [{rng.randint(0, 1)} for _ in range(num_qubits)]
                rng.shuffle(free_order)
        return BugHuntResult(
            bug_found=False,
            iterations=len(per_iteration),
            total_seconds=time.perf_counter() - start,
            per_iteration_seconds=per_iteration,
        )
