"""Tree tagging for the composition-based gate encoding (Section 6.1).

Tagging assigns every internal transition of a TA a unique number, embedded in
the transition's symbol.  After tagging, every non-single-valued tree in the
language has a unique tag (Lemma 6.3), which lets the later binary (product)
operation combine only trees that originate from the same source tree.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ta.automaton import (
    InternalTransition,
    TreeAutomaton,
    intern_transition,
    make_symbol,
    symbol_qubit,
)

__all__ = ["tag", "untag"]


def tag(automaton: TreeAutomaton) -> TreeAutomaton:
    """Return a tagged copy: every internal transition gets a unique tag number.

    The input must be untagged (plain symbols); leaf transitions are unchanged
    (Algorithm 3).
    """
    if automaton.is_tagged():
        raise ValueError("automaton is already tagged")
    counter = 0
    internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    for parent in sorted(automaton.internal):
        tagged_transitions: List[InternalTransition] = []
        for symbol, left, right in automaton.internal[parent]:
            counter += 1
            tagged_transitions.append(
                intern_transition(make_symbol(symbol_qubit(symbol), (counter,)), left, right)
            )
        internal[parent] = tuple(tagged_transitions)
    return TreeAutomaton._make(
        automaton.num_qubits, automaton.roots, internal, automaton.leaves
    )


def untag(automaton: TreeAutomaton) -> TreeAutomaton:
    """Strip all tags from internal symbols (the final step of a gate application)."""
    return automaton.untagged()
