"""The paper's primary contribution: TA-based gate transformers, engine, verification."""

from .composition import apply_composition_gate
from .engine import (
    AnalysisMode,
    CircuitEngine,
    EngineResult,
    EngineStatistics,
    GateRuntime,
    default_gate_runtime,
    reset_gate_runtime,
    run_circuit,
)
from .equivalence import (
    BugHuntResult,
    IncrementalBugHunter,
    NonEquivalenceResult,
    check_circuit_equivalence,
)
from .diagnosis import (
    DiagnosisReport,
    diagnose,
    localise_divergence,
    localise_mutation,
    replay_witness,
)
from .formulas import Term, UpdateFormula, apply_formula_to_state, apply_gate_to_state, formula_for
from .permutation import PermutationUnsupported, apply_permutation_gate, supports_permutation
from .queries import (
    amplitudes_at_basis,
    constant_output,
    measurement_probability_bounds,
    outcome_is_certain,
    possible_support,
    post_measurement_automaton,
)
from .specs import (
    basis_state_precondition,
    bell_pair_state,
    bell_postcondition,
    classical_product_condition,
    states_condition,
    zero_state_precondition,
)
from .tagging import tag, untag
from .verification import VerificationResult, verify_triple

__all__ = [
    "AnalysisMode",
    "CircuitEngine",
    "EngineResult",
    "EngineStatistics",
    "GateRuntime",
    "default_gate_runtime",
    "reset_gate_runtime",
    "run_circuit",
    "apply_composition_gate",
    "apply_permutation_gate",
    "supports_permutation",
    "PermutationUnsupported",
    "tag",
    "untag",
    "Term",
    "UpdateFormula",
    "formula_for",
    "apply_formula_to_state",
    "apply_gate_to_state",
    "verify_triple",
    "VerificationResult",
    "check_circuit_equivalence",
    "NonEquivalenceResult",
    "IncrementalBugHunter",
    "BugHuntResult",
    "zero_state_precondition",
    "basis_state_precondition",
    "classical_product_condition",
    "states_condition",
    "bell_pair_state",
    "bell_postcondition",
    "amplitudes_at_basis",
    "possible_support",
    "constant_output",
    "outcome_is_certain",
    "measurement_probability_bounds",
    "post_measurement_automaton",
    "DiagnosisReport",
    "diagnose",
    "replay_witness",
    "localise_divergence",
    "localise_mutation",
]
