"""Helpers for building pre- and post-condition tree automata.

These are thin, documented wrappers around :mod:`repro.ta.construction` that
express the specification idioms used in the paper's experiments (Appendix E):
single basis states, products of per-qubit classical constraints, explicit
finite sets of quantum states, and the Bell-state example from Fig. 1.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..algebraic import AlgebraicNumber, SQRT2_INV
from ..states import QuantumState
from ..ta import TreeAutomaton, basis_product_ta, basis_state_ta, from_quantum_states

__all__ = [
    "zero_state_precondition",
    "basis_state_precondition",
    "classical_product_condition",
    "states_condition",
    "bell_pair_state",
    "bell_postcondition",
]


def zero_state_precondition(num_qubits: int) -> TreeAutomaton:
    """TA for the single input ``|0...0>`` (the pre-condition of BV and Grover-Single)."""
    return basis_state_ta(num_qubits, (0,) * num_qubits)


def basis_state_precondition(num_qubits: int, basis) -> TreeAutomaton:
    """TA for a single, arbitrary computational basis state."""
    return basis_state_ta(num_qubits, basis)


def classical_product_condition(allowed: Sequence[Iterable[int]]) -> TreeAutomaton:
    """TA for all basis states where qubit ``i`` takes a value in ``allowed[i]``.

    This covers the pre-conditions of MCToffoli ("controls and target free,
    work qubits zero") and Grover-All ("oracle qubits free, everything else
    zero"), cf. Appendix E.
    """
    return basis_product_ta(len(allowed), allowed)


def states_condition(states: Iterable[QuantumState]) -> TreeAutomaton:
    """TA accepting exactly the given finite set of explicit quantum states."""
    return from_quantum_states(states)


def bell_pair_state() -> QuantumState:
    """The Bell state ``(|00> + |11>)/sqrt(2)`` from the paper's overview example."""
    return QuantumState(2, {(0, 0): SQRT2_INV, (1, 1): SQRT2_INV})


def bell_postcondition() -> TreeAutomaton:
    """Post-condition TA of Fig. 1b: the set containing only the Bell state."""
    return states_condition([bell_pair_state()])
