"""Analysis queries over tree automata representing sets of quantum states.

Once a circuit has been run over a pre-condition (producing a TA ``A`` of all
reachable output states), the verification question of the paper is
equivalence/inclusion against a post-condition.  Many useful diagnoses do not
need a second automaton though, and this module answers them directly on the
structure of ``A``:

* :func:`amplitudes_at_basis` — which amplitudes can the output assign to a
  given computational-basis position?
* :func:`possible_support` — which basis positions can carry a non-zero
  amplitude in *some* output state?
* :func:`constant_output` — does the circuit map every input of the
  pre-condition to one and the same output state (the paper's "finding
  constants" use case)?
* :func:`outcome_is_certain` / :func:`measurement_probability_bounds` —
  what can be said about measuring one qubit of the outputs?
* :func:`post_measurement_automaton` — the TA of (un-normalised)
  post-measurement states, which is exactly the paper's restriction
  operation applied outside of a gate formula.

All structural queries work on the reachable, productive part of the
automaton, so every reported value is realised by at least one accepted state.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Set, Tuple

from ..algebraic import AlgebraicNumber
from ..simulator.measurement import measurement_probability
from ..states import QuantumState
from ..ta.automaton import TreeAutomaton, symbol_qubit
from ..ta.determinization import count_language
from .composition import restrict

__all__ = [
    "amplitudes_at_basis",
    "possible_support",
    "constant_output",
    "outcome_is_certain",
    "measurement_probability_bounds",
    "post_measurement_automaton",
]


def amplitudes_at_basis(automaton: TreeAutomaton, basis) -> FrozenSet[AlgebraicNumber]:
    """All amplitudes that accepted states can assign to the given basis position.

    The query walks the automaton top-down along the path selected by the
    basis bits; every leaf state reachable on that path (through useful
    states) belongs to at least one accepted tree, so the returned set is
    exactly ``{T(basis) | T ∈ L(A)}``.
    """
    automaton = automaton.remove_useless()
    bits = QuantumState._normalise_basis(basis, automaton.num_qubits)
    frontier: Set[int] = set(automaton.roots)
    for depth, bit in enumerate(bits):
        next_frontier: Set[int] = set()
        for state in frontier:
            for symbol, left, right in automaton.internal.get(state, ()):
                if symbol_qubit(symbol) != depth:
                    continue
                next_frontier.add(right if bit else left)
        frontier = next_frontier
    return frozenset(automaton.leaves[state] for state in frontier if state in automaton.leaves)


def possible_support(automaton: TreeAutomaton, limit: Optional[int] = 4096) -> FrozenSet[Tuple[int, ...]]:
    """Basis positions that carry a non-zero amplitude in at least one accepted state.

    The traversal only descends into subtrees that can produce a non-zero
    leaf, so sparse languages (e.g. the output of Bernstein–Vazirani over all
    hidden strings) are handled without touching all ``2^n`` positions.
    ``limit`` bounds the number of returned positions; exceeding it raises
    :class:`ValueError`.
    """
    automaton = automaton.remove_useless()

    # states that can reach a non-zero leaf
    fruitful: Set[int] = {
        state for state, amplitude in automaton.leaves.items() if not amplitude.is_zero()
    }
    changed = True
    while changed:
        changed = False
        for parent, transitions in automaton.internal.items():
            if parent in fruitful:
                continue
            for _symbol, left, right in transitions:
                if left in fruitful or right in fruitful:
                    fruitful.add(parent)
                    changed = True
                    break

    support: Set[Tuple[int, ...]] = set()
    stack: List[Tuple[int, Tuple[int, ...]]] = [
        (root, ()) for root in automaton.roots if root in fruitful
    ]
    seen: Set[Tuple[int, Tuple[int, ...]]] = set()
    while stack:
        state, prefix = stack.pop()
        if (state, prefix) in seen:
            continue
        seen.add((state, prefix))
        if state in automaton.leaves:
            if not automaton.leaves[state].is_zero():
                support.add(prefix)
                if limit is not None and len(support) > limit:
                    raise ValueError(f"support exceeds the enumeration limit {limit}")
            continue
        for _symbol, left, right in automaton.internal.get(state, ()):
            if left in fruitful:
                stack.append((left, prefix + (0,)))
            if right in fruitful:
                stack.append((right, prefix + (1,)))
    return frozenset(support)


def constant_output(automaton: TreeAutomaton) -> Optional[QuantumState]:
    """The unique accepted state if the language is a singleton, else ``None``.

    This answers the paper's "finding constants" question: a circuit is
    constant over the pre-condition iff the TA of outputs accepts exactly one
    quantum state.
    """
    if count_language(automaton) != 1:
        return None
    states = automaton.enumerate_states(limit=1)
    return states[0] if states else None


def outcome_is_certain(automaton: TreeAutomaton, qubit: int, value: int) -> bool:
    """True iff measuring ``qubit`` yields ``value`` with certainty for every accepted state.

    Certainty is a structural property: every leaf reachable through the
    complementary branch of ``qubit`` must carry the zero amplitude.  (For
    normalised states this is equivalent to the measurement probability being
    exactly 1.)
    """
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    automaton = automaton.remove_useless()
    frontier: Set[int] = set(automaton.roots)
    for depth in range(qubit + 1):
        next_frontier: Set[int] = set()
        for state in frontier:
            for symbol, left, right in automaton.internal.get(state, ()):
                if symbol_qubit(symbol) != depth:
                    continue
                if depth == qubit:
                    # descend into the branch of the *other* outcome
                    next_frontier.add(left if value else right)
                else:
                    next_frontier.add(left)
                    next_frontier.add(right)
        frontier = next_frontier
    # every leaf reachable below the complementary branch must be zero
    stack = list(frontier)
    visited: Set[int] = set()
    while stack:
        state = stack.pop()
        if state in visited:
            continue
        visited.add(state)
        if state in automaton.leaves:
            if not automaton.leaves[state].is_zero():
                return False
            continue
        for _symbol, left, right in automaton.internal.get(state, ()):
            stack.append(left)
            stack.append(right)
    return True


def measurement_probability_bounds(
    automaton: TreeAutomaton, qubit: int, value: int, limit: int = 256
) -> Tuple[float, float]:
    """Minimum and maximum probability of measuring ``value`` on ``qubit`` over all accepted states.

    The accepted states are enumerated (up to ``limit``) and the exact
    per-state probabilities compared; use :func:`outcome_is_certain` for the
    common certainty question, which does not enumerate.
    """
    states = automaton.enumerate_states(limit=limit)
    if not states:
        raise ValueError("the automaton accepts no states")
    probabilities = [measurement_probability(state, qubit, value) for state in states]
    return (min(probabilities), max(probabilities))


def post_measurement_automaton(
    automaton: TreeAutomaton, qubit: int, outcome: int
) -> TreeAutomaton:
    """TA of the (un-normalised) post-measurement states after observing ``outcome`` on ``qubit``.

    This is the restriction operation of the composition-based encoding
    (Algorithm 4) applied as a standalone transformer: amplitudes of the other
    outcome are zeroed and the rest are kept verbatim.  Renormalisation by
    ``1/sqrt(prob)`` is generally not expressible per-state inside one TA, so
    the result is left un-normalised (exactly like the paper's treatment of
    measurement in Section 2.1 before normalisation).
    """
    if outcome not in (0, 1):
        raise ValueError("outcome must be 0 or 1")
    return restrict(automaton, qubit, outcome).reduce()
