"""Circuit execution engine over tree automata.

The engine runs a whole circuit over a pre-condition TA, producing the TA of
all reachable output states.  It supports the two settings evaluated in the
paper (Section 7):

* ``hybrid`` — permutation-based encoding for the gates it supports, falling
  back to the composition-based encoding for the others (H, Rx, Ry and
  controlled gates whose control indices are not below the target),
* ``composition`` — composition-based encoding for every gate,
* ``permutation`` — permutation-based only (raises on unsupported gates);
  mainly useful for tests and ablations.

After each gate the engine optionally applies the lightweight reduction
(:meth:`TreeAutomaton.reduce`), mirroring the paper's use of simulation-based
reduction to keep the automata small.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..ta import store as ta_store
from ..ta.automaton import TreeAutomaton
from ..ta.kernel import active_backend_name
from .composition import apply_composition_gate
from .permutation import PermutationUnsupported, apply_permutation_gate, supports_permutation

__all__ = [
    "AnalysisMode",
    "EngineStatistics",
    "EngineResult",
    "GateRuntime",
    "CircuitEngine",
    "run_circuit",
    "default_gate_runtime",
    "reset_gate_runtime",
    "gate_cache_stats",
    "clear_gate_cache",
    "configure_gate_store",
    "active_gate_store",
    "set_gate_store",
]

#: safety valve mirroring the intern tables: stop memoising beyond this size.
_MAX_GATE_CACHE = 16384


class GateRuntime:
    """Mutable per-session runtime of the gate-application pipeline.

    Owns the two cache tiers a gate application consults:

    * the **in-process memo** — gate application is a pure function of
      (automaton structure, gate, mode), and repetitive circuits (Grover
      iterations, QFT layers, campaign sweeps over mutants of one reference)
      present the same pair over and over, so the memo keys the *reduced*
      result on the automaton's structure key and a repeated application
      costs one O(size) fingerprint instead of the whole
      tag/terms/bin/reduce pipeline;
    * the optional **cross-process store** (:mod:`repro.ta.store`) — a
      content-addressed on-disk tier shared by every process pointed at the
      same directory, keyed by the renaming-invariant compact-form digest so
      campaign pool workers and entirely separate runs agree on the keys.

    Sessions (:class:`repro.api.Session`) each own a private instance, so
    attaching a store or warming the memo in one session can never leak into
    another; the legacy free functions (:func:`run_circuit` with no runtime,
    :func:`configure_gate_store`, …) operate on one process-wide default
    instance (:func:`default_gate_runtime`).
    """

    __slots__ = ("memo", "memo_hits", "memo_misses", "store", "max_memo_entries")

    def __init__(
        self,
        store: Optional["ta_store.AutomatonStore"] = None,
        max_memo_entries: int = _MAX_GATE_CACHE,
    ):
        self.memo: Dict[tuple, Tuple[TreeAutomaton, bool]] = {}
        self.memo_hits = 0
        self.memo_misses = 0
        self.store = store
        self.max_memo_entries = max_memo_entries

    def configure_store(self, directory: Optional[str]) -> Optional["ta_store.AutomatonStore"]:
        """Attach the cross-process store at ``directory`` (detach with ``None``).

        An unusable directory degrades to "no store" — the store is an
        optimisation and must never break a verification run (see
        :func:`repro.ta.store.open_store`).
        """
        self.store = ta_store.open_store(directory)
        return self.store

    def memo_stats(self) -> Dict[str, int]:
        """Hit/miss/size counters of the in-process gate-application memo."""
        return {"size": len(self.memo), "hits": self.memo_hits, "misses": self.memo_misses}

    def clear_memo(self) -> None:
        """Drop the gate-application memo and reset its counters."""
        self.memo.clear()
        self.memo_hits = 0
        self.memo_misses = 0

    def stats_snapshot(self) -> Dict[str, object]:
        """One JSON-ready view of both cache tiers, cheap enough to take per
        metrics scrape: the memo counters plus the attached store's session
        counters (no disk walk — ``AutomatonStore.stats()`` does that).
        ``store`` is ``None`` when no cross-process store is attached."""
        store = self.store
        return {
            "memo": self.memo_stats(),
            "store": None if store is None else store.counter_snapshot(),
        }

    def reset(self) -> None:
        """Back to a pristine runtime: empty memo, zero counters, no store."""
        self.clear_memo()
        self.store = None


#: the process-wide runtime behind the legacy free-function API; sessions use
#: their own private :class:`GateRuntime` and never touch this one
_DEFAULT_RUNTIME = GateRuntime()


def default_gate_runtime() -> GateRuntime:
    """The process-wide runtime used when no explicit one is passed."""
    return _DEFAULT_RUNTIME


def reset_gate_runtime() -> None:
    """Reset the default runtime: clear the memo and detach any store.

    Test suites call this (from an autouse fixture) so that test ordering can
    never change memo or store hit counters.
    """
    _DEFAULT_RUNTIME.reset()


# ------------------------------------------------------- deprecated shims
# The functions below predate GateRuntime and operate on the process-wide
# default instance.  They are kept for back-compatibility (campaign pool
# workers also use them to configure their per-process runtime); new code
# should hold a GateRuntime — usually through repro.api.Session — instead.


def gate_cache_stats() -> Dict[str, int]:
    """Deprecated: counters of the *default* runtime's gate memo.

    Prefer ``session.runtime.memo_stats()``.
    """
    return _DEFAULT_RUNTIME.memo_stats()


def clear_gate_cache() -> None:
    """Deprecated: drop the *default* runtime's gate memo.

    Prefer ``session.runtime.clear_memo()`` (or :func:`reset_gate_runtime`).
    """
    _DEFAULT_RUNTIME.clear_memo()


def configure_gate_store(directory: Optional[str]) -> Optional["ta_store.AutomatonStore"]:
    """Deprecated: attach (or detach, with ``None``) the *default* runtime's store.

    Prefer ``Session(store_dir=...)`` / ``session.runtime.configure_store``.
    """
    return _DEFAULT_RUNTIME.configure_store(directory)


def active_gate_store() -> Optional["ta_store.AutomatonStore"]:
    """Deprecated: the *default* runtime's store (``None`` when detached)."""
    return _DEFAULT_RUNTIME.store


def set_gate_store(
    store: Optional["ta_store.AutomatonStore"],
) -> Optional["ta_store.AutomatonStore"]:
    """Deprecated: install an already-open store on the *default* runtime.

    Lets a caller that temporarily attached a store restore whatever was
    active before, without re-opening directories.
    """
    _DEFAULT_RUNTIME.store = store
    return store


def _gate_signature(gate: Gate) -> str:
    """Stable textual identity of a gate for cross-process store keys."""
    return f"{gate.kind}:{','.join(str(qubit) for qubit in gate.qubits)}"


class AnalysisMode:
    """Symbolic names for the engine settings (the paper's Hybrid / Composition)."""

    HYBRID = "hybrid"
    COMPOSITION = "composition"
    PERMUTATION = "permutation"

    ALL = (HYBRID, COMPOSITION, PERMUTATION)


@dataclass
class EngineStatistics:
    """Aggregate statistics of one circuit analysis."""

    gates_total: int = 0
    gates_permutation: int = 0
    gates_composition: int = 0
    max_states: int = 0
    max_transitions: int = 0
    analysis_seconds: float = 0.0
    per_gate_seconds: List[float] = field(default_factory=list)
    #: wall-clock per pipeline phase: ``tag`` / ``terms`` / ``bin`` / ``untag``
    #: (composition), ``permutation`` (permutation encoding), ``reduce`` (the
    #: post-gate reduction), ``store`` (on-disk store lookup/publish I/O);
    #: gate-memo hits skip every phase and record nothing
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: cross-process store counters for this analysis (all 0 with no store):
    #: gate applications served from the on-disk store, missed in it, and
    #: freshly computed results published back to it
    store_hits: int = 0
    store_misses: int = 0
    store_publishes: int = 0
    #: True when the store tier degraded itself during (or before) this
    #: analysis — too many consecutive I/O faults — and the engine detached
    #: it and kept computing without the tier (see ``docs/robustness.md``)
    store_disabled: bool = False
    #: name of the TA kernel backend the analysis ran under ("reference" /
    #: "numpy"; see ``docs/kernel.md``); "" on instances that predate the
    #: pluggable kernel (restored from old JSON)
    kernel_backend: str = ""
    #: derived per-gate aggregates restored by :meth:`from_dict`; a restored
    #: instance has no raw ``per_gate_seconds`` samples, only these
    #: JSON-visible numbers, and :meth:`to_dict` re-emits them unchanged
    _restored_timings: Dict[str, float] = field(default_factory=dict, repr=False, compare=False)

    def record(self, automaton: TreeAutomaton, elapsed: float, used_permutation: bool) -> None:
        self.gates_total += 1
        if used_permutation:
            self.gates_permutation += 1
        else:
            self.gates_composition += 1
        self.max_states = max(self.max_states, automaton.num_states)
        self.max_transitions = max(self.max_transitions, automaton.num_transitions)
        self.per_gate_seconds.append(elapsed)
        self.analysis_seconds += elapsed

    def record_phase(self, name: str, seconds: float) -> None:
        """Accumulate per-phase wall-clock (tag/terms/bin/untag/permutation/reduce)."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    # -------------------------------------------------------- timing accessors
    @property
    def total_gate_seconds(self) -> float:
        """Sum of the per-gate wall-clock times (== analysis time spent in gates)."""
        return sum(self.per_gate_seconds)

    @property
    def mean_gate_seconds(self) -> float:
        """Average per-gate time (0.0 for an empty circuit)."""
        if not self.per_gate_seconds:
            return 0.0
        return self.total_gate_seconds / len(self.per_gate_seconds)

    def percentile_gate_seconds(self, percentile: float) -> float:
        """Per-gate time at the given percentile in ``[0, 100]`` (nearest-rank).

        ``percentile_gate_seconds(50)`` is the median gate time and
        ``percentile_gate_seconds(100)`` the slowest gate; 0.0 for an empty
        circuit.  Raises :class:`ValueError` outside the ``[0, 100]`` range.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        if not self.per_gate_seconds:
            return 0.0
        ordered = sorted(self.per_gate_seconds)
        # multiply before dividing: percentile/100*n overshoots exact-integer
        # ranks by one ulp (e.g. 55/100*100 == 55.00000000000001)
        rank = max(0, min(len(ordered) - 1, int(math.ceil(percentile * len(ordered) / 100.0)) - 1))
        return ordered[rank]

    #: the keys of :meth:`to_dict` derived from the raw per-gate samples (the
    #: samples themselves are not JSON-visible, so round-trips preserve these)
    DERIVED_TIMING_KEYS = (
        "total_gate_seconds",
        "mean_gate_seconds",
        "p50_gate_seconds",
        "p90_gate_seconds",
        "max_gate_seconds",
    )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary used by the campaign report (no raw sample list)."""
        payload = {
            "gates_total": self.gates_total,
            "gates_permutation": self.gates_permutation,
            "gates_composition": self.gates_composition,
            "max_states": self.max_states,
            "max_transitions": self.max_transitions,
            "analysis_seconds": self.analysis_seconds,
            "total_gate_seconds": self.total_gate_seconds,
            "mean_gate_seconds": self.mean_gate_seconds,
            "p50_gate_seconds": self.percentile_gate_seconds(50),
            "p90_gate_seconds": self.percentile_gate_seconds(90),
            "max_gate_seconds": self.percentile_gate_seconds(100),
            "phase_seconds": dict(self.phase_seconds),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_publishes": self.store_publishes,
            "store_disabled": self.store_disabled,
            "kernel_backend": self.kernel_backend,
        }
        if not self.per_gate_seconds and self._restored_timings:
            payload.update(self._restored_timings)
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EngineStatistics":
        """Rebuild statistics from :meth:`to_dict` output (result round-trips).

        The raw ``per_gate_seconds`` sample list is not part of the JSON form,
        so the derived aggregates (total/mean/p50/p90/max gate seconds) are
        restored verbatim instead of recomputed —
        ``EngineStatistics.from_dict(d).to_dict() == d`` for every ``d``
        produced by :meth:`to_dict`.
        """
        statistics = cls(
            gates_total=int(data.get("gates_total") or 0),
            gates_permutation=int(data.get("gates_permutation") or 0),
            gates_composition=int(data.get("gates_composition") or 0),
            max_states=int(data.get("max_states") or 0),
            max_transitions=int(data.get("max_transitions") or 0),
            analysis_seconds=float(data.get("analysis_seconds") or 0.0),
            phase_seconds=dict(data.get("phase_seconds") or {}),
            store_hits=int(data.get("store_hits") or 0),
            store_misses=int(data.get("store_misses") or 0),
            store_publishes=int(data.get("store_publishes") or 0),
            store_disabled=bool(data.get("store_disabled") or False),
            kernel_backend=str(data.get("kernel_backend") or ""),
        )
        statistics._restored_timings = {
            key: float(data[key]) for key in cls.DERIVED_TIMING_KEYS if key in data
        }
        return statistics


@dataclass
class EngineResult:
    """Result of running a circuit over a pre-condition TA."""

    output: TreeAutomaton
    statistics: EngineStatistics
    mode: str


class CircuitEngine:
    """Applies circuits to tree automata using the paper's gate transformers.

    ``runtime`` supplies the gate memo and optional cross-process store; when
    omitted, the process-wide default runtime is used (the pre-Session
    behaviour).  Sessions pass their own private runtime so configuration and
    cache warmth never leak between sessions.
    """

    def __init__(
        self,
        mode: str = AnalysisMode.HYBRID,
        reduce_after_each_gate: bool = True,
        runtime: Optional[GateRuntime] = None,
    ):
        if mode not in AnalysisMode.ALL:
            raise ValueError(f"unknown analysis mode {mode!r}; expected one of {AnalysisMode.ALL}")
        self.mode = mode
        self.reduce_after_each_gate = reduce_after_each_gate
        self.runtime = runtime if runtime is not None else _DEFAULT_RUNTIME

    # ----------------------------------------------------------------- gates
    def apply_gate(
        self, automaton: TreeAutomaton, gate: Gate, statistics: Optional[EngineStatistics] = None
    ) -> TreeAutomaton:
        """Apply one gate, returning the (optionally reduced) successor TA."""
        result, _used_permutation = self._apply_gate_cached(automaton, gate, statistics)
        return result

    def _apply_gate_cached(
        self, automaton: TreeAutomaton, gate: Gate, statistics: Optional[EngineStatistics]
    ):
        """Two-tier memoised gate application: process memo, then on-disk store.

        Lookup order is process memo -> cross-process store -> compute, and a
        fresh result is published to both tiers, so a campaign worker that
        computes a gate application once makes it a fingerprint lookup for
        every other worker (and every later run) sharing the store.
        """
        runtime = self.runtime
        key = (automaton.structure_key(), gate, self.mode, self.reduce_after_each_gate)
        cached = runtime.memo.get(key)
        if cached is not None:
            runtime.memo_hits += 1
            return cached
        runtime.memo_misses += 1

        store = runtime.store
        if store is not None and store.disabled:
            # graceful degradation: the store crossed its consecutive-fault
            # threshold — detach it for the session and keep computing
            store = self._detach_disabled_store(statistics)
        store_key = None
        if store is not None:
            start = time.perf_counter()
            store_key = store.gate_key(
                ta_store.fingerprint(automaton), _gate_signature(gate),
                self.mode, self.reduce_after_each_gate,
            )
            entry = store.get(store_key)
            if statistics is not None:
                statistics.record_phase("store", time.perf_counter() - start)
            if store.disabled:
                store = self._detach_disabled_store(statistics)
                store_key = None
            if entry is not None:
                result = entry.automaton
                if entry.meta.get("reduced"):
                    result._reduced = True  # noqa: SLF001 - producer reduced it already
                used_permutation = bool(entry.meta.get("used_permutation"))
                if statistics is not None:
                    statistics.store_hits += 1
                if len(runtime.memo) < runtime.max_memo_entries:
                    runtime.memo[key] = (result, used_permutation)
                return result, used_permutation
            if statistics is not None:
                statistics.store_misses += 1

        result, used_permutation = self._apply_gate_raw(automaton, gate, statistics)
        if self.reduce_after_each_gate:
            start = time.perf_counter()
            result = result.reduce()
            if statistics is not None:
                statistics.record_phase("reduce", time.perf_counter() - start)
        if len(runtime.memo) < runtime.max_memo_entries:
            runtime.memo[key] = (result, used_permutation)
        if store is not None and store_key is not None:
            start = time.perf_counter()
            published = store.put(store_key, result, {
                "used_permutation": used_permutation,
                "reduced": self.reduce_after_each_gate,
            })
            if statistics is not None:
                statistics.record_phase("store", time.perf_counter() - start)
                if published:
                    statistics.store_publishes += 1
            if store.disabled:
                self._detach_disabled_store(statistics)
        return result, used_permutation

    def _detach_disabled_store(self, statistics: Optional[EngineStatistics]):
        """Drop a degraded store from the runtime; flag it in the statistics."""
        self.runtime.store = None
        if statistics is not None:
            statistics.store_disabled = True
        return None

    def _apply_gate_raw(
        self,
        automaton: TreeAutomaton,
        gate: Gate,
        statistics: Optional[EngineStatistics] = None,
    ):
        if gate.kind in ("swap", "cswap"):
            raise ValueError(
                f"gate {gate.kind!r} must be decomposed first (use Circuit.decomposed())"
            )
        phases = statistics.phase_seconds if statistics is not None else None
        if self.mode == AnalysisMode.COMPOSITION:
            return apply_composition_gate(automaton, gate, phase_seconds=phases), False
        if self.mode == AnalysisMode.PERMUTATION or (
            self.mode == AnalysisMode.HYBRID and supports_permutation(gate)
        ):
            start = time.perf_counter()
            try:
                result = apply_permutation_gate(automaton, gate)
            except PermutationUnsupported:
                if self.mode == AnalysisMode.PERMUTATION:
                    raise
            else:
                if statistics is not None:
                    statistics.record_phase("permutation", time.perf_counter() - start)
                return result, True
        return apply_composition_gate(automaton, gate, phase_seconds=phases), False

    # --------------------------------------------------------------- circuits
    def run(self, circuit: Circuit, precondition: TreeAutomaton) -> EngineResult:
        """Run every gate of ``circuit`` over ``precondition`` and collect statistics."""
        if precondition.num_qubits != circuit.num_qubits:
            raise ValueError(
                f"pre-condition has {precondition.num_qubits} qubits but the circuit has "
                f"{circuit.num_qubits}"
            )
        statistics = EngineStatistics(kernel_backend=active_backend_name())
        automaton = precondition
        for gate in circuit.decomposed():
            start = time.perf_counter()
            automaton, used_permutation = self._apply_gate_cached(automaton, gate, statistics)
            elapsed = time.perf_counter() - start
            statistics.record(automaton, elapsed, used_permutation)
        if not self.reduce_after_each_gate:
            automaton = automaton.reduce()
        return EngineResult(output=automaton, statistics=statistics, mode=self.mode)


def run_circuit(
    circuit: Circuit,
    precondition: TreeAutomaton,
    mode: str = AnalysisMode.HYBRID,
    reduce_after_each_gate: bool = True,
    runtime: Optional[GateRuntime] = None,
) -> EngineResult:
    """Convenience wrapper: run ``circuit`` on ``precondition`` with a fresh engine."""
    engine = CircuitEngine(
        mode=mode, reduce_after_each_gate=reduce_after_each_gate, runtime=runtime
    )
    return engine.run(circuit, precondition)
