"""Circuit execution engine over tree automata.

The engine runs a whole circuit over a pre-condition TA, producing the TA of
all reachable output states.  It supports the two settings evaluated in the
paper (Section 7):

* ``hybrid`` — permutation-based encoding for the gates it supports, falling
  back to the composition-based encoding for the others (H, Rx, Ry and
  controlled gates whose control indices are not below the target),
* ``composition`` — composition-based encoding for every gate,
* ``permutation`` — permutation-based only (raises on unsupported gates);
  mainly useful for tests and ablations.

After each gate the engine optionally applies the lightweight reduction
(:meth:`TreeAutomaton.reduce`), mirroring the paper's use of simulation-based
reduction to keep the automata small.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..ta import store as ta_store
from ..ta.automaton import TreeAutomaton
from .composition import apply_composition_gate
from .permutation import PermutationUnsupported, apply_permutation_gate, supports_permutation

__all__ = [
    "AnalysisMode",
    "EngineStatistics",
    "EngineResult",
    "CircuitEngine",
    "run_circuit",
    "gate_cache_stats",
    "clear_gate_cache",
    "configure_gate_store",
    "active_gate_store",
    "set_gate_store",
]

# ------------------------------------------------------------------ gate cache
# Gate application is a pure function of (automaton structure, gate, mode), and
# repetitive circuits — Grover iterations, QFT layers, campaign sweeps over
# mutants of one reference — present the same pair over and over.  The memo
# below keys the *reduced* result on the automaton's structure key, so a
# repeated (automaton, gate) application costs one O(size) fingerprint instead
# of the whole tag/terms/bin/reduce pipeline.
_GATE_CACHE: Dict[tuple, Tuple[TreeAutomaton, bool]] = {}
#: safety valve mirroring the intern tables: stop storing beyond this size.
_MAX_GATE_CACHE = 16384
_GATE_CACHE_STATS = {"hits": 0, "misses": 0}


def gate_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the per-process gate-application memo."""
    return {"size": len(_GATE_CACHE), **_GATE_CACHE_STATS}


def clear_gate_cache() -> None:
    """Drop the gate-application memo and reset its counters."""
    _GATE_CACHE.clear()
    _GATE_CACHE_STATS["hits"] = 0
    _GATE_CACHE_STATS["misses"] = 0


# ------------------------------------------------------------- on-disk store
# Second cache tier behind the per-process memo: a content-addressed automaton
# store (repro.ta.store) shared by every process pointed at the same
# directory.  Lookup order is process memo -> store -> compute + publish to
# both, keyed by the same (automaton fingerprint, gate, mode) triple; the
# store uses the renaming-invariant compact-form digest so fresh processes
# (campaign pool workers, later campaign runs) agree on the keys.
_GATE_STORE: Optional["ta_store.AutomatonStore"] = None


def configure_gate_store(directory: Optional[str]) -> Optional["ta_store.AutomatonStore"]:
    """Attach (or detach, with ``None``) the cross-process gate-memo store.

    Called by the campaign runner in the parent and in every pool worker.  An
    unusable directory degrades to "no store" — the store is an optimisation
    and must never break a verification run.
    """
    global _GATE_STORE
    if directory is None:
        _GATE_STORE = None
        return None
    try:
        _GATE_STORE = ta_store.AutomatonStore(directory)
    except OSError:
        _GATE_STORE = None
    return _GATE_STORE


def active_gate_store() -> Optional["ta_store.AutomatonStore"]:
    """The currently configured cross-process store (``None`` when detached)."""
    return _GATE_STORE


def set_gate_store(
    store: Optional["ta_store.AutomatonStore"],
) -> Optional["ta_store.AutomatonStore"]:
    """Install an already-open store object (or ``None``); returns it.

    Lets a caller that temporarily attached a store (the campaign runner)
    restore whatever was active before, without re-opening directories.
    """
    global _GATE_STORE
    _GATE_STORE = store
    return store


def _gate_signature(gate: Gate) -> str:
    """Stable textual identity of a gate for cross-process store keys."""
    return f"{gate.kind}:{','.join(str(qubit) for qubit in gate.qubits)}"


class AnalysisMode:
    """Symbolic names for the engine settings (the paper's Hybrid / Composition)."""

    HYBRID = "hybrid"
    COMPOSITION = "composition"
    PERMUTATION = "permutation"

    ALL = (HYBRID, COMPOSITION, PERMUTATION)


@dataclass
class EngineStatistics:
    """Aggregate statistics of one circuit analysis."""

    gates_total: int = 0
    gates_permutation: int = 0
    gates_composition: int = 0
    max_states: int = 0
    max_transitions: int = 0
    analysis_seconds: float = 0.0
    per_gate_seconds: List[float] = field(default_factory=list)
    #: wall-clock per pipeline phase: ``tag`` / ``terms`` / ``bin`` / ``untag``
    #: (composition), ``permutation`` (permutation encoding), ``reduce`` (the
    #: post-gate reduction), ``store`` (on-disk store lookup/publish I/O);
    #: gate-memo hits skip every phase and record nothing
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: cross-process store counters for this analysis (all 0 with no store):
    #: gate applications served from the on-disk store, missed in it, and
    #: freshly computed results published back to it
    store_hits: int = 0
    store_misses: int = 0
    store_publishes: int = 0

    def record(self, automaton: TreeAutomaton, elapsed: float, used_permutation: bool) -> None:
        self.gates_total += 1
        if used_permutation:
            self.gates_permutation += 1
        else:
            self.gates_composition += 1
        self.max_states = max(self.max_states, automaton.num_states)
        self.max_transitions = max(self.max_transitions, automaton.num_transitions)
        self.per_gate_seconds.append(elapsed)
        self.analysis_seconds += elapsed

    def record_phase(self, name: str, seconds: float) -> None:
        """Accumulate per-phase wall-clock (tag/terms/bin/untag/permutation/reduce)."""
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    # -------------------------------------------------------- timing accessors
    @property
    def total_gate_seconds(self) -> float:
        """Sum of the per-gate wall-clock times (== analysis time spent in gates)."""
        return sum(self.per_gate_seconds)

    @property
    def mean_gate_seconds(self) -> float:
        """Average per-gate time (0.0 for an empty circuit)."""
        if not self.per_gate_seconds:
            return 0.0
        return self.total_gate_seconds / len(self.per_gate_seconds)

    def percentile_gate_seconds(self, percentile: float) -> float:
        """Per-gate time at the given percentile in ``[0, 100]`` (nearest-rank).

        ``percentile_gate_seconds(50)`` is the median gate time and
        ``percentile_gate_seconds(100)`` the slowest gate; 0.0 for an empty
        circuit.  Raises :class:`ValueError` outside the ``[0, 100]`` range.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        if not self.per_gate_seconds:
            return 0.0
        ordered = sorted(self.per_gate_seconds)
        # multiply before dividing: percentile/100*n overshoots exact-integer
        # ranks by one ulp (e.g. 55/100*100 == 55.00000000000001)
        rank = max(0, min(len(ordered) - 1, int(math.ceil(percentile * len(ordered) / 100.0)) - 1))
        return ordered[rank]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary used by the campaign report (no raw sample list)."""
        return {
            "gates_total": self.gates_total,
            "gates_permutation": self.gates_permutation,
            "gates_composition": self.gates_composition,
            "max_states": self.max_states,
            "max_transitions": self.max_transitions,
            "analysis_seconds": self.analysis_seconds,
            "total_gate_seconds": self.total_gate_seconds,
            "mean_gate_seconds": self.mean_gate_seconds,
            "p50_gate_seconds": self.percentile_gate_seconds(50),
            "p90_gate_seconds": self.percentile_gate_seconds(90),
            "max_gate_seconds": self.percentile_gate_seconds(100),
            "phase_seconds": dict(self.phase_seconds),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "store_publishes": self.store_publishes,
        }


@dataclass
class EngineResult:
    """Result of running a circuit over a pre-condition TA."""

    output: TreeAutomaton
    statistics: EngineStatistics
    mode: str


class CircuitEngine:
    """Applies circuits to tree automata using the paper's gate transformers."""

    def __init__(self, mode: str = AnalysisMode.HYBRID, reduce_after_each_gate: bool = True):
        if mode not in AnalysisMode.ALL:
            raise ValueError(f"unknown analysis mode {mode!r}; expected one of {AnalysisMode.ALL}")
        self.mode = mode
        self.reduce_after_each_gate = reduce_after_each_gate

    # ----------------------------------------------------------------- gates
    def apply_gate(
        self, automaton: TreeAutomaton, gate: Gate, statistics: Optional[EngineStatistics] = None
    ) -> TreeAutomaton:
        """Apply one gate, returning the (optionally reduced) successor TA."""
        result, _used_permutation = self._apply_gate_cached(automaton, gate, statistics)
        return result

    def _apply_gate_cached(
        self, automaton: TreeAutomaton, gate: Gate, statistics: Optional[EngineStatistics]
    ):
        """Two-tier memoised gate application: process memo, then on-disk store.

        Lookup order is process memo -> cross-process store -> compute, and a
        fresh result is published to both tiers, so a campaign worker that
        computes a gate application once makes it a fingerprint lookup for
        every other worker (and every later run) sharing the store.
        """
        key = (automaton.structure_key(), gate, self.mode, self.reduce_after_each_gate)
        cached = _GATE_CACHE.get(key)
        if cached is not None:
            _GATE_CACHE_STATS["hits"] += 1
            return cached
        _GATE_CACHE_STATS["misses"] += 1

        store = _GATE_STORE
        store_key = None
        if store is not None:
            start = time.perf_counter()
            store_key = store.gate_key(
                ta_store.fingerprint(automaton), _gate_signature(gate),
                self.mode, self.reduce_after_each_gate,
            )
            entry = store.get(store_key)
            if statistics is not None:
                statistics.record_phase("store", time.perf_counter() - start)
            if entry is not None:
                result = entry.automaton
                if entry.meta.get("reduced"):
                    result._reduced = True  # noqa: SLF001 - producer reduced it already
                used_permutation = bool(entry.meta.get("used_permutation"))
                if statistics is not None:
                    statistics.store_hits += 1
                if len(_GATE_CACHE) < _MAX_GATE_CACHE:
                    _GATE_CACHE[key] = (result, used_permutation)
                return result, used_permutation
            if statistics is not None:
                statistics.store_misses += 1

        result, used_permutation = self._apply_gate_raw(automaton, gate, statistics)
        if self.reduce_after_each_gate:
            start = time.perf_counter()
            result = result.reduce()
            if statistics is not None:
                statistics.record_phase("reduce", time.perf_counter() - start)
        if len(_GATE_CACHE) < _MAX_GATE_CACHE:
            _GATE_CACHE[key] = (result, used_permutation)
        if store is not None and store_key is not None:
            start = time.perf_counter()
            published = store.put(store_key, result, {
                "used_permutation": used_permutation,
                "reduced": self.reduce_after_each_gate,
            })
            if statistics is not None:
                statistics.record_phase("store", time.perf_counter() - start)
                if published:
                    statistics.store_publishes += 1
        return result, used_permutation

    def _apply_gate_raw(
        self,
        automaton: TreeAutomaton,
        gate: Gate,
        statistics: Optional[EngineStatistics] = None,
    ):
        if gate.kind in ("swap", "cswap"):
            raise ValueError(
                f"gate {gate.kind!r} must be decomposed first (use Circuit.decomposed())"
            )
        phases = statistics.phase_seconds if statistics is not None else None
        if self.mode == AnalysisMode.COMPOSITION:
            return apply_composition_gate(automaton, gate, phase_seconds=phases), False
        if self.mode == AnalysisMode.PERMUTATION or (
            self.mode == AnalysisMode.HYBRID and supports_permutation(gate)
        ):
            start = time.perf_counter()
            try:
                result = apply_permutation_gate(automaton, gate)
            except PermutationUnsupported:
                if self.mode == AnalysisMode.PERMUTATION:
                    raise
            else:
                if statistics is not None:
                    statistics.record_phase("permutation", time.perf_counter() - start)
                return result, True
        return apply_composition_gate(automaton, gate, phase_seconds=phases), False

    # --------------------------------------------------------------- circuits
    def run(self, circuit: Circuit, precondition: TreeAutomaton) -> EngineResult:
        """Run every gate of ``circuit`` over ``precondition`` and collect statistics."""
        if precondition.num_qubits != circuit.num_qubits:
            raise ValueError(
                f"pre-condition has {precondition.num_qubits} qubits but the circuit has "
                f"{circuit.num_qubits}"
            )
        statistics = EngineStatistics()
        automaton = precondition
        for gate in circuit.decomposed():
            start = time.perf_counter()
            automaton, used_permutation = self._apply_gate_cached(automaton, gate, statistics)
            elapsed = time.perf_counter() - start
            statistics.record(automaton, elapsed, used_permutation)
        if not self.reduce_after_each_gate:
            automaton = automaton.reduce()
        return EngineResult(output=automaton, statistics=statistics, mode=self.mode)


def run_circuit(
    circuit: Circuit,
    precondition: TreeAutomaton,
    mode: str = AnalysisMode.HYBRID,
    reduce_after_each_gate: bool = True,
) -> EngineResult:
    """Convenience wrapper: run ``circuit`` on ``precondition`` with a fresh engine."""
    engine = CircuitEngine(mode=mode, reduce_after_each_gate=reduce_after_each_gate)
    return engine.run(circuit, precondition)
