"""Circuit execution engine over tree automata.

The engine runs a whole circuit over a pre-condition TA, producing the TA of
all reachable output states.  It supports the two settings evaluated in the
paper (Section 7):

* ``hybrid`` — permutation-based encoding for the gates it supports, falling
  back to the composition-based encoding for the others (H, Rx, Ry and
  controlled gates whose control indices are not below the target),
* ``composition`` — composition-based encoding for every gate,
* ``permutation`` — permutation-based only (raises on unsupported gates);
  mainly useful for tests and ablations.

After each gate the engine optionally applies the lightweight reduction
(:meth:`TreeAutomaton.reduce`), mirroring the paper's use of simulation-based
reduction to keep the automata small.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..ta.automaton import TreeAutomaton
from .composition import apply_composition_gate
from .permutation import PermutationUnsupported, apply_permutation_gate, supports_permutation

__all__ = ["AnalysisMode", "EngineStatistics", "EngineResult", "CircuitEngine", "run_circuit"]


class AnalysisMode:
    """Symbolic names for the engine settings (the paper's Hybrid / Composition)."""

    HYBRID = "hybrid"
    COMPOSITION = "composition"
    PERMUTATION = "permutation"

    ALL = (HYBRID, COMPOSITION, PERMUTATION)


@dataclass
class EngineStatistics:
    """Aggregate statistics of one circuit analysis."""

    gates_total: int = 0
    gates_permutation: int = 0
    gates_composition: int = 0
    max_states: int = 0
    max_transitions: int = 0
    analysis_seconds: float = 0.0
    per_gate_seconds: List[float] = field(default_factory=list)

    def record(self, automaton: TreeAutomaton, elapsed: float, used_permutation: bool) -> None:
        self.gates_total += 1
        if used_permutation:
            self.gates_permutation += 1
        else:
            self.gates_composition += 1
        self.max_states = max(self.max_states, automaton.num_states)
        self.max_transitions = max(self.max_transitions, automaton.num_transitions)
        self.per_gate_seconds.append(elapsed)
        self.analysis_seconds += elapsed

    # -------------------------------------------------------- timing accessors
    @property
    def total_gate_seconds(self) -> float:
        """Sum of the per-gate wall-clock times (== analysis time spent in gates)."""
        return sum(self.per_gate_seconds)

    @property
    def mean_gate_seconds(self) -> float:
        """Average per-gate time (0.0 for an empty circuit)."""
        if not self.per_gate_seconds:
            return 0.0
        return self.total_gate_seconds / len(self.per_gate_seconds)

    def percentile_gate_seconds(self, percentile: float) -> float:
        """Per-gate time at the given percentile in ``[0, 100]`` (nearest-rank).

        ``percentile_gate_seconds(50)`` is the median gate time and
        ``percentile_gate_seconds(100)`` the slowest gate; 0.0 for an empty
        circuit.  Raises :class:`ValueError` outside the ``[0, 100]`` range.
        """
        if not 0.0 <= percentile <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        if not self.per_gate_seconds:
            return 0.0
        ordered = sorted(self.per_gate_seconds)
        # multiply before dividing: percentile/100*n overshoots exact-integer
        # ranks by one ulp (e.g. 55/100*100 == 55.00000000000001)
        rank = max(0, min(len(ordered) - 1, int(math.ceil(percentile * len(ordered) / 100.0)) - 1))
        return ordered[rank]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary used by the campaign report (no raw sample list)."""
        return {
            "gates_total": self.gates_total,
            "gates_permutation": self.gates_permutation,
            "gates_composition": self.gates_composition,
            "max_states": self.max_states,
            "max_transitions": self.max_transitions,
            "analysis_seconds": self.analysis_seconds,
            "total_gate_seconds": self.total_gate_seconds,
            "mean_gate_seconds": self.mean_gate_seconds,
            "p50_gate_seconds": self.percentile_gate_seconds(50),
            "p90_gate_seconds": self.percentile_gate_seconds(90),
            "max_gate_seconds": self.percentile_gate_seconds(100),
        }


@dataclass
class EngineResult:
    """Result of running a circuit over a pre-condition TA."""

    output: TreeAutomaton
    statistics: EngineStatistics
    mode: str


class CircuitEngine:
    """Applies circuits to tree automata using the paper's gate transformers."""

    def __init__(self, mode: str = AnalysisMode.HYBRID, reduce_after_each_gate: bool = True):
        if mode not in AnalysisMode.ALL:
            raise ValueError(f"unknown analysis mode {mode!r}; expected one of {AnalysisMode.ALL}")
        self.mode = mode
        self.reduce_after_each_gate = reduce_after_each_gate

    # ----------------------------------------------------------------- gates
    def apply_gate(self, automaton: TreeAutomaton, gate: Gate) -> TreeAutomaton:
        """Apply one gate, returning the (optionally reduced) successor TA."""
        result, _used_permutation = self._apply_gate_raw(automaton, gate)
        if self.reduce_after_each_gate:
            result = result.reduce()
        return result

    def _apply_gate_raw(self, automaton: TreeAutomaton, gate: Gate):
        if gate.kind in ("swap", "cswap"):
            raise ValueError(
                f"gate {gate.kind!r} must be decomposed first (use Circuit.decomposed())"
            )
        if self.mode == AnalysisMode.COMPOSITION:
            return apply_composition_gate(automaton, gate), False
        if self.mode == AnalysisMode.PERMUTATION:
            return apply_permutation_gate(automaton, gate), True
        # hybrid
        if supports_permutation(gate):
            try:
                return apply_permutation_gate(automaton, gate), True
            except PermutationUnsupported:
                pass
        return apply_composition_gate(automaton, gate), False

    # --------------------------------------------------------------- circuits
    def run(self, circuit: Circuit, precondition: TreeAutomaton) -> EngineResult:
        """Run every gate of ``circuit`` over ``precondition`` and collect statistics."""
        if precondition.num_qubits != circuit.num_qubits:
            raise ValueError(
                f"pre-condition has {precondition.num_qubits} qubits but the circuit has "
                f"{circuit.num_qubits}"
            )
        statistics = EngineStatistics()
        automaton = precondition
        for gate in circuit.decomposed():
            start = time.perf_counter()
            automaton, used_permutation = self._apply_gate_raw(automaton, gate)
            if self.reduce_after_each_gate:
                automaton = automaton.reduce()
            elapsed = time.perf_counter() - start
            statistics.record(automaton, elapsed, used_permutation)
        if not self.reduce_after_each_gate:
            automaton = automaton.reduce()
        return EngineResult(output=automaton, statistics=statistics, mode=self.mode)


def run_circuit(
    circuit: Circuit,
    precondition: TreeAutomaton,
    mode: str = AnalysisMode.HYBRID,
    reduce_after_each_gate: bool = True,
) -> EngineResult:
    """Convenience wrapper: run ``circuit`` on ``precondition`` with a fresh engine."""
    engine = CircuitEngine(mode=mode, reduce_after_each_gate=reduce_after_each_gate)
    return engine.run(circuit, precondition)
