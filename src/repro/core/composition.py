"""Composition-based encoding of quantum gates on tree automata (Section 6).

The composition-based approach supports *every* gate of Table 1 (in particular
Hadamard and the pi/2 rotations, which are not basis-state permutations).  It
interprets the gate's symbolic update formula term by term over a *tagged* TA:

========================  =========================================================
paper operation           function here
========================  =========================================================
``Tag`` (Algorithm 3)     :func:`repro.core.tagging.tag`
``Res`` (Algorithm 4)     :func:`restrict`
``Mult`` (Algorithm 5)    :func:`multiply`
``s.copy`` (Algorithm 6)  :func:`subtree_copy`
``f.swap`` (Algorithm 7)  :func:`forward_swap`
``b.swap`` (Algorithm 8)  :func:`backward_swap`
``Prj`` (Eq. 13)          :func:`projection`
``Bin`` (Algorithm 9)     :func:`binary_operation`
========================  =========================================================

:func:`apply_composition_gate` chains them exactly as in Fig. 3: tag, build one
TA per term, fold the terms with the binary operation, apply the global
``1/sqrt(2)`` factor, untag.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..algebraic import ONE, ZERO, AlgebraicNumber
from ..circuits.gates import Gate
from ..ta.automaton import (
    InternalTransition,
    Symbol,
    TreeAutomaton,
    intern_transition,
    make_symbol,
    symbol_qubit,
    symbol_tags,
)
from .formulas import UpdateFormula, formula_for
from .tagging import tag, untag

__all__ = [
    "restrict",
    "multiply",
    "subtree_copy",
    "forward_swap",
    "backward_swap",
    "projection",
    "binary_operation",
    "apply_composition_gate",
]


def restrict(automaton: TreeAutomaton, qubit: int, bit: int) -> TreeAutomaton:
    """The restriction operation ``Res(A, x_qubit, bit)`` (Algorithm 4).

    With ``bit == 1`` the result recognises ``B_{x_qubit} · T`` for every
    ``T`` in the language (positions with the qubit equal to 0 are zeroed);
    with ``bit == 0`` it recognises ``B_{x̄_qubit} · T``.  The construction is
    tag-preserving.
    """
    offset = automaton.next_free_state()
    internal: Dict[int, List[InternalTransition]] = {}
    leaves: Dict[int, AlgebraicNumber] = {}
    # primed copy with zeroed leaves (identical internal structure => same tags)
    for parent, transitions in automaton.internal.items():
        internal[parent + offset] = [
            intern_transition(symbol, left + offset, right + offset)
            for symbol, left, right in transitions
        ]
    for state in automaton.leaves:
        leaves[state + offset] = ZERO
    # original copy with x_qubit transitions redirecting the zeroed branch
    for parent, transitions in automaton.internal.items():
        rewritten = []
        for entry in transitions:
            symbol, left, right = entry
            if symbol_qubit(symbol) == qubit:
                if bit == 1:
                    rewritten.append(intern_transition(symbol, left + offset, right))
                else:
                    rewritten.append(intern_transition(symbol, left, right + offset))
            else:
                rewritten.append(entry)
        internal[parent] = rewritten
    leaves.update(automaton.leaves)
    result = TreeAutomaton(automaton.num_qubits, automaton.roots, internal, leaves)
    return result.remove_useless()


def multiply(automaton: TreeAutomaton, scalar: AlgebraicNumber) -> TreeAutomaton:
    """The multiplication operation ``Mult(A, v)`` (Algorithm 5), generalised to
    an arbitrary algebraic scalar."""
    return automaton.map_leaves(lambda amplitude: amplitude * scalar)


def subtree_copy(automaton: TreeAutomaton, qubit: int, bit: int) -> TreeAutomaton:
    """Subtree copying ``s.copy(A, x_qubit, bit)`` (Algorithm 6).

    Only sound when the ``x_qubit`` transitions sit directly above the leaf
    layer (Lemma 6.8); :func:`projection` takes care of moving them there.
    """
    internal: Dict[int, List[InternalTransition]] = {}
    for parent, transitions in automaton.internal.items():
        rewritten = []
        for entry in transitions:
            symbol, left, right = entry
            if symbol_qubit(symbol) == qubit:
                child = right if bit == 1 else left
                rewritten.append(intern_transition(symbol, child, child))
            else:
                rewritten.append(entry)
        internal[parent] = rewritten
    return TreeAutomaton(automaton.num_qubits, automaton.roots, internal, automaton.leaves)


def forward_swap(automaton: TreeAutomaton, qubit: int) -> TreeAutomaton:
    """Forward variable-order swapping ``f.swap_qubit`` (Algorithm 7).

    Pushes the (tagged) ``x_qubit`` transitions one layer down, replacing them
    by merged-symbol transitions that remember both child tags so that
    :func:`backward_swap` can restore the original order and tags.
    """
    internal: Dict[int, List[InternalTransition]] = {
        parent: list(transitions) for parent, transitions in automaton.internal.items()
    }
    leaves = dict(automaton.leaves)
    fresh_counter = automaton.next_free_state()
    to_remove: List[Tuple[int, InternalTransition]] = []
    to_add: Dict[int, List[InternalTransition]] = {}

    for parent, transitions in automaton.internal.items():
        for symbol, left, right in transitions:
            if symbol_qubit(symbol) != qubit:
                continue
            parent_tags = symbol_tags(symbol)
            left_transitions = automaton.internal.get(left, ())
            right_transitions = automaton.internal.get(right, ())
            if not left_transitions or not right_transitions:
                raise ValueError("forward_swap applied at the leaf layer")
            to_remove.append((parent, (symbol, left, right)))
            for left_symbol, l00, l01 in left_transitions:
                for right_symbol, r10, r11 in right_transitions:
                    lower_qubit = symbol_qubit(left_symbol)
                    if symbol_qubit(right_symbol) != lower_qubit:
                        raise ValueError("children of a swapped transition disagree on their qubit")
                    left_tag = symbol_tags(left_symbol)
                    right_tag = symbol_tags(right_symbol)
                    if len(left_tag) != 1 or len(right_tag) != 1:
                        raise ValueError("forward_swap expects singly-tagged child transitions")
                    merged_symbol = make_symbol(lower_qubit, (left_tag[0], right_tag[0]))
                    new_left = fresh_counter
                    new_right = fresh_counter + 1
                    fresh_counter += 2
                    to_add.setdefault(parent, []).append(
                        intern_transition(merged_symbol, new_left, new_right)
                    )
                    to_add.setdefault(new_left, []).append(
                        intern_transition(make_symbol(qubit, parent_tags), l00, r10)
                    )
                    to_add.setdefault(new_right, []).append(
                        intern_transition(make_symbol(qubit, parent_tags), l01, r11)
                    )
                    to_remove.append((left, (left_symbol, l00, l01)))
                    to_remove.append((right, (right_symbol, r10, r11)))

    for parent, transition in to_remove:
        if transition in internal.get(parent, []):
            internal[parent].remove(transition)
    for parent, transitions in to_add.items():
        internal.setdefault(parent, []).extend(transitions)
    internal = {parent: transitions for parent, transitions in internal.items() if transitions}
    return TreeAutomaton(automaton.num_qubits, automaton.roots, internal, leaves)


def backward_swap(automaton: TreeAutomaton, qubit: int) -> TreeAutomaton:
    """Backward variable-order swapping ``b.swap_qubit`` (Algorithm 8).

    Inverse of :func:`forward_swap`: pulls the ``x_qubit`` transitions one
    layer up, restoring the original child symbols from the merged tags.
    """
    internal: Dict[int, List[InternalTransition]] = {
        parent: list(transitions) for parent, transitions in automaton.internal.items()
    }
    leaves = dict(automaton.leaves)
    fresh_counter = automaton.next_free_state()
    to_remove: List[Tuple[int, InternalTransition]] = []
    to_add: Dict[int, List[InternalTransition]] = {}

    for parent, transitions in automaton.internal.items():
        for symbol, left, right in transitions:
            tags = symbol_tags(symbol)
            if len(tags) != 2:
                continue
            lower_qubit = symbol_qubit(symbol)
            left_transitions = [
                t for t in automaton.internal.get(left, ()) if symbol_qubit(t[0]) == qubit
            ]
            right_transitions = [
                t for t in automaton.internal.get(right, ()) if symbol_qubit(t[0]) == qubit
            ]
            if not left_transitions or not right_transitions:
                continue
            to_remove.append((parent, (symbol, left, right)))
            for left_symbol, c00, c01 in left_transitions:
                for right_symbol, c10, c11 in right_transitions:
                    if symbol_tags(left_symbol) != symbol_tags(right_symbol):
                        continue
                    upper_tags = symbol_tags(left_symbol)
                    new_left = fresh_counter
                    new_right = fresh_counter + 1
                    fresh_counter += 2
                    to_add.setdefault(parent, []).append(
                        intern_transition(make_symbol(qubit, upper_tags), new_left, new_right)
                    )
                    to_add.setdefault(new_left, []).append(
                        intern_transition(make_symbol(lower_qubit, (tags[0],)), c00, c10)
                    )
                    to_add.setdefault(new_right, []).append(
                        intern_transition(make_symbol(lower_qubit, (tags[1],)), c01, c11)
                    )
                    to_remove.append((left, (left_symbol, c00, c01)))
                    to_remove.append((right, (right_symbol, c10, c11)))

    for parent, transition in to_remove:
        if transition in internal.get(parent, []):
            internal[parent].remove(transition)
    for parent, transitions in to_add.items():
        internal.setdefault(parent, []).extend(transitions)
    internal = {parent: transitions for parent, transitions in internal.items() if transitions}
    return TreeAutomaton(automaton.num_qubits, automaton.roots, internal, leaves)


def projection(automaton: TreeAutomaton, qubit: int, bit: int) -> TreeAutomaton:
    """The projection operation ``Prj(A, x_qubit, bit)`` (Eq. 13).

    Computes the TA of ``T_{x_qubit}`` (``bit == 1``) or ``T_{x̄_qubit}``
    (``bit == 0``) for every tree ``T`` of the (tagged) input: the qubit's
    transitions are pushed down to the layer above the leaves with
    :func:`forward_swap`, copied there with :func:`subtree_copy`, and the
    variable order is restored with :func:`backward_swap`.
    """
    depth_moves = automaton.num_qubits - 1 - qubit
    result = automaton
    for _ in range(depth_moves):
        # The intermediate reduction keeps the swapped automata small; it merges
        # states with identical transition sets, which preserves the (tagged)
        # language and therefore tag preservation (cf. the paper's remark that
        # "TA minimization algorithms can help to significantly reduce the cost").
        result = forward_swap(result, qubit).reduce()
    result = subtree_copy(result, qubit, bit)
    for _ in range(depth_moves):
        result = backward_swap(result, qubit).reduce()
    return result


def binary_operation(
    left: TreeAutomaton, right: TreeAutomaton, subtract: bool = False
) -> TreeAutomaton:
    """The binary operation ``Bin(A1, A2, ±)`` (Algorithm 9).

    A product construction over matching (tagged) symbols; leaf amplitudes are
    added (or subtracted).  Only pairs reachable from the root pairs are built.
    """
    if left.num_qubits != right.num_qubits:
        raise ValueError("operands must have the same number of qubits")
    right_by_state_symbol: Dict[Tuple[int, Symbol], List[Tuple[int, int]]] = {}
    for parent, symbol, l_child, r_child in right.transitions():
        right_by_state_symbol.setdefault((parent, symbol), []).append((l_child, r_child))

    pair_ids: Dict[Tuple[int, int], int] = {}
    internal: Dict[int, List[InternalTransition]] = {}
    leaves: Dict[int, AlgebraicNumber] = {}

    def pair_id(pair: Tuple[int, int]) -> int:
        if pair not in pair_ids:
            pair_ids[pair] = len(pair_ids)
        return pair_ids[pair]

    roots = set()
    worklist: List[Tuple[int, int]] = []
    seen = set()
    for left_root in left.roots:
        for right_root in right.roots:
            pair = (left_root, right_root)
            roots.add(pair_id(pair))
            worklist.append(pair)
            seen.add(pair)

    while worklist:
        left_state, right_state = worklist.pop()
        current = pair_id((left_state, right_state))
        if left_state in left.leaves and right_state in right.leaves:
            left_amp = left.leaves[left_state]
            right_amp = right.leaves[right_state]
            leaves[current] = left_amp - right_amp if subtract else left_amp + right_amp
            continue
        transitions: List[InternalTransition] = []
        for symbol, l_child, r_child in left.internal.get(left_state, ()):
            for rl_child, rr_child in right_by_state_symbol.get((right_state, symbol), ()):
                left_pair = (l_child, rl_child)
                right_pair = (r_child, rr_child)
                transitions.append(
                    intern_transition(symbol, pair_id(left_pair), pair_id(right_pair))
                )
                for pair in (left_pair, right_pair):
                    if pair not in seen:
                        seen.add(pair)
                        worklist.append(pair)
        if transitions:
            internal[current] = transitions
    result = TreeAutomaton(left.num_qubits, roots, internal, leaves)
    return result.remove_useless()


def apply_composition_gate(
    automaton: TreeAutomaton, gate: Gate, formula: UpdateFormula = None
) -> TreeAutomaton:
    """Apply a gate with the composition-based approach (Section 6.2, Fig. 3)."""
    if formula is None:
        formula = formula_for(gate)
    tagged = tag(automaton)
    term_automata: List[TreeAutomaton] = []
    for term in formula.terms:
        term_automaton = tagged
        if term.projection is not None:
            proj_qubit, proj_bit = term.projection
            term_automaton = projection(term_automaton, proj_qubit, proj_bit)
        for res_qubit, res_bit in term.restrictions:
            term_automaton = restrict(term_automaton, res_qubit, res_bit)
        scalar = term.scalar if term.sign > 0 else -term.scalar
        if scalar != ONE:
            term_automaton = multiply(term_automaton, scalar)
        term_automata.append(term_automaton)
    combined = term_automata[0]
    for term_automaton in term_automata[1:]:
        combined = binary_operation(combined, term_automaton)
    if formula.sqrt2_divisions:
        combined = multiply(combined, AlgebraicNumber(1, 0, 0, 0, formula.sqrt2_divisions))
    return untag(combined)
