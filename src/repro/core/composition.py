"""Composition-based encoding of quantum gates on tree automata (Section 6).

The composition-based approach supports *every* gate of Table 1 (in particular
Hadamard and the pi/2 rotations, which are not basis-state permutations).  It
interprets the gate's symbolic update formula term by term over a *tagged* TA:

========================  =========================================================
paper operation           function here
========================  =========================================================
``Tag`` (Algorithm 3)     :func:`repro.core.tagging.tag`
``Res`` (Algorithm 4)     :func:`restrict`
``Mult`` (Algorithm 5)    :func:`multiply`
``s.copy`` (Algorithm 6)  :func:`subtree_copy`
``f.swap`` (Algorithm 7)  :func:`forward_swap`
``b.swap`` (Algorithm 8)  :func:`backward_swap`
``Prj`` (Eq. 13)          :func:`projection`
``Bin`` (Algorithm 9)     :func:`binary_operation`
========================  =========================================================

:func:`apply_composition_gate` chains them exactly as in Fig. 3: tag, build one
TA per term, fold the terms with the binary operation, apply the global
``1/sqrt(2)`` factor, untag.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Set, Tuple

from ..algebraic import ONE, ZERO, AlgebraicNumber
from ..circuits.gates import Gate
from ..ta import kernel
from ..ta.automaton import (
    InternalTransition,
    TreeAutomaton,
    intern_transition,
    make_symbol,
    symbol_qubit,
    symbol_tags,
)
from .formulas import UpdateFormula, formula_for
from .tagging import tag, untag

__all__ = [
    "restrict",
    "multiply",
    "subtree_copy",
    "forward_swap",
    "backward_swap",
    "projection",
    "binary_operation",
    "apply_composition_gate",
]


def _copy_subtrees(
    source: TreeAutomaton,
    seeds: List[int],
    offset: int,
    internal: Dict[int, Tuple[InternalTransition, ...]],
    leaves: Dict[int, AlgebraicNumber],
    leaf_scalar: AlgebraicNumber,
) -> None:
    """Add an id-shifted copy of the subtrees rooted at ``seeds`` to ``internal``/``leaves``.

    This is the fused replacement for the transformers' old "copy the whole
    automaton, then prune the unreachable half" pattern (shared with the
    permutation encoding's primed-copy constructions): only the states
    actually reachable from ``seeds`` (the redirected branches) are built, so
    no post-hoc :meth:`~TreeAutomaton.remove_useless` pass is needed.  Copied
    leaves carry ``amplitude * leaf_scalar``.
    """
    seen: Set[int] = set()
    stack = list(seeds)
    while stack:
        state = stack.pop()
        if state in seen:
            continue
        seen.add(state)
        transitions = source.internal.get(state)
        if transitions is None:
            amplitude = source.leaves.get(state)
            if amplitude is not None:
                leaves[state + offset] = (
                    amplitude if leaf_scalar is ONE else amplitude * leaf_scalar
                )
            continue
        internal[state + offset] = tuple(
            intern_transition(symbol, left + offset, right + offset)
            for symbol, left, right in transitions
        )
        for _symbol, left, right in transitions:
            stack.append(left)
            stack.append(right)


def restrict(automaton: TreeAutomaton, qubit: int, bit: int) -> TreeAutomaton:
    """The restriction operation ``Res(A, x_qubit, bit)`` (Algorithm 4).

    With ``bit == 1`` the result recognises ``B_{x_qubit} · T`` for every
    ``T`` in the language (positions with the qubit equal to 0 are zeroed);
    with ``bit == 0`` it recognises ``B_{x̄_qubit} · T``.  The construction is
    tag-preserving and fused: the zeroed duplicate is only built for the
    subtrees actually redirected (states below the restricted qubit), so the
    result needs no pruning and never blows up to a full second copy.
    """
    offset = automaton.next_free_state()
    internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    leaves: Dict[int, AlgebraicNumber] = dict(automaton.leaves)
    redirected: List[int] = []
    for parent, transitions in automaton.internal.items():
        changed = False
        rewritten: List[InternalTransition] = []
        for entry in transitions:
            symbol, left, right = entry
            if symbol_qubit(symbol) == qubit:
                if bit == 1:
                    rewritten.append(intern_transition(symbol, left + offset, right))
                    redirected.append(left)
                else:
                    rewritten.append(intern_transition(symbol, left, right + offset))
                    redirected.append(right)
                changed = True
            else:
                rewritten.append(entry)
        internal[parent] = tuple(rewritten) if changed else transitions
    # zeroed copy of exactly the redirected subtrees (identical structure => same tags)
    _copy_subtrees(automaton, redirected, offset, internal, leaves, leaf_scalar=ZERO)
    return TreeAutomaton._make(automaton.num_qubits, automaton.roots, internal, leaves)


def multiply(automaton: TreeAutomaton, scalar: AlgebraicNumber) -> TreeAutomaton:
    """The multiplication operation ``Mult(A, v)`` (Algorithm 5), generalised to
    an arbitrary algebraic scalar."""
    return automaton.map_leaves(lambda amplitude: amplitude * scalar)


def subtree_copy(automaton: TreeAutomaton, qubit: int, bit: int) -> TreeAutomaton:
    """Subtree copying ``s.copy(A, x_qubit, bit)`` (Algorithm 6).

    Only sound when the ``x_qubit`` transitions sit directly above the leaf
    layer (Lemma 6.8); :func:`projection` takes care of moving them there.
    """
    internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    for parent, transitions in automaton.internal.items():
        changed = False
        rewritten: List[InternalTransition] = []
        for entry in transitions:
            symbol, left, right = entry
            if symbol_qubit(symbol) == qubit:
                child = right if bit == 1 else left
                rewritten.append(intern_transition(symbol, child, child))
                changed = True
            else:
                rewritten.append(entry)
        internal[parent] = tuple(dict.fromkeys(rewritten)) if changed else transitions
    return TreeAutomaton._make(automaton.num_qubits, automaton.roots, internal, automaton.leaves)


def _apply_rewrites(
    internal: Dict[int, Tuple[InternalTransition, ...]],
    to_remove: Dict[int, Set[InternalTransition]],
    to_add: Dict[int, List[InternalTransition]],
) -> Dict[int, Tuple[InternalTransition, ...]]:
    """Apply per-parent removals/additions, touching only the parents that change.

    Unchanged parents keep their interned transition tuples; changed ones are
    rebuilt once (order-preserving, duplicate-free) instead of the old
    ``list.remove`` loop that was quadratic in the transition count.
    """
    result: Dict[int, Tuple[InternalTransition, ...]] = {}
    for parent, transitions in internal.items():
        removals = to_remove.get(parent)
        additions = to_add.get(parent)
        if removals is None and additions is None:
            result[parent] = transitions
            continue
        merged: Dict[InternalTransition, None] = {}
        for entry in transitions:
            if removals is None or entry not in removals:
                merged[entry] = None
        if additions is not None:
            for entry in additions:
                merged[entry] = None
        if merged:
            result[parent] = tuple(merged)
    for parent, additions in to_add.items():
        if parent not in internal:
            result[parent] = tuple(dict.fromkeys(additions))
    return result


def forward_swap(automaton: TreeAutomaton, qubit: int) -> TreeAutomaton:
    """Forward variable-order swapping ``f.swap_qubit`` (Algorithm 7).

    Pushes the (tagged) ``x_qubit`` transitions one layer down, replacing them
    by merged-symbol transitions that remember both child tags so that
    :func:`backward_swap` can restore the original order and tags.
    """
    fresh_counter = automaton.next_free_state()
    to_remove: Dict[int, Set[InternalTransition]] = {}
    to_add: Dict[int, List[InternalTransition]] = {}

    for parent, transitions in automaton.internal.items():
        for symbol, left, right in transitions:
            if symbol_qubit(symbol) != qubit:
                continue
            parent_tags = symbol_tags(symbol)
            left_transitions = automaton.internal.get(left, ())
            right_transitions = automaton.internal.get(right, ())
            if not left_transitions or not right_transitions:
                raise ValueError("forward_swap applied at the leaf layer")
            to_remove.setdefault(parent, set()).add(intern_transition(symbol, left, right))
            for left_symbol, l00, l01 in left_transitions:
                for right_symbol, r10, r11 in right_transitions:
                    lower_qubit = symbol_qubit(left_symbol)
                    if symbol_qubit(right_symbol) != lower_qubit:
                        raise ValueError("children of a swapped transition disagree on their qubit")
                    left_tag = symbol_tags(left_symbol)
                    right_tag = symbol_tags(right_symbol)
                    if len(left_tag) != 1 or len(right_tag) != 1:
                        raise ValueError("forward_swap expects singly-tagged child transitions")
                    merged_symbol = make_symbol(lower_qubit, (left_tag[0], right_tag[0]))
                    new_left = fresh_counter
                    new_right = fresh_counter + 1
                    fresh_counter += 2
                    to_add.setdefault(parent, []).append(
                        intern_transition(merged_symbol, new_left, new_right)
                    )
                    to_add.setdefault(new_left, []).append(
                        intern_transition(make_symbol(qubit, parent_tags), l00, r10)
                    )
                    to_add.setdefault(new_right, []).append(
                        intern_transition(make_symbol(qubit, parent_tags), l01, r11)
                    )
                    to_remove.setdefault(left, set()).add(intern_transition(left_symbol, l00, l01))
                    to_remove.setdefault(right, set()).add(intern_transition(right_symbol, r10, r11))

    internal = _apply_rewrites(automaton.internal, to_remove, to_add)
    return TreeAutomaton._make(
        automaton.num_qubits, automaton.roots, internal, dict(automaton.leaves)
    )


def backward_swap(automaton: TreeAutomaton, qubit: int) -> TreeAutomaton:
    """Backward variable-order swapping ``b.swap_qubit`` (Algorithm 8).

    Inverse of :func:`forward_swap`: pulls the ``x_qubit`` transitions one
    layer up, restoring the original child symbols from the merged tags.
    """
    fresh_counter = automaton.next_free_state()
    to_remove: Dict[int, Set[InternalTransition]] = {}
    to_add: Dict[int, List[InternalTransition]] = {}

    for parent, transitions in automaton.internal.items():
        for symbol, left, right in transitions:
            tags = symbol_tags(symbol)
            if len(tags) != 2:
                continue
            lower_qubit = symbol_qubit(symbol)
            left_transitions = [
                t for t in automaton.internal.get(left, ()) if symbol_qubit(t[0]) == qubit
            ]
            right_transitions = [
                t for t in automaton.internal.get(right, ()) if symbol_qubit(t[0]) == qubit
            ]
            if not left_transitions or not right_transitions:
                continue
            to_remove.setdefault(parent, set()).add(intern_transition(symbol, left, right))
            for left_symbol, c00, c01 in left_transitions:
                for right_symbol, c10, c11 in right_transitions:
                    if symbol_tags(left_symbol) != symbol_tags(right_symbol):
                        continue
                    upper_tags = symbol_tags(left_symbol)
                    new_left = fresh_counter
                    new_right = fresh_counter + 1
                    fresh_counter += 2
                    to_add.setdefault(parent, []).append(
                        intern_transition(make_symbol(qubit, upper_tags), new_left, new_right)
                    )
                    to_add.setdefault(new_left, []).append(
                        intern_transition(make_symbol(lower_qubit, (tags[0],)), c00, c10)
                    )
                    to_add.setdefault(new_right, []).append(
                        intern_transition(make_symbol(lower_qubit, (tags[1],)), c01, c11)
                    )
                    to_remove.setdefault(left, set()).add(intern_transition(left_symbol, c00, c01))
                    to_remove.setdefault(right, set()).add(intern_transition(right_symbol, c10, c11))

    internal = _apply_rewrites(automaton.internal, to_remove, to_add)
    return TreeAutomaton._make(
        automaton.num_qubits, automaton.roots, internal, dict(automaton.leaves)
    )


def projection(automaton: TreeAutomaton, qubit: int, bit: int) -> TreeAutomaton:
    """The projection operation ``Prj(A, x_qubit, bit)`` (Eq. 13).

    Computes the TA of ``T_{x_qubit}`` (``bit == 1``) or ``T_{x̄_qubit}``
    (``bit == 0``) for every tree ``T`` of the (tagged) input: the qubit's
    transitions are pushed down to the layer above the leaves with
    :func:`forward_swap`, copied there with :func:`subtree_copy`, and the
    variable order is restored with :func:`backward_swap`.
    """
    depth_moves = automaton.num_qubits - 1 - qubit
    result = automaton
    for _ in range(depth_moves):
        # The intermediate reduction keeps the swapped automata small; it merges
        # states with identical transition sets, which preserves the (tagged)
        # language and therefore tag preservation (cf. the paper's remark that
        # "TA minimization algorithms can help to significantly reduce the cost").
        result = forward_swap(result, qubit).reduce()
    result = subtree_copy(result, qubit, bit)
    for _ in range(depth_moves):
        result = backward_swap(result, qubit).reduce()
    return result


def binary_operation(
    left: TreeAutomaton, right: TreeAutomaton, subtract: bool = False
) -> TreeAutomaton:
    """The binary operation ``Bin(A1, A2, ±)`` (Algorithm 9).

    A product construction over matching (tagged) symbols; leaf amplitudes are
    added (or subtracted).  Only pairs reachable from the root pairs are built.

    Dispatches to the active kernel backend (:mod:`repro.ta.kernel`); the
    reference worklist construction lives in
    :func:`repro.ta.kernel.reference.binary_operation`.
    """
    return kernel.active_backend().binary_operation(left, right, subtract)


def _note_phase(phase_seconds: Optional[Dict[str, float]], name: str, start: float) -> float:
    """Accumulate ``now - start`` under ``name`` (no-op without a dict); returns now."""
    now = time.perf_counter()
    if phase_seconds is not None:
        phase_seconds[name] = phase_seconds.get(name, 0.0) + (now - start)
    return now


def apply_composition_gate(
    automaton: TreeAutomaton,
    gate: Gate,
    formula: UpdateFormula = None,
    phase_seconds: Optional[Dict[str, float]] = None,
) -> TreeAutomaton:
    """Apply a gate with the composition-based approach (Section 6.2, Fig. 3).

    ``phase_seconds`` optionally accumulates wall-clock per pipeline phase
    (``tag`` / ``terms`` / ``bin`` / ``untag``) for the engine's statistics.
    """
    if formula is None:
        formula = formula_for(gate)
    start = time.perf_counter()
    tagged = tag(automaton)
    start = _note_phase(phase_seconds, "tag", start)
    term_automata: List[TreeAutomaton] = []
    for term in formula.terms:
        term_automaton = tagged
        if term.projection is not None:
            proj_qubit, proj_bit = term.projection
            term_automaton = projection(term_automaton, proj_qubit, proj_bit)
        for res_qubit, res_bit in term.restrictions:
            term_automaton = restrict(term_automaton, res_qubit, res_bit)
        scalar = term.scalar if term.sign > 0 else -term.scalar
        if scalar != ONE:
            term_automaton = multiply(term_automaton, scalar)
        term_automata.append(term_automaton)
    start = _note_phase(phase_seconds, "terms", start)
    combined = term_automata[0]
    for term_automaton in term_automata[1:]:
        combined = binary_operation(combined, term_automaton)
    if formula.sqrt2_divisions:
        combined = multiply(combined, AlgebraicNumber(1, 0, 0, 0, formula.sqrt2_divisions))
    start = _note_phase(phase_seconds, "bin", start)
    result = untag(combined)
    _note_phase(phase_seconds, "untag", start)
    return result
