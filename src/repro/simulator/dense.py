"""Dense numpy-based simulator and unitary builder.

This is a second, fully independent reference implementation used for
cross-checking on small circuits (tests, the brute-force equivalence baseline
and witness validation).  It works with ``complex128`` floating point — which
is exactly the kind of representation the paper's exact encoding avoids — so
all comparisons against it are made with numeric tolerances.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..algebraic import gate_matrix, matrix_to_complex
from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..states import QuantumState, bits_to_int

__all__ = ["apply_gate_dense", "simulate_dense", "circuit_unitary", "state_fidelity"]

_MATRIX_NAMES = {
    "x": "X",
    "y": "Y",
    "z": "Z",
    "h": "H",
    "s": "S",
    "sdg": "SDG",
    "t": "T",
    "tdg": "TDG",
    "rx": "RX",
    "ry": "RY",
    "cx": "CX",
    "cz": "CZ",
    "cs": "CS",
    "csdg": "CSDG",
    "ct": "CT",
    "ctdg": "CTDG",
    "ccx": "CCX",
    "cswap": "FREDKIN",
}


def _gate_array(gate: Gate) -> np.ndarray:
    if gate.kind == "swap":
        return np.array(
            [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
        )
    return matrix_to_complex(gate_matrix(_MATRIX_NAMES[gate.kind]))


def apply_gate_dense(vector: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Apply one gate to a dense state vector (MSBF basis ordering)."""
    matrix = _gate_array(gate)
    operands = gate.qubits
    arity = len(operands)
    result = np.zeros_like(vector)
    for index in range(vector.shape[0]):
        amplitude = vector[index]
        if amplitude == 0:
            continue
        bits = [(index >> (num_qubits - 1 - q)) & 1 for q in range(num_qubits)]
        column = 0
        for qubit in operands:
            column = (column << 1) | bits[qubit]
        for row in range(1 << arity):
            entry = matrix[row, column]
            if entry == 0:
                continue
            new_bits = list(bits)
            for position, qubit in enumerate(operands):
                new_bits[qubit] = (row >> (arity - 1 - position)) & 1
            result[bits_to_int(new_bits)] += entry * amplitude
    return result


def simulate_dense(circuit: Circuit, initial: Optional[QuantumState] = None) -> np.ndarray:
    """Simulate the circuit densely; returns the final ``2^n`` complex vector."""
    num_qubits = circuit.num_qubits
    if initial is None:
        vector = np.zeros(1 << num_qubits, dtype=complex)
        vector[0] = 1.0
    else:
        vector = initial.to_vector()
    for gate in circuit:
        vector = apply_gate_dense(vector, gate, num_qubits)
    return vector


def circuit_unitary(circuit: Circuit) -> np.ndarray:
    """Build the full ``2^n x 2^n`` unitary of the circuit (small circuits only)."""
    num_qubits = circuit.num_qubits
    if num_qubits > 14:
        raise ValueError("circuit_unitary is limited to 14 qubits")
    dimension = 1 << num_qubits
    unitary = np.eye(dimension, dtype=complex)
    for gate in circuit:
        columns = [apply_gate_dense(unitary[:, j].copy(), gate, num_qubits) for j in range(dimension)]
        unitary = np.stack(columns, axis=1)
    return unitary


def state_fidelity(left: np.ndarray, right: np.ndarray) -> float:
    """``|<left|right>|^2`` for two dense state vectors."""
    return float(abs(np.vdot(left, right)) ** 2)
