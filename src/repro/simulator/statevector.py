"""Exact sparse state-vector simulator (the reproduction's SliQSim substitute).

The paper compares against SliQSim, a decision-diagram simulator that uses the
same algebraic amplitude encoding.  This module provides a functionally
equivalent substrate: a simulator that applies gates by *matrix semantics*
(Appendix A) to a sparse map from basis states to exact algebraic amplitudes.
It is deliberately independent from the symbolic update formulae of
:mod:`repro.core.formulas`, so the two can be cross-checked against each other
(Theorem 4.1) in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..algebraic import ZERO, AlgebraicNumber, gate_matrix
from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..states import QuantumState

__all__ = ["StateVectorSimulator", "simulate_circuit", "simulate_basis_states"]

#: mapping from our gate kinds to the matrix names in repro.algebraic.matrices
_MATRIX_NAMES = {
    "x": "X",
    "y": "Y",
    "z": "Z",
    "h": "H",
    "s": "S",
    "sdg": "SDG",
    "t": "T",
    "tdg": "TDG",
    "rx": "RX",
    "ry": "RY",
    "cx": "CX",
    "cz": "CZ",
    "cs": "CS",
    "csdg": "CSDG",
    "ct": "CT",
    "ctdg": "CTDG",
    "ccx": "CCX",
    "cswap": "FREDKIN",
}


class StateVectorSimulator:
    """Applies circuits to exact sparse quantum states using matrix semantics."""

    def apply_gate(self, state: QuantumState, gate: Gate) -> QuantumState:
        """Return the state after applying one gate."""
        if gate.kind == "swap":
            a, b = gate.qubits
            result = QuantumState(state.num_qubits)
            for bits, amplitude in state.items():
                swapped = list(bits)
                swapped[a], swapped[b] = swapped[b], swapped[a]
                result[tuple(swapped)] = result[tuple(swapped)] + amplitude
            return result
        matrix = gate_matrix(_MATRIX_NAMES[gate.kind])
        operands = gate.qubits
        arity = len(operands)
        result = QuantumState(state.num_qubits)
        for bits, amplitude in state.items():
            column = 0
            for qubit in operands:
                column = (column << 1) | bits[qubit]
            for row in range(1 << arity):
                entry = matrix[row][column]
                if entry.is_zero():
                    continue
                new_bits = list(bits)
                for position, qubit in enumerate(operands):
                    new_bits[qubit] = (row >> (arity - 1 - position)) & 1
                new_bits = tuple(new_bits)
                result[new_bits] = result[new_bits] + entry * amplitude
        return result

    def run(self, circuit: Circuit, initial: QuantumState) -> QuantumState:
        """Return the state after running the full circuit on ``initial``."""
        if initial.num_qubits != circuit.num_qubits:
            raise ValueError("initial state width does not match the circuit")
        state = initial
        for gate in circuit:
            state = self.apply_gate(state, gate)
        return state

    def run_on_basis(self, circuit: Circuit, basis) -> QuantumState:
        """Run the circuit on a single computational basis state."""
        return self.run(circuit, QuantumState.basis_state(circuit.num_qubits, basis))


def simulate_circuit(circuit: Circuit, initial: Optional[QuantumState] = None) -> QuantumState:
    """Simulate a circuit from ``initial`` (default ``|0...0>``)."""
    simulator = StateVectorSimulator()
    if initial is None:
        initial = QuantumState.zero_state(circuit.num_qubits)
    return simulator.run(circuit, initial)


def simulate_basis_states(
    circuit: Circuit, basis_states: Iterable
) -> List[Tuple[Tuple[int, ...], QuantumState]]:
    """Run the circuit once per basis state, the way the paper drives SliQSim.

    Returns a list of ``(input_bits, output_state)`` pairs.  This is the
    baseline used in the Table 2 experiments: the simulator has to be run once
    for every state in the pre-condition, which is where the exponential
    factor of Grover-All and MCToffoli shows up.
    """
    simulator = StateVectorSimulator()
    results = []
    for basis in basis_states:
        state = QuantumState.basis_state(circuit.num_qubits, basis)
        results.append((state._normalise_basis(basis, circuit.num_qubits), simulator.run(circuit, state)))
    return results
