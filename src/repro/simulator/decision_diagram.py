"""Decision-diagram state representation with exact algebraic amplitudes.

SliQSim — the simulator the paper compares against in Table 2 — represents the
state vector as decision diagrams over the qubits instead of a flat array, so
that structured states (uniform superpositions, GHZ states, basis states with
untouched ancillas) take space proportional to the number of qubits rather
than ``2^n``.  This module provides that substrate in Python:

* :class:`DDManager` hash-conses nodes, so identical sub-vectors are stored
  once and shared;
* :class:`DDState` is one quantum state as a rooted, quasi-reduced diagram
  (every root-to-terminal path visits all ``n`` levels) whose terminal edges
  carry exact :class:`~repro.algebraic.omega.AlgebraicNumber` amplitudes;
* :class:`DecisionDiagramSimulator` applies circuits by linear combinations of
  cofactors — for a ``k``-qubit gate the ``2^k x 2^k`` matrix of Appendix A is
  applied to the ``2^k`` cofactor diagrams obtained by restricting the operand
  qubits, all through cached diagram addition and scaling.

Compared with true QMDDs the diagrams are *not* weight-normalised (the
algebraic ring has no exact division), so two sub-vectors that differ only by
a constant factor are not shared; sub-vectors that are exactly equal are.
This keeps all arithmetic exact while still giving the linear-size
representation for the structured states the paper's benchmarks produce.  The
test suite cross-checks the simulator against the sparse exact simulator; the
``node_count`` statistic makes the compactness argument measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..algebraic import ONE, ZERO, AlgebraicNumber, gate_matrix
from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from ..states import QuantumState

__all__ = ["DDManager", "DDState", "DecisionDiagramSimulator", "simulate_decision_diagram"]


@dataclass(frozen=True)
class _Node:
    """An internal diagram node: branch on one qubit, children are edges."""

    qubit: int
    low: "Edge"
    high: "Edge"


#: An edge is ``(weight, node)``; ``node is None`` marks the terminal.  The
#: amplitude of a path is the product of the weights along it.
Edge = Tuple[AlgebraicNumber, Optional[_Node]]

_ZERO_EDGE: Edge = (ZERO, None)


class DDManager:
    """Hash-consing manager: guarantees identical sub-diagrams are one object."""

    def __init__(self) -> None:
        self._unique: Dict[Tuple[int, int, AlgebraicNumber, int, AlgebraicNumber], _Node] = {}

    def node(self, qubit: int, low: Edge, high: Edge) -> _Node:
        """Return the unique node for ``(qubit, low, high)``."""
        key = (qubit, id(low[1]), low[0], id(high[1]), high[0])
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        created = _Node(qubit, low, high)
        self._unique[key] = created
        return created

    def live_nodes(self) -> int:
        """Number of distinct nodes ever created (an upper bound on live nodes)."""
        return len(self._unique)


class DDState:
    """A quantum state stored as a shared decision diagram."""

    def __init__(self, manager: DDManager, num_qubits: int, root: Edge):
        self.manager = manager
        self.num_qubits = num_qubits
        self.root = root

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_quantum_state(cls, state: QuantumState, manager: Optional[DDManager] = None) -> "DDState":
        """Build a diagram from an explicit sparse state."""
        manager = manager or DDManager()

        def build(level: int, suffixes: Dict[Tuple[int, ...], AlgebraicNumber]) -> Edge:
            if not suffixes:
                return _ZERO_EDGE
            if level == state.num_qubits:
                amplitude = suffixes.get((), ZERO)
                return _ZERO_EDGE if amplitude.is_zero() else (amplitude, None)
            low_suffixes = {bits[1:]: amp for bits, amp in suffixes.items() if bits[0] == 0}
            high_suffixes = {bits[1:]: amp for bits, amp in suffixes.items() if bits[0] == 1}
            low = build(level + 1, low_suffixes)
            high = build(level + 1, high_suffixes)
            if low == _ZERO_EDGE and high == _ZERO_EDGE:
                return _ZERO_EDGE
            return (ONE, manager.node(level, low, high))

        initial = {bits: amplitude for bits, amplitude in state.items()}
        return cls(manager, state.num_qubits, build(0, initial))

    @classmethod
    def basis_state(cls, num_qubits: int, basis, manager: Optional[DDManager] = None) -> "DDState":
        """The computational basis state ``|basis>`` as a diagram."""
        return cls.from_quantum_state(QuantumState.basis_state(num_qubits, basis), manager)

    @classmethod
    def zero_state(cls, num_qubits: int, manager: Optional[DDManager] = None) -> "DDState":
        """``|0...0>`` as a diagram."""
        return cls.basis_state(num_qubits, (0,) * num_qubits, manager)

    # ---------------------------------------------------------------- queries
    def amplitude(self, basis) -> AlgebraicNumber:
        """The exact amplitude at one computational-basis position."""
        bits = QuantumState._normalise_basis(basis, self.num_qubits)
        weight, node = self.root
        for bit in bits:
            if weight.is_zero() or node is None:
                return ZERO
            edge = node.high if bit else node.low
            weight = weight * edge[0]
            node = edge[1]
        return ZERO if node is not None else weight

    def to_quantum_state(self) -> QuantumState:
        """Expand back into the sparse function representation."""
        result = QuantumState(self.num_qubits)

        def walk(edge: Edge, prefix: Tuple[int, ...], accumulated: AlgebraicNumber) -> None:
            weight, node = edge
            if weight.is_zero():
                return
            total = accumulated * weight
            if node is None:
                if len(prefix) == self.num_qubits and not total.is_zero():
                    result[prefix] = result[prefix] + total
                return
            walk(node.low, prefix + (0,), total)
            walk(node.high, prefix + (1,), total)

        walk(self.root, (), ONE)
        return result

    def node_count(self) -> int:
        """Number of distinct nodes reachable from the root (the DD size metric)."""
        seen = set()

        def count(edge: Edge) -> None:
            node = edge[1]
            if node is None or id(node) in seen:
                return
            seen.add(id(node))
            count(node.low)
            count(node.high)

        count(self.root)
        return len(seen)

    def is_zero(self) -> bool:
        """True iff every amplitude is zero."""
        return self.root == _ZERO_EDGE or self.root[0].is_zero()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DDState):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self.to_quantum_state() == other.to_quantum_state()

    def __repr__(self) -> str:
        return f"DDState(num_qubits={self.num_qubits}, nodes={self.node_count()})"


class DecisionDiagramSimulator:
    """Applies circuits to :class:`DDState` diagrams with exact amplitudes."""

    def __init__(self, manager: Optional[DDManager] = None):
        self.manager = manager or DDManager()

    # ------------------------------------------------------------- primitives
    def _add(self, left: Edge, right: Edge, level: int, num_qubits: int, cache: Dict) -> Edge:
        if left[0].is_zero():
            return right
        if right[0].is_zero():
            return left
        key = (id(left[1]), left[0], id(right[1]), right[0], level)
        if key in cache:
            return cache[key]
        if level == num_qubits:
            total = left[0] + right[0]
            result: Edge = _ZERO_EDGE if total.is_zero() else (total, None)
        else:
            left_node = left[1]
            right_node = right[1]
            low = self._add(
                self._scale(left_node.low, left[0]) if left_node else _ZERO_EDGE,
                self._scale(right_node.low, right[0]) if right_node else _ZERO_EDGE,
                level + 1,
                num_qubits,
                cache,
            )
            high = self._add(
                self._scale(left_node.high, left[0]) if left_node else _ZERO_EDGE,
                self._scale(right_node.high, right[0]) if right_node else _ZERO_EDGE,
                level + 1,
                num_qubits,
                cache,
            )
            if low == _ZERO_EDGE and high == _ZERO_EDGE:
                result = _ZERO_EDGE
            else:
                result = (ONE, self.manager.node(level, low, high))
        cache[key] = result
        return result

    @staticmethod
    def _scale(edge: Edge, scalar: AlgebraicNumber) -> Edge:
        if scalar.is_zero() or edge[0].is_zero():
            return _ZERO_EDGE
        if scalar == ONE:
            return edge
        return (edge[0] * scalar, edge[1])

    def _overwrite(
        self, edge: Edge, level: int, num_qubits: int, qubit: int, read_bit: int, write_bit: int, cache: Dict
    ) -> Edge:
        """Take the ``read_bit`` branch at ``qubit`` and store it in the ``write_bit`` branch.

        The other branch becomes zero; levels above and below are rebuilt with
        sharing.  This is the cofactor-extraction + re-insertion step of the
        gate application.
        """
        if edge[0].is_zero():
            return _ZERO_EDGE
        key = (id(edge[1]), edge[0], level, qubit, read_bit, write_bit)
        if key in cache:
            return cache[key]
        node = edge[1]
        if level == qubit:
            chosen = self._scale(node.high if read_bit else node.low, edge[0])
            if chosen == _ZERO_EDGE:
                result = _ZERO_EDGE
            else:
                low, high = (chosen, _ZERO_EDGE) if write_bit == 0 else (_ZERO_EDGE, chosen)
                result = (ONE, self.manager.node(level, low, high))
        else:
            if node is None:
                result = edge
            else:
                low = self._overwrite(
                    self._scale(node.low, edge[0]), level + 1, num_qubits, qubit, read_bit, write_bit, cache
                )
                high = self._overwrite(
                    self._scale(node.high, edge[0]), level + 1, num_qubits, qubit, read_bit, write_bit, cache
                )
                if low == _ZERO_EDGE and high == _ZERO_EDGE:
                    result = _ZERO_EDGE
                else:
                    result = (ONE, self.manager.node(level, low, high))
        cache[key] = result
        return result

    # ------------------------------------------------------------------ gates
    def apply_gate(self, state: DDState, gate: Gate) -> DDState:
        """Apply one gate by matrix semantics on the operand cofactors."""
        if gate.kind == "swap":
            a, b = gate.qubits
            return self.apply_gate(
                self.apply_gate(self.apply_gate(state, Gate("cx", (a, b))), Gate("cx", (b, a))),
                Gate("cx", (a, b)),
            )
        matrix_name = {"cswap": "FREDKIN"}.get(gate.kind, gate.kind.upper())
        matrix = gate_matrix(matrix_name)
        operands = gate.qubits
        arity = len(operands)
        num_qubits = state.num_qubits
        add_cache: Dict = {}
        result: Edge = _ZERO_EDGE
        for column in range(1 << arity):
            column_bits = [(column >> (arity - 1 - position)) & 1 for position in range(arity)]
            for row in range(1 << arity):
                entry = matrix[row][column]
                if entry.is_zero():
                    continue
                row_bits = [(row >> (arity - 1 - position)) & 1 for position in range(arity)]
                transformed = state.root
                for position, qubit in enumerate(operands):
                    transformed = self._overwrite(
                        transformed, 0, num_qubits, qubit, column_bits[position], row_bits[position], {}
                    )
                transformed = self._scale(transformed, entry)
                result = self._add(result, transformed, 0, num_qubits, add_cache)
        return DDState(self.manager, num_qubits, result)

    def run(self, circuit: Circuit, initial: DDState) -> DDState:
        """Run a whole circuit."""
        if initial.num_qubits != circuit.num_qubits:
            raise ValueError("initial state width does not match the circuit")
        state = initial
        for gate in circuit:
            state = self.apply_gate(state, gate)
        return state

    def run_on_basis(self, circuit: Circuit, basis) -> DDState:
        """Run the circuit on one computational basis input."""
        return self.run(circuit, DDState.basis_state(circuit.num_qubits, basis, self.manager))


def simulate_decision_diagram(circuit: Circuit, initial: Optional[QuantumState] = None) -> QuantumState:
    """Convenience wrapper mirroring :func:`repro.simulator.statevector.simulate_circuit`."""
    simulator = DecisionDiagramSimulator()
    if initial is None:
        start = DDState.zero_state(circuit.num_qubits, simulator.manager)
    else:
        start = DDState.from_quantum_state(initial, simulator.manager)
    return simulator.run(circuit, start).to_quantum_state()
