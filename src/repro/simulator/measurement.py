"""Computational-basis measurement on exact quantum states (Section 2.1).

Implements the measurement semantics described in the paper's preliminaries:
the probability that qubit ``j`` collapses to ``|0>``/``|1>`` and the
post-measurement state with the surviving amplitudes re-normalised by
``1/sqrt(prob)`` (only exact powers of ``1/sqrt(2)`` can be renormalised
exactly; other probabilities leave the state un-normalised and callers can
inspect :func:`measurement_probability` instead).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..algebraic import AlgebraicNumber, ZERO
from ..states import QuantumState

__all__ = ["measurement_probability", "collapse", "outcome_distribution"]


def measurement_probability(state: QuantumState, qubit: int, value: int) -> float:
    """Probability (as a float) that measuring ``qubit`` yields ``value``."""
    if value not in (0, 1):
        raise ValueError("value must be 0 or 1")
    total = ZERO
    for bits, amplitude in state.items():
        if bits[qubit] == value:
            total = total + amplitude.abs_squared()
    return total.to_float()


def collapse(state: QuantumState, qubit: int, value: int) -> QuantumState:
    """Post-measurement state after observing ``value`` on ``qubit``.

    Amplitudes of the other outcome become zero; the remaining amplitudes are
    re-normalised exactly when the outcome probability is a power of ``1/2``
    (the common case for the circuits considered in the paper), and left
    unnormalised otherwise.
    """
    survivors: Dict[Tuple[int, ...], AlgebraicNumber] = {
        bits: amplitude for bits, amplitude in state.items() if bits[qubit] == value
    }
    if not survivors:
        raise ValueError(f"outcome {value} on qubit {qubit} has probability zero")
    collapsed = QuantumState(state.num_qubits, survivors)
    probability = collapsed.norm_squared()
    scale = _exact_inverse_sqrt(probability)
    if scale is not None:
        collapsed = collapsed.scaled(scale)
    return collapsed


def _exact_inverse_sqrt(probability: AlgebraicNumber) -> Optional[AlgebraicNumber]:
    """Return ``1/sqrt(probability)`` when the probability is ``(1/2)^m``, else None."""
    value = probability.to_complex()
    if abs(value.imag) > 1e-12 or value.real <= 0:
        return None
    for exponent in range(64):
        if abs(value.real - 0.5 ** exponent) < 1e-12:
            # sqrt(2)^exponent, expressed through the (negative-k) normalisation
            return AlgebraicNumber(1, 0, 0, 0, -exponent)
    return None


def outcome_distribution(state: QuantumState) -> Dict[Tuple[int, ...], float]:
    """Full-basis measurement distribution as floats (for display and tests)."""
    return {bits: amplitude.abs_squared().to_float() for bits, amplitude in state.items()}
