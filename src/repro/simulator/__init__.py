"""Exact and dense quantum-circuit simulators (the SliQSim-style substrate)."""

from .decision_diagram import (
    DDManager,
    DDState,
    DecisionDiagramSimulator,
    simulate_decision_diagram,
)
from .dense import apply_gate_dense, circuit_unitary, simulate_dense, state_fidelity
from .measurement import collapse, measurement_probability, outcome_distribution
from .statevector import StateVectorSimulator, simulate_basis_states, simulate_circuit

__all__ = [
    "StateVectorSimulator",
    "simulate_circuit",
    "simulate_basis_states",
    "DDManager",
    "DDState",
    "DecisionDiagramSimulator",
    "simulate_decision_diagram",
    "apply_gate_dense",
    "simulate_dense",
    "circuit_unitary",
    "state_fidelity",
    "collapse",
    "measurement_probability",
    "outcome_distribution",
]
