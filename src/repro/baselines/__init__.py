"""Baseline equivalence checkers the paper compares against (substitutes).

* :mod:`repro.baselines.pathsum` — path-sum / phase-polynomial checking (Feynman),
* :mod:`repro.baselines.stimuli` — random stimuli (the stimuli part of QCEC),
* :mod:`repro.baselines.stabilizer` — CHP tableau simulation of the Clifford fragment,
* :mod:`repro.baselines.unitary` — brute-force unitary comparison (ground truth for tiny circuits).
"""

from .pathsum import PathSum, PathSumChecker, PathSumResult, PathSumVerdict
from .stabilizer import (
    CliffordTableau,
    StabilizerChecker,
    StabilizerResult,
    StabilizerState,
    StabilizerVerdict,
    is_clifford_circuit,
    is_clifford_gate,
)
from .stimuli import RandomStimuliChecker, StimuliResult, StimuliVerdict
from .unitary import UnitaryResult, check_unitary_equivalence, unitaries_equal_up_to_phase

__all__ = [
    "PathSum",
    "PathSumChecker",
    "PathSumResult",
    "PathSumVerdict",
    "CliffordTableau",
    "StabilizerChecker",
    "StabilizerResult",
    "StabilizerState",
    "StabilizerVerdict",
    "is_clifford_circuit",
    "is_clifford_gate",
    "RandomStimuliChecker",
    "StimuliResult",
    "StimuliVerdict",
    "UnitaryResult",
    "check_unitary_equivalence",
    "unitaries_equal_up_to_phase",
]
