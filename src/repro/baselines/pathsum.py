"""Path-sum (phase-polynomial) equivalence checking — the Feynman substitute.

The Feynman tool [Amy 2018] verifies circuit equivalence by writing a circuit
as a *sum over paths*

    |x>  ->  (1/sqrt(2)^p)  sum_{y in {0,1}^p}  w^{phi(x, y)}  |f(x, y)>

where ``phi`` is a phase polynomial with coefficients modulo 8 (in units of
pi/4), ``f`` is a tuple of Boolean (XOR-of-AND) polynomials and ``y`` are the
path variables introduced by Hadamard gates.  Reduction rules eliminate path
variables; a circuit is proved equivalent to another by reducing ``C1 ; C2†``
to the identity sum.

This module implements that pipeline for the Table 1 gate set:

* Boolean functions are multilinear polynomials over GF(2)
  (:class:`BoolPoly`), phase polynomials are multilinear with integer
  coefficients mod 8 (:class:`PhasePoly`);
* gates update the registers symbolically (Toffoli multiplies Boolean
  polynomials, Hadamard allocates a fresh path variable, T/S/Z/CZ add phase
  terms, Y/Rx/Ry are expressed through X, Z, S, H and global phases);
* the reduction applies the [Elim] and [HH] rules of the path-sum calculus
  until no rule fires.

The verdicts mirror Feynman's: ``"equal"`` (reduced to the identity),
``"not_equal"`` (a fully reduced, path-variable-free sum that differs from the
identity), or ``"inconclusive"`` (reduction got stuck) — the ``--`` entries of
Table 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate

__all__ = ["BoolPoly", "PhasePoly", "PathSum", "PathSumChecker", "PathSumVerdict"]

Monomial = FrozenSet[str]


class BoolPoly:
    """A multilinear polynomial over GF(2): a set of monomials (XOR of ANDs)."""

    __slots__ = ("monomials",)

    def __init__(self, monomials: Optional[FrozenSet[Monomial]] = None):
        self.monomials: FrozenSet[Monomial] = monomials or frozenset()

    @classmethod
    def zero(cls) -> "BoolPoly":
        return cls(frozenset())

    @classmethod
    def one(cls) -> "BoolPoly":
        return cls(frozenset({frozenset()}))

    @classmethod
    def variable(cls, name: str) -> "BoolPoly":
        return cls(frozenset({frozenset({name})}))

    def __xor__(self, other: "BoolPoly") -> "BoolPoly":
        return BoolPoly(self.monomials ^ other.monomials)

    def __and__(self, other: "BoolPoly") -> "BoolPoly":
        if not self.monomials or not other.monomials:
            return BoolPoly.zero()
        result: set = set()
        for left in self.monomials:
            for right in other.monomials:
                merged = left | right
                if merged in result:
                    result.remove(merged)
                else:
                    result.add(merged)
        return BoolPoly(frozenset(result))

    def is_zero(self) -> bool:
        return not self.monomials

    def is_one(self) -> bool:
        return self.monomials == frozenset({frozenset()})

    def is_variable(self) -> Optional[str]:
        """Return the variable name if the polynomial is a single bare variable."""
        if len(self.monomials) == 1:
            (monomial,) = self.monomials
            if len(monomial) == 1:
                return next(iter(monomial))
        return None

    def variables(self) -> FrozenSet[str]:
        names: set = set()
        for monomial in self.monomials:
            names |= monomial
        return frozenset(names)

    def contains(self, name: str) -> bool:
        return any(name in monomial for monomial in self.monomials)

    def substitute(self, name: str, replacement: "BoolPoly") -> "BoolPoly":
        """Substitute a Boolean polynomial for a variable."""
        result = BoolPoly.zero()
        for monomial in self.monomials:
            term = BoolPoly.one()
            for variable in monomial:
                factor = replacement if variable == name else BoolPoly.variable(variable)
                term = term & factor
            result = result ^ term
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoolPoly):
            return NotImplemented
        return self.monomials == other.monomials

    def __hash__(self) -> int:
        return hash(self.monomials)

    def __repr__(self) -> str:
        if not self.monomials:
            return "0"
        terms = []
        for monomial in sorted(self.monomials, key=lambda m: (len(m), sorted(m))):
            terms.append("1" if not monomial else "*".join(sorted(monomial)))
        return " ^ ".join(terms)


class PhasePoly:
    """A multilinear phase polynomial with coefficients modulo 8 (units of pi/4)."""

    __slots__ = ("terms",)

    def __init__(self, terms: Optional[Dict[Monomial, int]] = None):
        self.terms: Dict[Monomial, int] = {}
        for monomial, coefficient in (terms or {}).items():
            coefficient %= 8
            if coefficient:
                self.terms[monomial] = coefficient

    @classmethod
    def zero(cls) -> "PhasePoly":
        return cls()

    def add_term(self, coefficient: int, polynomial: BoolPoly) -> "PhasePoly":
        """Add ``coefficient * polynomial`` where the Boolean polynomial is lifted
        to an integer-valued (pseudo-Boolean) term via inclusion-exclusion on pairs.

        For the gate set used here only linear-use patterns occur, so lifting a
        Boolean XOR ``a ^ b`` uses ``a + b - 2ab``; the recursion handles longer
        XOR chains.
        """
        lifted = _lift_xor(list(polynomial.monomials))
        result = dict(self.terms)
        for monomial, value in lifted.items():
            result[monomial] = (result.get(monomial, 0) + coefficient * value) % 8
        return PhasePoly(result)

    def variables(self) -> FrozenSet[str]:
        names: set = set()
        for monomial in self.terms:
            names |= monomial
        return frozenset(names)

    def contains(self, name: str) -> bool:
        return any(name in monomial for monomial in self.terms)

    def coefficient(self, monomial: Monomial) -> int:
        return self.terms.get(frozenset(monomial), 0)

    def factor_out(self, name: str) -> Tuple["PhasePoly", "PhasePoly"]:
        """Write the polynomial as ``name * quotient + remainder``."""
        quotient: Dict[Monomial, int] = {}
        remainder: Dict[Monomial, int] = {}
        for monomial, coefficient in self.terms.items():
            if name in monomial:
                quotient[monomial - {name}] = coefficient
            else:
                remainder[monomial] = coefficient
        return PhasePoly(quotient), PhasePoly(remainder)

    def substitute(self, name: str, replacement: BoolPoly) -> "PhasePoly":
        """Substitute a Boolean polynomial for a variable in every monomial."""
        result = PhasePoly.zero()
        for monomial, coefficient in self.terms.items():
            if name not in monomial:
                result = result + PhasePoly({monomial: coefficient})
                continue
            rest = BoolPoly(frozenset({monomial - {name}}))
            product = replacement & rest if not rest.is_zero() else replacement
            if monomial - {name} == frozenset():
                product = replacement
            result = result.add_term(coefficient, product)
        return result

    def __add__(self, other: "PhasePoly") -> "PhasePoly":
        result = dict(self.terms)
        for monomial, coefficient in other.terms.items():
            result[monomial] = (result.get(monomial, 0) + coefficient) % 8
        return PhasePoly(result)

    def is_zero(self) -> bool:
        return not self.terms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PhasePoly):
            return NotImplemented
        return self.terms == other.terms

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coefficient in sorted(self.terms.items(), key=lambda kv: (len(kv[0]), sorted(kv[0]))):
            variables = "*".join(sorted(monomial)) if monomial else "1"
            parts.append(f"{coefficient}*{variables}")
        return " + ".join(parts)


def _lift_xor(monomials: List[Monomial]) -> Dict[Monomial, int]:
    """Lift an XOR of monomials to an integer polynomial: a ^ b = a + b - 2ab."""
    if not monomials:
        return {}
    if len(monomials) == 1:
        return {monomials[0]: 1}
    head, rest = monomials[0], _lift_xor(monomials[1:])
    result: Dict[Monomial, int] = dict(rest)
    result[head] = (result.get(head, 0) + 1) % 8
    for monomial, coefficient in rest.items():
        merged = head | monomial
        result[merged] = (result.get(merged, 0) - 2 * coefficient) % 8
    return {m: c % 8 for m, c in result.items() if c % 8}


@dataclass
class PathSum:
    """A path-sum: output Boolean functions, phase polynomial, normalisation."""

    outputs: List[BoolPoly]
    phase: PhasePoly = field(default_factory=PhasePoly.zero)
    #: number of 1/sqrt(2) factors accumulated (one per Hadamard)
    sqrt2_factors: int = 0
    #: path variables still to be summed over
    path_variables: List[str] = field(default_factory=list)
    #: global phase in units of pi/4
    global_phase: int = 0

    @classmethod
    def identity(cls, num_qubits: int) -> "PathSum":
        return cls(outputs=[BoolPoly.variable(f"x{i}") for i in range(num_qubits)])

    def is_identity(self, num_qubits: int) -> bool:
        """True iff the sum is the identity map (up to global phase)."""
        if self.path_variables or self.sqrt2_factors:
            return False
        non_constant = {m: c for m, c in self.phase.terms.items() if m}
        if non_constant:
            return False
        return all(self.outputs[i] == BoolPoly.variable(f"x{i}") for i in range(num_qubits))


class PathSumVerdict:
    """Verdict strings mirroring Feynman's output."""

    EQUAL = "equal"
    NOT_EQUAL = "not_equal"
    INCONCLUSIVE = "inconclusive"


@dataclass
class PathSumResult:
    """Outcome of a path-sum equivalence check."""

    verdict: str
    seconds: float
    remaining_path_variables: int = 0

    def __bool__(self) -> bool:
        return self.verdict == PathSumVerdict.EQUAL


class PathSumChecker:
    """Builds and reduces path sums; checks circuit equivalence via ``C1 ; C2†``."""

    def __init__(self, max_monomials: int = 20000):
        #: safety valve against exponential blow-up of the Boolean polynomials
        self.max_monomials = max_monomials

    # ------------------------------------------------------------------ build
    def symbolic_execution(self, circuit: Circuit) -> PathSum:
        """Symbolically execute a circuit starting from the identity path sum."""
        path_sum = PathSum.identity(circuit.num_qubits)
        fresh = [0]

        def new_path_variable() -> str:
            fresh[0] += 1
            return f"y{fresh[0]}"

        for gate in circuit.decomposed():
            self._apply(path_sum, gate, new_path_variable)
            total = sum(len(poly.monomials) for poly in path_sum.outputs)
            if total > self.max_monomials:
                raise OverflowError("path-sum symbolic execution exceeded the monomial budget")
        return path_sum

    def _apply(self, path_sum: PathSum, gate: Gate, new_path_variable) -> None:
        outputs = path_sum.outputs
        kind = gate.kind
        target = gate.target
        if kind == "x":
            outputs[target] = outputs[target] ^ BoolPoly.one()
        elif kind == "cx":
            control = gate.qubits[0]
            outputs[target] = outputs[target] ^ outputs[control]
        elif kind == "ccx":
            control_a, control_b = gate.qubits[0], gate.qubits[1]
            outputs[target] = outputs[target] ^ (outputs[control_a] & outputs[control_b])
        elif kind == "z":
            path_sum.phase = path_sum.phase.add_term(4, outputs[target])
        elif kind == "s":
            path_sum.phase = path_sum.phase.add_term(2, outputs[target])
        elif kind == "sdg":
            path_sum.phase = path_sum.phase.add_term(6, outputs[target])
        elif kind == "t":
            path_sum.phase = path_sum.phase.add_term(1, outputs[target])
        elif kind == "tdg":
            path_sum.phase = path_sum.phase.add_term(7, outputs[target])
        elif kind in ("cz", "cs", "csdg", "ct", "ctdg"):
            control = gate.qubits[0]
            units = {"cz": 4, "cs": 2, "csdg": 6, "ct": 1, "ctdg": 7}[kind]
            path_sum.phase = path_sum.phase.add_term(units, outputs[control] & outputs[target])
        elif kind == "h":
            variable = new_path_variable()
            path_sum.path_variables.append(variable)
            path_sum.phase = path_sum.phase.add_term(4, BoolPoly.variable(variable) & outputs[target])
            outputs[target] = BoolPoly.variable(variable)
            path_sum.sqrt2_factors += 1
        elif kind == "y":
            # Y = i X Z: apply Z, then X, add global phase i (2 units of pi/4)
            self._apply(path_sum, Gate("z", (target,)), new_path_variable)
            self._apply(path_sum, Gate("x", (target,)), new_path_variable)
            path_sum.global_phase = (path_sum.global_phase + 2) % 8
        elif kind == "rx":
            # Rx(pi/2) = w^{-1} H S H
            self._apply(path_sum, Gate("h", (target,)), new_path_variable)
            self._apply(path_sum, Gate("s", (target,)), new_path_variable)
            self._apply(path_sum, Gate("h", (target,)), new_path_variable)
            path_sum.global_phase = (path_sum.global_phase - 1) % 8
        elif kind == "ry":
            # Ry(pi/2) = H Z  (Z first, then H)
            self._apply(path_sum, Gate("z", (target,)), new_path_variable)
            self._apply(path_sum, Gate("h", (target,)), new_path_variable)
        else:
            raise ValueError(f"path-sum execution does not support gate {kind!r}")

    # ----------------------------------------------------------------- reduce
    def reduce(self, path_sum: PathSum) -> PathSum:
        """Eliminate path variables with the [Elim] and [HH] rules until stuck."""
        changed = True
        while changed:
            changed = False
            for variable in list(path_sum.path_variables):
                if self._try_eliminate(path_sum, variable):
                    changed = True
                    break
        return path_sum

    def _try_eliminate(self, path_sum: PathSum, variable: str) -> bool:
        used_in_outputs = any(poly.contains(variable) for poly in path_sum.outputs)
        quotient, remainder = path_sum.phase.factor_out(variable)
        # [Elim]: the variable appears nowhere -> summing over it contributes a factor 2
        if not used_in_outputs and quotient.is_zero():
            path_sum.path_variables.remove(variable)
            path_sum.sqrt2_factors -= 2
            return True
        # [HH]: phase = 4 * variable * (other + Q) + remainder, with `other` a distinct
        # path variable; summing over `variable` forces other := Q and yields factor 2.
        if used_in_outputs or quotient.is_zero():
            return False
        if any(coefficient != 4 for coefficient in quotient.terms.values()):
            return False
        # quotient (mod 2) must contain a bare path variable to substitute away
        for monomial in quotient.terms:
            if len(monomial) == 1:
                other = next(iter(monomial))
                if other == variable or not other.startswith("y"):
                    continue
                if other not in path_sum.path_variables:
                    continue
                if any(other in m for m in quotient.terms if m != monomial):
                    continue  # `other` must occur linearly in Q for the substitution to be valid
                # Q = quotient - other   (as a GF(2) polynomial)
                substitution = BoolPoly(frozenset(m for m in quotient.terms if m != monomial))
                path_sum.phase = remainder.substitute(other, substitution)
                path_sum.outputs = [
                    poly.substitute(other, substitution) if poly.contains(other) else poly
                    for poly in path_sum.outputs
                ]
                path_sum.path_variables.remove(variable)
                path_sum.path_variables.remove(other)
                path_sum.sqrt2_factors -= 2
                return True
        return False

    # ------------------------------------------------------------ equivalence
    def check_equivalence(self, first: Circuit, second: Circuit) -> PathSumResult:
        """Check whether ``first`` and ``second`` implement the same unitary."""
        start = time.perf_counter()
        if first.num_qubits != second.num_qubits:
            return PathSumResult(PathSumVerdict.NOT_EQUAL, time.perf_counter() - start)
        try:
            composed = first.concatenated(second.inverse())
        except ValueError:
            # the adjoint is outside the supported gate set (pi/2 rotations)
            return PathSumResult(PathSumVerdict.INCONCLUSIVE, time.perf_counter() - start)
        try:
            path_sum = self.symbolic_execution(composed)
        except OverflowError:
            return PathSumResult(PathSumVerdict.INCONCLUSIVE, time.perf_counter() - start)
        path_sum = self.reduce(path_sum)
        elapsed = time.perf_counter() - start
        if path_sum.is_identity(first.num_qubits):
            return PathSumResult(PathSumVerdict.EQUAL, elapsed)
        if not path_sum.path_variables:
            # fully reduced classical map differing from the identity, or a
            # non-trivial phase on some input: certainly not equivalent
            return PathSumResult(PathSumVerdict.NOT_EQUAL, elapsed)
        return PathSumResult(
            PathSumVerdict.INCONCLUSIVE, elapsed, remaining_path_variables=len(path_sum.path_variables)
        )
