"""Brute-force unitary equivalence checking (small circuits only).

Builds the full ``2^n x 2^n`` unitaries of both circuits with the dense
simulator and compares them up to a global phase.  Exponential in the number
of qubits, so only usable as a ground-truth oracle for the test suite and for
tiny instances — which is exactly why the paper needs the TA-based approach.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from ..simulator.dense import circuit_unitary

__all__ = ["UnitaryResult", "check_unitary_equivalence", "unitaries_equal_up_to_phase"]


@dataclass
class UnitaryResult:
    """Outcome of a brute-force unitary comparison."""

    equivalent: bool
    seconds: float
    max_deviation: float

    def __bool__(self) -> bool:
        return self.equivalent


def unitaries_equal_up_to_phase(first: np.ndarray, second: np.ndarray, tolerance: float = 1e-8) -> bool:
    """True iff ``first == phase * second`` for some unit complex ``phase``."""
    if first.shape != second.shape:
        return False
    # find a reference entry with a significant magnitude to fix the phase
    index = np.unravel_index(np.argmax(np.abs(second)), second.shape)
    if abs(second[index]) < tolerance:
        return bool(np.allclose(first, second, atol=tolerance))
    phase = first[index] / second[index]
    if abs(abs(phase) - 1.0) > 1e-6:
        return False
    return bool(np.allclose(first, phase * second, atol=tolerance))


def check_unitary_equivalence(first: Circuit, second: Circuit, max_qubits: int = 12) -> UnitaryResult:
    """Compare two circuits by building their full unitaries (exponential)."""
    start = time.perf_counter()
    if first.num_qubits != second.num_qubits:
        return UnitaryResult(False, time.perf_counter() - start, float("inf"))
    if first.num_qubits > max_qubits:
        raise ValueError(
            f"brute-force unitary comparison limited to {max_qubits} qubits "
            f"(got {first.num_qubits})"
        )
    unitary_first = circuit_unitary(first)
    unitary_second = circuit_unitary(second)
    equivalent = unitaries_equal_up_to_phase(unitary_first, unitary_second)
    deviation = float(np.max(np.abs(unitary_first - unitary_second)))
    return UnitaryResult(equivalent, time.perf_counter() - start, deviation)
