"""Random-stimuli equivalence checking — the QCEC-style baseline.

QCEC [Burgholzer & Wille 2020] combines decision diagrams, the ZX-calculus and
*random stimuli generation* [19].  The stimuli component is what this module
reproduces: run both circuits on a set of randomly chosen input states with
the exact simulator and compare the outputs.

The verdicts are:

* ``"not_equal"`` — some stimulus produced different outputs (sound),
* ``"probably_equal"`` — no difference was found within the budget (this is
  *not* a proof; Table 3's ``F`` rows for csum_mux_9 etc. are exactly the
  false "equivalent" answers such incomplete checks can give).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..circuits.circuit import Circuit
from ..simulator.statevector import StateVectorSimulator
from ..states import QuantumState

__all__ = ["StimuliVerdict", "StimuliResult", "RandomStimuliChecker"]


class StimuliVerdict:
    """Verdict strings of the random-stimuli checker."""

    NOT_EQUAL = "not_equal"
    PROBABLY_EQUAL = "probably_equal"


@dataclass
class StimuliResult:
    """Outcome of a random-stimuli comparison."""

    verdict: str
    stimuli_tried: int
    seconds: float
    #: the distinguishing input (basis bits) when a difference was found
    witness_input: Optional[Tuple[int, ...]] = None

    def __bool__(self) -> bool:
        return self.verdict == StimuliVerdict.NOT_EQUAL


class RandomStimuliChecker:
    """Compares two circuits on randomly generated computational-basis stimuli.

    Classical (basis-state) stimuli are the cheapest and are what large-scale
    stimuli checkers default to; they can only observe differences that
    manifest on basis inputs, which is the principled reason this baseline can
    miss bugs that the TA-based approach catches.
    """

    def __init__(self, num_stimuli: int = 16, seed: Optional[int] = None,
                 include_zero_state: bool = True, timeout_seconds: Optional[float] = None):
        self.num_stimuli = num_stimuli
        self.seed = seed
        self.include_zero_state = include_zero_state
        self.timeout_seconds = timeout_seconds

    def _stimuli(self, num_qubits: int) -> List[Tuple[int, ...]]:
        rng = random.Random(self.seed)
        stimuli: List[Tuple[int, ...]] = []
        if self.include_zero_state:
            stimuli.append((0,) * num_qubits)
        while len(stimuli) < self.num_stimuli:
            candidate = tuple(rng.randint(0, 1) for _ in range(num_qubits))
            if candidate not in stimuli:
                stimuli.append(candidate)
            if len(stimuli) >= 2 ** num_qubits:
                break
        return stimuli

    def check_equivalence(self, first: Circuit, second: Circuit) -> StimuliResult:
        """Run both circuits on the stimuli and compare outputs exactly."""
        start = time.perf_counter()
        if first.num_qubits != second.num_qubits:
            return StimuliResult(StimuliVerdict.NOT_EQUAL, 0, time.perf_counter() - start)
        simulator = StateVectorSimulator()
        tried = 0
        for bits in self._stimuli(first.num_qubits):
            state = QuantumState.basis_state(first.num_qubits, bits)
            out_first = simulator.run(first, state)
            out_second = simulator.run(second, state)
            tried += 1
            if not out_first.equals_up_to_global_phase(out_second):
                return StimuliResult(
                    StimuliVerdict.NOT_EQUAL, tried, time.perf_counter() - start, witness_input=bits
                )
            if self.timeout_seconds is not None and time.perf_counter() - start > self.timeout_seconds:
                break
        return StimuliResult(StimuliVerdict.PROBABLY_EQUAL, tried, time.perf_counter() - start)
