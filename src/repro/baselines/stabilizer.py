"""Stabilizer (CHP-tableau) simulation of Clifford circuits.

QCEC, one of the equivalence checkers the paper compares against, combines
decision diagrams with cheap structural checks; for the Clifford fragment of
the gate set, the textbook cheap check is Aaronson–Gottesman tableau
simulation [CHP, Phys. Rev. A 70, 052328].  This module provides that
substrate as an additional baseline:

* :class:`CliffordTableau` tracks the conjugation action of a Clifford circuit
  on the Pauli generators ``X_i`` and ``Z_i`` (a ``2n x 2n`` binary matrix plus
  sign bits).  Two Clifford circuits implement the same unitary (up to global
  phase) iff their tableaus are identical, which gives a polynomial-time
  equivalence check for the Clifford fragment.
* :class:`StabilizerState` tracks the stabilizer group of ``U |0...0>`` and
  offers a canonical form, so states produced by different Clifford circuits
  can be compared exactly.
* :class:`StabilizerChecker` wraps both into the same
  ``check_equivalence(first, second)`` interface as the other baselines and
  reports ``INCONCLUSIVE`` as soon as a non-Clifford gate appears.

Everything is exact binary arithmetic — no floating point is involved.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate

__all__ = [
    "CLIFFORD_GATES",
    "is_clifford_gate",
    "is_clifford_circuit",
    "CliffordTableau",
    "StabilizerState",
    "StabilizerVerdict",
    "StabilizerResult",
    "StabilizerChecker",
]

#: Gate kinds the tableau simulation supports (every Clifford gate of the library).
CLIFFORD_GATES = frozenset(
    {"x", "y", "z", "h", "s", "sdg", "rx", "ry", "cx", "cz", "swap"}
)

#: Decomposition of every supported gate into the tableau primitives h / s / cx.
#: Global phases are irrelevant for the conjugation action and are dropped.
_PRIMITIVE_SEQUENCES = {
    "h": (("h", 0),),
    "s": (("s", 0),),
    "sdg": (("s", 0), ("s", 0), ("s", 0)),
    "z": (("s", 0), ("s", 0)),
    "x": (("h", 0), ("s", 0), ("s", 0), ("h", 0)),
    "y": (("s", 0), ("h", 0), ("s", 0), ("s", 0), ("h", 0), ("s", 0), ("s", 0), ("s", 0)),
    "rx": (("h", 0), ("s", 0), ("h", 0)),
    "ry": (("s", 0), ("s", 0), ("h", 0)),
    "cx": (("cx", 0, 1),),
    "cz": (("h", 1), ("cx", 0, 1), ("h", 1)),
    "swap": (("cx", 0, 1), ("cx", 1, 0), ("cx", 0, 1)),
}


def is_clifford_gate(gate: Gate) -> bool:
    """True iff the tableau simulation can handle this gate."""
    return gate.kind in CLIFFORD_GATES


def is_clifford_circuit(circuit: Circuit) -> bool:
    """True iff every gate of the circuit is Clifford."""
    return all(is_clifford_gate(gate) for gate in circuit)


class _PauliRows:
    """A list of Pauli operators stored as bit rows ``(x, z, r)``.

    ``x`` and ``z`` are integers used as bit vectors over the qubits and ``r``
    is the sign bit (0 for ``+``, 1 for ``-``); the represented Pauli is
    ``(-1)^r  prod_i X_i^{x_i} Z_i^{z_i}`` up to the usual ``i`` bookkeeping of
    the Aaronson–Gottesman rowsum, which is tracked exactly when rows are
    multiplied.
    """

    __slots__ = ("num_qubits", "xs", "zs", "rs")

    def __init__(self, num_qubits: int, rows: int):
        self.num_qubits = num_qubits
        self.xs: List[int] = [0] * rows
        self.zs: List[int] = [0] * rows
        self.rs: List[int] = [0] * rows

    # ------------------------------------------------------------- gate action
    def apply_h(self, qubit: int) -> None:
        mask = 1 << qubit
        for i in range(len(self.xs)):
            x_bit = self.xs[i] & mask
            z_bit = self.zs[i] & mask
            if x_bit and z_bit:
                self.rs[i] ^= 1
            # swap the x and z bits of this qubit
            if bool(x_bit) != bool(z_bit):
                self.xs[i] ^= mask
                self.zs[i] ^= mask

    def apply_s(self, qubit: int) -> None:
        mask = 1 << qubit
        for i in range(len(self.xs)):
            x_bit = self.xs[i] & mask
            z_bit = self.zs[i] & mask
            if x_bit and z_bit:
                self.rs[i] ^= 1
            if x_bit:
                self.zs[i] ^= mask

    def apply_cx(self, control: int, target: int) -> None:
        cmask = 1 << control
        tmask = 1 << target
        for i in range(len(self.xs)):
            x_c = bool(self.xs[i] & cmask)
            x_t = bool(self.xs[i] & tmask)
            z_c = bool(self.zs[i] & cmask)
            z_t = bool(self.zs[i] & tmask)
            if x_c and z_t and (x_t == z_c):
                self.rs[i] ^= 1
            if x_c:
                self.xs[i] ^= tmask
            if z_t:
                self.zs[i] ^= cmask

    def apply_gate(self, gate: Gate) -> None:
        if gate.kind not in _PRIMITIVE_SEQUENCES:
            raise ValueError(f"gate {gate.kind!r} is not Clifford")
        for primitive in _PRIMITIVE_SEQUENCES[gate.kind]:
            if primitive[0] == "h":
                self.apply_h(gate.qubits[primitive[1]])
            elif primitive[0] == "s":
                self.apply_s(gate.qubits[primitive[1]])
            else:
                self.apply_cx(gate.qubits[primitive[1]], gate.qubits[primitive[2]])

    # ----------------------------------------------------------------- algebra
    def _phase_exponent(self, row: int, other_x: int, other_z: int) -> int:
        """Exponent of ``i`` (mod 4) produced by multiplying ``row``'s Pauli by the other Pauli."""
        exponent = 0
        for qubit in range(self.num_qubits):
            mask = 1 << qubit
            x1 = 1 if self.xs[row] & mask else 0
            z1 = 1 if self.zs[row] & mask else 0
            x2 = 1 if other_x & mask else 0
            z2 = 1 if other_z & mask else 0
            # the g() function of Aaronson-Gottesman
            if x1 == 1 and z1 == 0:
                exponent += z2 * (2 * x2 - 1)
            elif x1 == 0 and z1 == 1:
                exponent += x2 * (1 - 2 * z2)
            elif x1 == 1 and z1 == 1:
                exponent += z2 - x2
        return exponent % 4

    def multiply_into(self, target_row: int, source_row: int) -> None:
        """Replace the target row's Pauli by (source Pauli) * (target Pauli)."""
        exponent = (
            2 * self.rs[target_row]
            + 2 * self.rs[source_row]
            + self._phase_exponent(source_row, self.xs[target_row], self.zs[target_row])
        ) % 4
        if exponent not in (0, 2):
            raise AssertionError("stabilizer rows multiplied to an imaginary phase")
        self.rs[target_row] = 1 if exponent == 2 else 0
        self.xs[target_row] ^= self.xs[source_row]
        self.zs[target_row] ^= self.zs[source_row]

    def row_key(self, row: int) -> Tuple[int, int, int]:
        return (self.xs[row], self.zs[row], self.rs[row])


class CliffordTableau:
    """The conjugation action of a Clifford circuit on the Pauli generators.

    Row ``i`` stores the image of ``X_i`` and row ``n + i`` the image of
    ``Z_i`` under ``P -> U P U^\\dagger``.  Because a Clifford unitary is
    determined by this action up to a global phase, comparing tableaus decides
    circuit equivalence up to global phase.
    """

    def __init__(self, num_qubits: int):
        if num_qubits <= 0:
            raise ValueError("a tableau needs at least one qubit")
        self.num_qubits = num_qubits
        self._rows = _PauliRows(num_qubits, 2 * num_qubits)
        for qubit in range(num_qubits):
            self._rows.xs[qubit] = 1 << qubit            # X_i -> X_i
            self._rows.zs[num_qubits + qubit] = 1 << qubit  # Z_i -> Z_i

    # ------------------------------------------------------------------ build
    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "CliffordTableau":
        """Simulate a whole Clifford circuit; raises ``ValueError`` on non-Clifford gates."""
        tableau = cls(circuit.num_qubits)
        for gate in circuit.decomposed():
            tableau.apply_gate(gate)
        return tableau

    def apply_gate(self, gate: Gate) -> None:
        """Apply one Clifford gate to the tableau."""
        self._rows.apply_gate(gate)

    # ------------------------------------------------------------------ views
    def image_of_x(self, qubit: int) -> Tuple[int, int, int]:
        """The image of ``X_qubit`` as ``(x_bits, z_bits, sign)``."""
        return self._rows.row_key(qubit)

    def image_of_z(self, qubit: int) -> Tuple[int, int, int]:
        """The image of ``Z_qubit`` as ``(x_bits, z_bits, sign)``."""
        return self._rows.row_key(self.num_qubits + qubit)

    def signature(self) -> Tuple[Tuple[int, int, int], ...]:
        """A hashable value determining the Clifford unitary up to global phase."""
        return tuple(self._rows.row_key(row) for row in range(2 * self.num_qubits))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CliffordTableau):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash((self.num_qubits, self.signature()))

    def __repr__(self) -> str:
        return f"CliffordTableau(num_qubits={self.num_qubits})"


class StabilizerState:
    """The stabilizer group of ``U |0...0>`` for a Clifford circuit ``U``."""

    def __init__(self, num_qubits: int):
        self.num_qubits = num_qubits
        self._rows = _PauliRows(num_qubits, num_qubits)
        for qubit in range(num_qubits):
            self._rows.zs[qubit] = 1 << qubit  # stabilized by Z_i

    @classmethod
    def from_circuit(cls, circuit: Circuit, initial_bits: Optional[Sequence[int]] = None) -> "StabilizerState":
        """The stabilizer state reached from ``|initial_bits>`` (default all zero)."""
        state = cls(circuit.num_qubits)
        if initial_bits is not None:
            if len(initial_bits) != circuit.num_qubits:
                raise ValueError("initial_bits width does not match the circuit")
            for qubit, bit in enumerate(initial_bits):
                if bit:
                    state._rows.rs[qubit] ^= 1  # stabilized by -Z_i
        for gate in circuit.decomposed():
            if not is_clifford_gate(gate):
                raise ValueError(f"gate {gate.kind!r} is not Clifford")
            state._rows.apply_gate(gate)
        return state

    # ------------------------------------------------------------- canonical form
    def canonical_generators(self) -> Tuple[Tuple[int, int, int], ...]:
        """Row-reduced stabilizer generators (a canonical form of the state).

        Two stabilizer states are equal iff their canonical generator lists are
        identical.  The reduction is Gaussian elimination over GF(2) with exact
        sign tracking: first eliminate on X bits (qubit by qubit), then on the
        remaining Z bits.
        """
        rows = _PauliRows(self.num_qubits, self.num_qubits)
        rows.xs = list(self._rows.xs)
        rows.zs = list(self._rows.zs)
        rows.rs = list(self._rows.rs)
        row_count = self.num_qubits
        pivot = 0
        # eliminate X bits
        for qubit in range(self.num_qubits):
            mask = 1 << qubit
            pivot_row = next(
                (row for row in range(pivot, row_count) if rows.xs[row] & mask), None
            )
            if pivot_row is None:
                continue
            _swap_rows(rows, pivot, pivot_row)
            for row in range(row_count):
                if row != pivot and rows.xs[row] & mask:
                    rows.multiply_into(row, pivot)
            pivot += 1
        # eliminate Z bits among the X-free rows
        for qubit in range(self.num_qubits):
            mask = 1 << qubit
            pivot_row = next(
                (
                    row
                    for row in range(pivot, row_count)
                    if rows.zs[row] & mask and not rows.xs[row]
                ),
                None,
            )
            if pivot_row is None:
                continue
            _swap_rows(rows, pivot, pivot_row)
            for row in range(row_count):
                if row != pivot and not rows.xs[row] and rows.zs[row] & mask:
                    rows.multiply_into(row, pivot)
            pivot += 1
        return tuple(sorted(rows.row_key(row) for row in range(row_count)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StabilizerState):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.canonical_generators() == other.canonical_generators()
        )

    def __hash__(self) -> int:
        return hash((self.num_qubits, self.canonical_generators()))

    def expectation_of_z(self, qubit: int) -> Optional[int]:
        """Expectation value of ``Z_qubit`` when it is determined (+1/-1), else ``None``.

        The outcome of measuring ``qubit`` in the computational basis is
        deterministic iff ``Z_qubit`` (up to sign) lies in the stabilizer
        group; this is decided by reducing ``Z_qubit`` against the X-free
        canonical generators with exact sign tracking.
        """
        generators = [row for row in self.canonical_generators() if row[0] == 0]
        scratch = _PauliRows(self.num_qubits, len(generators) + 1)
        for index, (x_bits, z_bits, sign) in enumerate(generators):
            scratch.xs[index], scratch.zs[index], scratch.rs[index] = x_bits, z_bits, sign
        target = len(generators)
        scratch.zs[target] = 1 << qubit
        for index in range(len(generators)):
            if scratch.zs[target] & scratch.zs[index] & -scratch.zs[index]:
                # the generator's lowest set bit is present in the target: eliminate it
                scratch.multiply_into(target, index)
        if scratch.xs[target] == 0 and scratch.zs[target] == 0:
            return -1 if scratch.rs[target] else 1
        return None

    def __repr__(self) -> str:
        return f"StabilizerState(num_qubits={self.num_qubits})"


def _swap_rows(rows: _PauliRows, first: int, second: int) -> None:
    if first == second:
        return
    rows.xs[first], rows.xs[second] = rows.xs[second], rows.xs[first]
    rows.zs[first], rows.zs[second] = rows.zs[second], rows.zs[first]
    rows.rs[first], rows.rs[second] = rows.rs[second], rows.rs[first]


# ------------------------------------------------------------------ equivalence checking
class StabilizerVerdict(str, Enum):
    """Outcome of the Clifford-fragment equivalence check."""

    EQUAL = "equal"
    NOT_EQUAL = "not_equal"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class StabilizerResult:
    """Result of :meth:`StabilizerChecker.check_equivalence`."""

    verdict: StabilizerVerdict
    reason: str = ""

    def __bool__(self) -> bool:
        return self.verdict == StabilizerVerdict.EQUAL


class StabilizerChecker:
    """Equivalence checker for the Clifford fragment via tableau comparison."""

    def check_equivalence(self, first: Circuit, second: Circuit) -> StabilizerResult:
        """Compare two circuits; ``INCONCLUSIVE`` when either is not Clifford."""
        if first.num_qubits != second.num_qubits:
            return StabilizerResult(
                StabilizerVerdict.NOT_EQUAL, "circuits act on a different number of qubits"
            )
        first = first.decomposed()
        second = second.decomposed()
        for circuit in (first, second):
            offending = [gate.kind for gate in circuit if not is_clifford_gate(gate)]
            if offending:
                return StabilizerResult(
                    StabilizerVerdict.INCONCLUSIVE,
                    f"non-Clifford gates present: {sorted(set(offending))}",
                )
        if CliffordTableau.from_circuit(first) == CliffordTableau.from_circuit(second):
            return StabilizerResult(StabilizerVerdict.EQUAL, "identical Clifford tableaus")
        return StabilizerResult(StabilizerVerdict.NOT_EQUAL, "Clifford tableaus differ")

    def check_states(
        self, first: Circuit, second: Circuit, initial_bits: Optional[Iterable[int]] = None
    ) -> StabilizerResult:
        """Compare only the states the circuits produce from one basis input."""
        bits = tuple(initial_bits) if initial_bits is not None else None
        for circuit in (first.decomposed(), second.decomposed()):
            if not is_clifford_circuit(circuit):
                return StabilizerResult(
                    StabilizerVerdict.INCONCLUSIVE, "non-Clifford gates present"
                )
        left = StabilizerState.from_circuit(first, bits)
        right = StabilizerState.from_circuit(second, bits)
        if left == right:
            return StabilizerResult(StabilizerVerdict.EQUAL, "identical stabilizer states")
        return StabilizerResult(StabilizerVerdict.NOT_EQUAL, "stabilizer states differ")
