"""Bernstein-Vazirani circuits and their verification specs (the BV family).

The BV algorithm recovers a hidden bit-string ``s`` with a single oracle query.
The circuit follows Fig. 5 of the paper: Hadamards on all data qubits and on a
bottom ancilla prepared in ``|1>``, one CNOT per 1-bit of ``s`` into the
ancilla, Hadamards again, and (as the paper's implementation does) one extra
Hadamard on the ancilla so that the final state is the basis state ``|s, 1>``.

The verification triple (Appendix E): pre-condition ``{|0^{n+1}>}``,
post-condition ``{|s 1>}``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..circuits.circuit import Circuit
from ..core.specs import basis_state_precondition, zero_state_precondition
from ..states import parse_bitstring
from .common import VerificationBenchmark

__all__ = ["bv_circuit", "bv_benchmark", "default_hidden_string"]


def default_hidden_string(length: int) -> str:
    """The alternating hidden string (``1010...``) used by the paper's tables."""
    return "".join("1" if i % 2 == 0 else "0" for i in range(length))


def _normalise_hidden(hidden: Union[str, Sequence[int]]) -> tuple:
    if isinstance(hidden, str):
        return parse_bitstring(hidden)
    return tuple(int(b) for b in hidden)


def bv_circuit(hidden: Union[str, Sequence[int]]) -> Circuit:
    """Build the BV circuit for a hidden string of length ``n`` (``n+1`` qubits)."""
    bits = _normalise_hidden(hidden)
    length = len(bits)
    num_qubits = length + 1
    ancilla = length
    circuit = Circuit(num_qubits, name=f"bv_{length}")
    circuit.add("x", ancilla)
    circuit.add("h", ancilla)
    for qubit in range(length):
        circuit.add("h", qubit)
    for qubit, bit in enumerate(bits):
        if bit:
            circuit.add("cx", qubit, ancilla)
    for qubit in range(length):
        circuit.add("h", qubit)
    circuit.add("h", ancilla)
    return circuit


def bv_benchmark(length: int, hidden: Optional[Union[str, Sequence[int]]] = None) -> VerificationBenchmark:
    """Full verification benchmark for BV with a hidden string of the given length."""
    if hidden is None:
        hidden = default_hidden_string(length)
    bits = _normalise_hidden(hidden)
    if len(bits) != length:
        raise ValueError("hidden string length does not match the requested size")
    circuit = bv_circuit(bits)
    precondition = zero_state_precondition(circuit.num_qubits)
    postcondition = basis_state_precondition(circuit.num_qubits, bits + (1,))
    return VerificationBenchmark(
        name=f"BV(n={length})",
        circuit=circuit,
        precondition=precondition,
        postcondition=postcondition,
        description=f"Bernstein-Vazirani, hidden string {''.join(map(str, bits))}",
    )
