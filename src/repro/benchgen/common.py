"""Shared helpers for the benchmark circuit generators.

Provides the multi-controlled gate decompositions used by the Grover and
MCToffoli families (ancilla-based AND-chains built from Toffoli gates, as in
Fig. 6 of the paper) and the :class:`VerificationBenchmark` container that
bundles a circuit with its pre- and post-condition automata (Appendix E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuits.circuit import Circuit
from ..ta.automaton import TreeAutomaton

__all__ = ["VerificationBenchmark", "append_multi_controlled_x", "append_multi_controlled_z"]


@dataclass
class VerificationBenchmark:
    """A circuit together with the pre/post-condition TAs of its ``{P} C {Q}`` triple."""

    name: str
    circuit: Circuit
    precondition: TreeAutomaton
    postcondition: TreeAutomaton
    #: free-form description of the specification (for reports and tables)
    description: str = ""

    @property
    def num_qubits(self) -> int:
        return self.circuit.num_qubits

    @property
    def num_gates(self) -> int:
        return self.circuit.num_gates


def append_multi_controlled_x(
    circuit: Circuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> None:
    """Append an ``len(controls)``-controlled X on ``target`` to ``circuit``.

    Uses the AND-chain decomposition into Toffoli gates with ``len(controls)-1``
    clean ancillas (computed and uncomputed), so only Table 1 gates appear.
    For zero/one/two controls the gate degenerates to X / CX / CCX.
    """
    controls = list(controls)
    if target in controls:
        raise ValueError("target cannot also be a control")
    if not controls:
        circuit.add("x", target)
        return
    if len(controls) == 1:
        circuit.add("cx", controls[0], target)
        return
    if len(controls) == 2:
        circuit.add("ccx", controls[0], controls[1], target)
        return
    needed = len(controls) - 1
    if len(ancillas) < needed:
        raise ValueError(f"need {needed} ancillas for {len(controls)} controls, got {len(ancillas)}")
    work = list(ancillas[:needed])
    compute = []
    compute.append(("ccx", controls[0], controls[1], work[0]))
    for index in range(2, len(controls)):
        compute.append(("ccx", controls[index], work[index - 2], work[index - 1]))
    for kind, *qubits in compute:
        circuit.add(kind, *qubits)
    circuit.add("cx", work[-1], target)
    for kind, *qubits in reversed(compute):
        circuit.add(kind, *qubits)


def append_multi_controlled_z(
    circuit: Circuit,
    controls: Sequence[int],
    target: int,
    ancillas: Sequence[int],
) -> None:
    """Append an ``len(controls)``-controlled Z on ``target``.

    Mirrors :func:`append_multi_controlled_x` but finishes the AND-chain with a
    CZ (which the permutation-based encoding supports regardless of qubit
    ordering, because CZ is symmetric).
    """
    controls = list(controls)
    if target in controls:
        raise ValueError("target cannot also be a control")
    if not controls:
        circuit.add("z", target)
        return
    if len(controls) == 1:
        circuit.add("cz", controls[0], target)
        return
    needed = len(controls) - 1
    if len(ancillas) < needed:
        raise ValueError(f"need {needed} ancillas for {len(controls)} controls, got {len(ancillas)}")
    work = list(ancillas[:needed])
    compute = []
    compute.append(("ccx", controls[0], controls[1], work[0]))
    for index in range(2, len(controls)):
        compute.append(("ccx", controls[index], work[index - 2], work[index - 1]))
    for kind, *qubits in compute:
        circuit.add(kind, *qubits)
    circuit.add("cz", work[-1], target)
    for kind, *qubits in reversed(compute):
        circuit.add(kind, *qubits)
