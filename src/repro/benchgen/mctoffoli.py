"""Multi-controlled Toffoli benchmark circuits (the MCToffoli family).

The circuit implements an ``n``-controlled NOT using the Toffoli AND-chain
decomposition over ``n - 1`` clean work qubits (a variation of Nielsen and
Chuang's construction, Fig. 6 of the paper): ``2n - 1`` gates over ``2n``
qubits.

Verification triple (Appendix E): the pre-condition contains every basis state
where the control qubits and the target are free and the work qubits are zero;
since the gate only permutes that set, the post-condition equals the
pre-condition.
"""

from __future__ import annotations

from typing import List

from ..circuits.circuit import Circuit
from ..core.specs import classical_product_condition
from .common import VerificationBenchmark

__all__ = ["mctoffoli_layout", "mctoffoli_circuit", "mctoffoli_benchmark"]


def mctoffoli_layout(num_controls: int) -> dict:
    """Qubit layout: controls and work qubits interleaved, target at the bottom.

    The interleaving keeps every Toffoli's control indices below its target
    index, so the whole circuit stays inside the permutation-based fragment
    (which is why MCToffoli is essentially free for the Hybrid engine).
    """
    if num_controls < 2:
        raise ValueError("MCToffoli needs at least two controls")
    controls: List[int] = [0, 1]
    work: List[int] = []
    position = 2
    for _ in range(num_controls - 2):
        work.append(position)
        controls.append(position + 1)
        position += 2
    work.append(position)
    target = position + 1
    return {"controls": controls, "work": work, "target": target, "num_qubits": target + 1}


def mctoffoli_circuit(num_controls: int) -> Circuit:
    """Build the ``num_controls``-controlled NOT over ``2 * num_controls`` qubits."""
    layout = mctoffoli_layout(num_controls)
    controls, work, target = layout["controls"], layout["work"], layout["target"]
    circuit = Circuit(layout["num_qubits"], name=f"mctoffoli_{num_controls}")
    compute = [("ccx", controls[0], controls[1], work[0])]
    for index in range(2, num_controls):
        compute.append(("ccx", controls[index], work[index - 2], work[index - 1]))
    for kind, *qubits in compute:
        circuit.add(kind, *qubits)
    circuit.add("cx", work[-1], target)
    for kind, *qubits in reversed(compute):
        circuit.add(kind, *qubits)
    return circuit


def mctoffoli_benchmark(num_controls: int) -> VerificationBenchmark:
    """Full verification benchmark: controls/target free, work qubits zero."""
    layout = mctoffoli_layout(num_controls)
    circuit = mctoffoli_circuit(num_controls)
    allowed = []
    for qubit in range(layout["num_qubits"]):
        if qubit in layout["work"]:
            allowed.append({0})
        else:
            allowed.append({0, 1})
    condition = classical_product_condition(allowed)
    return VerificationBenchmark(
        name=f"MCToffoli(n={num_controls})",
        circuit=circuit,
        precondition=condition,
        postcondition=condition,
        description=f"{num_controls}-controlled NOT over {layout['num_qubits']} qubits",
    )
