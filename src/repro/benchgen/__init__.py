"""Benchmark circuit generators for the paper's data sets (Section 7)."""

from .bv import bv_benchmark, bv_circuit, default_hidden_string
from .common import VerificationBenchmark, append_multi_controlled_x, append_multi_controlled_z
from .feynman_suite import (
    carry_lookahead_adder,
    csum_mux,
    feynman_suite,
    gf2_multiplier,
    ham_coder,
    mod_adder,
)
from .grover import (
    default_iterations,
    grover_all_benchmark,
    grover_all_circuit,
    grover_single_benchmark,
    grover_single_circuit,
)
from .arithmetic import adder_benchmark, classical_addition, cuccaro_adder
from .mctoffoli import mctoffoli_benchmark, mctoffoli_circuit, mctoffoli_layout
from .qft import (
    inverse_qft_circuit,
    qft_circuit,
    qft_roundtrip_benchmark,
    qft_zero_benchmark,
    uniform_superposition_state,
)
from .stateprep import (
    bell_chain_benchmark,
    bell_chain_circuit,
    bell_chain_state,
    ghz_benchmark,
    ghz_circuit,
    ghz_state,
)
from .families import (
    DEFAULT_SIZES,
    FAMILY_ALIASES,
    FAMILY_BUILDERS,
    build_family,
    family_names,
    resolve_family,
)
from .revlib import (
    controlled_increment,
    hidden_weighted_bit_like,
    parity_network,
    revlib_suite,
    ripple_carry_adder,
    unstructured_reversible,
)

__all__ = [
    "VerificationBenchmark",
    "append_multi_controlled_x",
    "append_multi_controlled_z",
    "bv_circuit",
    "bv_benchmark",
    "default_hidden_string",
    "grover_single_circuit",
    "grover_single_benchmark",
    "grover_all_circuit",
    "grover_all_benchmark",
    "default_iterations",
    "mctoffoli_circuit",
    "mctoffoli_benchmark",
    "mctoffoli_layout",
    "ripple_carry_adder",
    "controlled_increment",
    "parity_network",
    "unstructured_reversible",
    "hidden_weighted_bit_like",
    "revlib_suite",
    "gf2_multiplier",
    "csum_mux",
    "carry_lookahead_adder",
    "mod_adder",
    "ham_coder",
    "feynman_suite",
    "qft_circuit",
    "inverse_qft_circuit",
    "uniform_superposition_state",
    "qft_zero_benchmark",
    "qft_roundtrip_benchmark",
    "ghz_circuit",
    "ghz_state",
    "ghz_benchmark",
    "bell_chain_circuit",
    "bell_chain_state",
    "bell_chain_benchmark",
    "cuccaro_adder",
    "classical_addition",
    "adder_benchmark",
    "FAMILY_BUILDERS",
    "FAMILY_ALIASES",
    "DEFAULT_SIZES",
    "family_names",
    "resolve_family",
    "build_family",
]
