"""Feynman-benchmark-style arithmetic circuits (the FeynmanBench family of Table 3).

The Feynman tool suite ships Clifford+T arithmetic benchmarks: GF(2^m)
multipliers, carry-lookahead (QCLA) adders, multiplexed checksums, Hamming
coders and modular adders.  This module synthesises circuits of the same
families from scratch (documented substitution; see DESIGN.md): the functions
computed follow the textbook constructions, built only from the Table 1 gate
set, so the bug-injection experiment exercises the same kind of structure the
paper's rows do.
"""

from __future__ import annotations

from typing import Dict, List

from ..circuits.circuit import Circuit
from .common import append_multi_controlled_x
from .revlib import parity_network, ripple_carry_adder

__all__ = [
    "gf2_multiplier",
    "csum_mux",
    "carry_lookahead_adder",
    "mod_adder",
    "ham_coder",
    "feynman_suite",
]


def _gf2_reduction_rows(degree: int) -> List[List[int]]:
    """Decomposition of x^(degree+k) modulo the pentanomial/trinomial x^degree + x + 1.

    Returns, for every product-degree ``degree <= d < 2*degree - 1``, the list
    of output positions (< degree) that the coefficient of ``x^d`` folds into.
    """
    rows = []
    for extra in range(degree - 1):
        # x^(degree + extra) = x^(extra+1) + x^extra  (mod x^degree + x + 1), applied
        # repeatedly until all positions are below `degree`
        pending = [degree + extra]
        result: List[int] = []
        while pending:
            power = pending.pop()
            if power < degree:
                result.append(power)
            else:
                pending.append(power - degree + 1)
                pending.append(power - degree)
        # XOR semantics: keep positions appearing an odd number of times
        folded = sorted({p for p in result if result.count(p) % 2 == 1})
        rows.append(folded)
    return rows


def gf2_multiplier(degree: int) -> Circuit:
    """GF(2^degree) multiplier ``c ^= a * b`` (the ``gf2^m_mult`` family).

    Three ``degree``-bit registers; each partial product ``a_i * b_j`` is one
    Toffoli into the output register, with the modular reduction by
    ``x^degree + x + 1`` folded into the target positions.
    """
    if degree < 2:
        raise ValueError("GF(2^m) multiplication needs degree >= 2")
    a = list(range(degree))
    b = [degree + i for i in range(degree)]
    c = [2 * degree + i for i in range(degree)]
    circuit = Circuit(3 * degree, name=f"gf2^{degree}_mult")
    reduction = _gf2_reduction_rows(degree)
    for i in range(degree):
        for j in range(degree):
            product_degree = i + j
            if product_degree < degree:
                targets = [product_degree]
            else:
                targets = reduction[product_degree - degree]
            for target in targets:
                circuit.add("ccx", a[i], b[j], c[target])
    return circuit


def csum_mux(width: int) -> Circuit:
    """Multiplexed checksum (the ``csum_mux`` family).

    Two data words and a select word; the output checks accumulate the parity
    of the selected word: ``out_i ^= sel_i ? a_i : b_i`` realised with Toffoli
    and CNOT gates (``3*width`` working qubits + ``width`` outputs).
    """
    if width < 2:
        raise ValueError("csum_mux needs width >= 2")
    select = list(range(width))
    a = [width + i for i in range(width)]
    b = [2 * width + i for i in range(width)]
    out = [3 * width + i for i in range(width)]
    circuit = Circuit(4 * width, name=f"csum_mux_{width}")
    for i in range(width):
        # out_i ^= b_i ^ sel_i*(a_i ^ b_i)
        circuit.add("cx", b[i], out[i])
        circuit.add("cx", a[i], b[i])
        circuit.add("ccx", select[i], b[i], out[i])
        circuit.add("cx", a[i], b[i])
    # fold the checks into a single running parity (checksum)
    for i in range(1, width):
        circuit.add("cx", out[i - 1], out[i])
    return circuit


def carry_lookahead_adder(num_bits: int) -> Circuit:
    """Simplified out-of-place carry-lookahead adder (the ``qcla_adder`` family).

    Computes generate/propagate signals into an ancilla register, derives the
    carries, and writes the sum bits — the flat, Toffoli-heavy structure
    characteristic of the QCLA benchmarks (not the depth-optimal version).
    """
    if num_bits < 2:
        raise ValueError("carry-lookahead adder needs at least two bits")
    a = list(range(num_bits))
    b = [num_bits + i for i in range(num_bits)]
    carry = [2 * num_bits + i for i in range(num_bits)]
    total = 3 * num_bits
    circuit = Circuit(total, name=f"qcla_adder_{num_bits}")
    # generate: carry[i+1] ^= a_i & b_i ; propagate folded in by the next stage
    for i in range(num_bits - 1):
        circuit.add("ccx", a[i], b[i], carry[i + 1])
    # propagate: carry[i+1] ^= (a_i ^ b_i) & carry[i]
    for i in range(num_bits - 1):
        circuit.add("cx", a[i], b[i])
        circuit.add("ccx", b[i], carry[i], carry[i + 1])
        circuit.add("cx", a[i], b[i])
    # sum bits: b_i ^= a_i ^ carry_i
    for i in range(num_bits):
        circuit.add("cx", a[i], b[i])
        circuit.add("cx", carry[i], b[i])
    return circuit


def mod_adder(num_bits: int) -> Circuit:
    """Modular adder built from two ripple-carry passes (the ``mod_adder`` family)."""
    forward = ripple_carry_adder(num_bits)
    backward = ripple_carry_adder(num_bits)
    circuit = Circuit(forward.num_qubits, name=f"mod_adder_{2 ** num_bits}")
    circuit.extend(forward.gates)
    # second pass conditioned on the carry-out, approximating the modular wrap
    carry_out = forward.num_qubits - 1
    for gate in backward.gates:
        if gate.kind == "cx" and carry_out not in gate.qubits:
            circuit.add("ccx", carry_out, *gate.qubits)
        else:
            circuit.append(gate)
    return circuit


def ham_coder(num_bits: int) -> Circuit:
    """Hamming-code style encoder/checker (the ``ham15`` family)."""
    return parity_network(num_bits, taps=[1, 2, 4])


def feynman_suite(scale: int = 1) -> Dict[str, Circuit]:
    """A named suite mirroring the FeynmanBench rows of Table 3 (scaled down)."""
    base = 3 * scale
    return {
        f"gf2^{base}_mult": gf2_multiplier(base),
        f"gf2^{base * 2}_mult": gf2_multiplier(base * 2),
        f"csum_mux_{base}": csum_mux(base),
        f"qcla_adder_{base + 1}": carry_lookahead_adder(base + 1),
        f"mod_adder_{2 ** (base + 1)}": mod_adder(base + 1),
        f"ham{base * 2 + 1}": ham_coder(base * 2 + 1),
    }
