"""Reversible arithmetic circuits verified against a classical reference model.

The RevLib rows of Table 3 are dominated by adders (`add16_174`,
`add32_183`, `add64_184`); this module provides the textbook in-place
ripple-carry adder of Cuccaro, Draper, Kutin and Moulton (the construction
RevLib's adders are based on) together with a *functional* verification
triple: the pre-condition fixes one classical addend and lets the other range
over all values, and the post-condition is the set of classically computed
sums.  This is a different style of specification from the other families —
the expected outputs come from an independent classical model rather than
from the circuit's own semantics — and it exercises ``{P} C {Q}`` checking on
genuinely classical reversible logic.

Qubit layout for ``num_bits = n`` (most significant bit first within each
register, matching the MSBF convention of the paper):

====================  =======================================
qubit 0               incoming carry (always ``|0>``)
qubits 1 .. n         register ``a`` (one addend, left unchanged)
qubits n+1 .. 2n      register ``b`` (replaced by ``a + b mod 2^n``)
qubit 2n+1            carry-out ``z``
====================  =======================================
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from ..circuits.circuit import Circuit
from ..states import QuantumState, parse_bitstring
from ..ta.construction import basis_product_ta
from ..core.specs import states_condition
from .common import VerificationBenchmark

__all__ = [
    "cuccaro_adder",
    "classical_addition",
    "adder_benchmark",
]


def _normalise_addend(addend: Union[int, str, Sequence[int]], num_bits: int) -> Tuple[int, ...]:
    if isinstance(addend, str):
        bits = parse_bitstring(addend)
    elif isinstance(addend, int):
        if addend < 0 or addend >= (1 << num_bits):
            raise ValueError(f"addend {addend} out of range for {num_bits} bits")
        bits = tuple((addend >> (num_bits - 1 - i)) & 1 for i in range(num_bits))
    else:
        bits = tuple(int(b) for b in addend)
    if len(bits) != num_bits:
        raise ValueError(f"addend has {len(bits)} bits, expected {num_bits}")
    return bits


def cuccaro_adder(num_bits: int) -> Circuit:
    """The in-place Cuccaro ripple-carry adder ``|c=0, a, b, z=0> -> |0, a, a+b, carry>``.

    Built from the MAJ / UMA blocks (each a pair of CNOTs and one Toffoli), so
    the circuit stays inside the Table 1 gate set and is handled entirely by
    the permutation-based encoding.
    """
    if num_bits < 1:
        raise ValueError("the adder needs at least one bit per register")
    carry_in = 0
    a = [1 + i for i in range(num_bits)]            # a[0] = MSB ... a[n-1] = LSB
    b = [1 + num_bits + i for i in range(num_bits)]
    carry_out = 2 * num_bits + 1
    circuit = Circuit(2 * num_bits + 2, name=f"cuccaro_adder_{num_bits}")

    def maj(c: int, b_q: int, a_q: int) -> None:
        circuit.add("cx", a_q, b_q)
        circuit.add("cx", a_q, c)
        circuit.add("ccx", c, b_q, a_q)

    def uma(c: int, b_q: int, a_q: int) -> None:
        circuit.add("ccx", c, b_q, a_q)
        circuit.add("cx", a_q, c)
        circuit.add("cx", c, b_q)

    # ripple from the least significant bit (index n-1) upwards
    chain: List[Tuple[int, int, int]] = []
    previous_carry = carry_in
    for index in range(num_bits - 1, -1, -1):
        chain.append((previous_carry, b[index], a[index]))
        previous_carry = a[index]
    for block in chain:
        maj(*block)
    circuit.add("cx", a[0], carry_out)  # the carry ripples out of the MSB position
    for block in reversed(chain):
        uma(*block)
    return circuit


def classical_addition(addend_a: int, addend_b: int, num_bits: int) -> Tuple[int, int]:
    """Reference model: ``(a + b) mod 2^n`` and the carry-out bit."""
    total = addend_a + addend_b
    return total % (1 << num_bits), 1 if total >= (1 << num_bits) else 0


def adder_benchmark(num_bits: int, addend: Union[int, str, Sequence[int], None] = None) -> VerificationBenchmark:
    """``{c=0, a=addend, b free, z=0} Cuccaro {c=0, a=addend, b=a+b, z=carry}``.

    The post-condition is computed by the independent classical model
    :func:`classical_addition`, so the triple fails whenever the circuit does
    not actually add (e.g. after injecting a bug).  The default addend is the
    alternating pattern ``1010...`` used by the paper's BV tables.
    """
    if addend is None:
        addend = "".join("1" if i % 2 == 0 else "0" for i in range(num_bits))
    a_bits = _normalise_addend(addend, num_bits)
    a_value = int("".join(map(str, a_bits)), 2)
    circuit = cuccaro_adder(num_bits)

    allowed: List[Tuple[int, ...]] = [(0,)]                      # carry-in fixed to 0
    allowed += [(bit,) for bit in a_bits]                        # register a fixed
    allowed += [(0, 1)] * num_bits                               # register b free
    allowed += [(0,)]                                            # carry-out fixed to 0
    precondition = basis_product_ta(circuit.num_qubits, allowed)

    outputs = []
    for b_value in range(1 << num_bits):
        sum_value, carry = classical_addition(a_value, b_value, num_bits)
        bits = (0,) + a_bits + tuple(
            (sum_value >> (num_bits - 1 - i)) & 1 for i in range(num_bits)
        ) + (carry,)
        outputs.append(QuantumState.basis_state(circuit.num_qubits, bits))
    postcondition = states_condition(outputs)

    return VerificationBenchmark(
        name=f"Adder(n={num_bits})",
        circuit=circuit,
        precondition=precondition,
        postcondition=postcondition,
        description=f"Cuccaro ripple-carry adder adds a={a_value} to every b (classical reference model)",
    )
