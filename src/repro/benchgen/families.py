"""Registry of verification benchmark families.

Every family maps a single integer size parameter ``n`` to a
:class:`~repro.benchgen.common.VerificationBenchmark`.  The registry is the
single source of truth for the CLI (``verify``, ``generate``, ``export-ta``,
``campaign``) and for the campaign runner, so new families become available to
every front-end by adding one entry here.

Aliases (e.g. ``grover`` for ``grover-single``) and per-family default sizes
support the bug-hunting campaigns, which sweep many mutants of one family
instance and therefore want a sensible size when the user does not pass one.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .arithmetic import adder_benchmark
from .bv import bv_benchmark
from .common import VerificationBenchmark
from .grover import grover_all_benchmark, grover_single_benchmark
from .mctoffoli import mctoffoli_benchmark
from .qft import qft_roundtrip_benchmark, qft_zero_benchmark
from .stateprep import bell_chain_benchmark, ghz_benchmark

__all__ = [
    "FAMILY_BUILDERS",
    "FAMILY_ALIASES",
    "DEFAULT_SIZES",
    "family_names",
    "resolve_family",
    "build_family",
]

#: canonical family name -> builder taking the size parameter ``n``
FAMILY_BUILDERS: Dict[str, Callable[[int], VerificationBenchmark]] = {
    "bv": bv_benchmark,
    "grover-single": grover_single_benchmark,
    "grover-all": grover_all_benchmark,
    "mctoffoli": mctoffoli_benchmark,
    "ghz": ghz_benchmark,
    "bell-chain": bell_chain_benchmark,
    "qft-zero": qft_zero_benchmark,
    "qft-roundtrip": qft_roundtrip_benchmark,
    "adder": adder_benchmark,
}

#: user-facing shorthands accepted everywhere a family name is expected
FAMILY_ALIASES: Dict[str, str] = {
    "grover": "grover-single",
    "qft": "qft-zero",
}

#: default size parameter per canonical family (used when the CLI gets no
#: ``--size``); chosen so that a single verification finishes in well under a
#: second, which keeps 100-mutant campaigns interactive
DEFAULT_SIZES: Dict[str, int] = {
    "bv": 4,
    "grover-single": 2,
    "grover-all": 2,
    "mctoffoli": 3,
    "ghz": 4,
    "bell-chain": 4,
    "qft-zero": 3,
    "qft-roundtrip": 3,
    "adder": 2,
}


def family_names(include_aliases: bool = True) -> List[str]:
    """Sorted names accepted by :func:`build_family`."""
    names = set(FAMILY_BUILDERS)
    if include_aliases:
        names.update(FAMILY_ALIASES)
    return sorted(names)


def resolve_family(name: str) -> str:
    """Map an alias to its canonical family name; ``ValueError`` on unknown names."""
    canonical = FAMILY_ALIASES.get(name, name)
    if canonical not in FAMILY_BUILDERS:
        raise ValueError(f"unknown benchmark family {name!r}; known: {family_names()}")
    return canonical


def build_family(name: str, size: int = None) -> VerificationBenchmark:
    """Build the benchmark for ``name`` (alias-aware) at ``size`` (or its default)."""
    canonical = resolve_family(name)
    if size is None:
        size = DEFAULT_SIZES[canonical]
    return FAMILY_BUILDERS[canonical](size)
