"""Registry of verification benchmark families.

Every family maps a single integer size parameter ``n`` to a
:class:`~repro.benchgen.common.VerificationBenchmark`.  The registry is the
single source of truth for the CLI (``verify``, ``generate``, ``export-ta``,
``campaign``) and for the campaign runner, so new families become available to
every front-end by adding one entry here.

Aliases (e.g. ``grover`` for ``grover-single``) and per-family default sizes
support the bug-hunting campaigns, which sweep many mutants of one family
instance and therefore want a sensible size when the user does not pass one.

Each family also carries a :class:`FamilyCapability` record — its valid size
range, the analysis modes it supports, the default size sweep used by matrix
campaigns, and a relative cost scale.  The campaign matrix scheduler
(:mod:`repro.campaign.scheduler`) reads these to validate a sweep spec before
any work starts and to order cells cheapest-first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .arithmetic import adder_benchmark
from .bv import bv_benchmark
from .common import VerificationBenchmark
from .grover import grover_all_benchmark, grover_single_benchmark
from .mctoffoli import mctoffoli_benchmark
from .qft import qft_roundtrip_benchmark, qft_zero_benchmark
from .stateprep import bell_chain_benchmark, ghz_benchmark

__all__ = [
    "FAMILY_BUILDERS",
    "FAMILY_ALIASES",
    "DEFAULT_SIZES",
    "FAMILY_CAPABILITIES",
    "FamilyCapability",
    "family_names",
    "resolve_family",
    "build_family",
    "family_capability",
    "validate_family_size",
    "validate_family_mode",
    "default_campaign_sizes",
]

#: canonical family name -> builder taking the size parameter ``n``
FAMILY_BUILDERS: Dict[str, Callable[[int], VerificationBenchmark]] = {
    "bv": bv_benchmark,
    "grover-single": grover_single_benchmark,
    "grover-all": grover_all_benchmark,
    "mctoffoli": mctoffoli_benchmark,
    "ghz": ghz_benchmark,
    "bell-chain": bell_chain_benchmark,
    "qft-zero": qft_zero_benchmark,
    "qft-roundtrip": qft_roundtrip_benchmark,
    "adder": adder_benchmark,
}

#: user-facing shorthands accepted everywhere a family name is expected
FAMILY_ALIASES: Dict[str, str] = {
    "grover": "grover-single",
    "qft": "qft-zero",
}

#: default size parameter per canonical family (used when the CLI gets no
#: ``--size``); chosen so that a single verification finishes in well under a
#: second, which keeps 100-mutant campaigns interactive
DEFAULT_SIZES: Dict[str, int] = {
    "bv": 4,
    "grover-single": 2,
    "grover-all": 2,
    "mctoffoli": 3,
    "ghz": 4,
    "bell-chain": 4,
    "qft-zero": 3,
    "qft-roundtrip": 3,
    "adder": 2,
}


@dataclass(frozen=True)
class FamilyCapability:
    """What a family can do: size range, analysis modes, and campaign defaults.

    ``modes`` lists the engine modes whose gate support covers the family's
    circuits — pure Toffoli families (``mctoffoli``, ``adder``) work under the
    permutation-only encoding, while anything containing H/CZ/rotation gates
    needs ``hybrid`` or ``composition``.  ``campaign_sizes`` is the default
    size sweep a matrix campaign uses when the spec names the family without
    sizes, and ``cost_scale`` is a relative per-verification weight used only
    to order matrix cells cheapest-first (it never gates correctness).
    """

    min_size: int
    max_size: Optional[int]
    modes: Tuple[str, ...]
    campaign_sizes: Tuple[int, ...]
    cost_scale: float = 1.0


_ALL_MODES = ("hybrid", "composition", "permutation")
_SUPERPOSITION_MODES = ("hybrid", "composition")

#: canonical family name -> capability record (size bounds are the builders'
#: own ``ValueError`` limits; ``max_size=None`` means unbounded in principle)
FAMILY_CAPABILITIES: Dict[str, FamilyCapability] = {
    "bv": FamilyCapability(1, None, _SUPERPOSITION_MODES, (3, 4, 5)),
    "grover-single": FamilyCapability(2, None, _SUPERPOSITION_MODES, (2,), cost_scale=4.0),
    "grover-all": FamilyCapability(2, None, _SUPERPOSITION_MODES, (2,), cost_scale=4.0),
    "mctoffoli": FamilyCapability(2, None, _ALL_MODES, (2, 3, 4)),
    "ghz": FamilyCapability(2, None, _SUPERPOSITION_MODES, (3, 4, 5)),
    "bell-chain": FamilyCapability(1, None, _SUPERPOSITION_MODES, (2, 3, 4)),
    "qft-zero": FamilyCapability(1, None, _SUPERPOSITION_MODES, (2, 3), cost_scale=2.0),
    "qft-roundtrip": FamilyCapability(1, None, _SUPERPOSITION_MODES, (2, 3), cost_scale=4.0),
    "adder": FamilyCapability(1, None, _ALL_MODES, (1, 2, 3)),
}


def family_capability(name: str) -> FamilyCapability:
    """The :class:`FamilyCapability` of ``name`` (alias-aware)."""
    return FAMILY_CAPABILITIES[resolve_family(name)]


def validate_family_size(name: str, size: int) -> int:
    """Check ``size`` against the family's bounds; returns it unchanged."""
    capability = family_capability(name)
    if size < capability.min_size:
        raise ValueError(
            f"family {name!r} needs size >= {capability.min_size}, got {size}"
        )
    if capability.max_size is not None and size > capability.max_size:
        raise ValueError(
            f"family {name!r} supports sizes up to {capability.max_size}, got {size}"
        )
    return size


def validate_family_mode(name: str, mode: str) -> str:
    """Check that the family's circuits are analysable under ``mode``."""
    capability = family_capability(name)
    if mode not in capability.modes:
        raise ValueError(
            f"family {name!r} does not support mode {mode!r} "
            f"(its circuits need one of {capability.modes})"
        )
    return mode


def default_campaign_sizes(name: str) -> Tuple[int, ...]:
    """The default size sweep a matrix campaign uses for ``name``."""
    return family_capability(name).campaign_sizes


def family_names(include_aliases: bool = True) -> List[str]:
    """Sorted names accepted by :func:`build_family`."""
    names = set(FAMILY_BUILDERS)
    if include_aliases:
        names.update(FAMILY_ALIASES)
    return sorted(names)


def resolve_family(name: str) -> str:
    """Map an alias to its canonical family name; ``ValueError`` on unknown names."""
    canonical = FAMILY_ALIASES.get(name, name)
    if canonical not in FAMILY_BUILDERS:
        raise ValueError(f"unknown benchmark family {name!r}; known: {family_names()}")
    return canonical


def build_family(name: str, size: int = None) -> VerificationBenchmark:
    """Build the benchmark for ``name`` (alias-aware) at ``size`` (or its default)."""
    canonical = resolve_family(name)
    if size is None:
        size = DEFAULT_SIZES[canonical]
    return FAMILY_BUILDERS[canonical](size)
