"""Grover's search benchmark circuits (the Grover-Sing and Grover-All families).

``grover_single_circuit`` implements textbook Grover search for one hidden
string over ``m`` work qubits, ``m - 1`` clean ancillas (for the
multi-controlled gates) and one phase-kickback qubit — ``2m`` qubits in total,
as in the paper.  ``grover_all_circuit`` is the Appendix D variant where the
oracle's answer is taken from ``m`` additional input qubits, so a single TA
run analyses the circuit for *all* ``2^m`` oracles simultaneously (``3m``
qubits).

Post-conditions follow Appendix E: after the chosen number of iterations the
work register holds amplitude ``a_h`` on the hidden string and a common
amplitude ``a_l`` on every other basis string, the ancillas are back to zero
and the kickback qubit (after the extra final Hadamard) is ``|1>``.  The exact
values of ``a_h``/``a_l`` are obtained by running our exact reference
simulator on a single instance — the documented substitution for the manual
construction used by the paper's authors (see DESIGN.md).
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Optional, Sequence, Tuple, Union

from ..algebraic import AlgebraicNumber
from ..circuits.circuit import Circuit
from ..core.specs import classical_product_condition, states_condition, zero_state_precondition
from ..simulator.statevector import StateVectorSimulator
from ..states import QuantumState, parse_bitstring
from .common import VerificationBenchmark, append_multi_controlled_x, append_multi_controlled_z

__all__ = [
    "default_iterations",
    "grover_single_layout",
    "grover_single_circuit",
    "grover_single_benchmark",
    "grover_all_layout",
    "grover_all_circuit",
    "grover_all_benchmark",
]


def default_iterations(num_work_qubits: int) -> int:
    """The usual ``floor(pi/4 * sqrt(2^m))`` Grover iteration count (at least 1)."""
    return max(1, int(math.floor(math.pi / 4.0 * math.sqrt(2 ** num_work_qubits))))


# --------------------------------------------------------------------- single oracle
def grover_single_layout(num_work_qubits: int) -> Dict[str, object]:
    """Qubit layout of Grover-Sing: work block, ancilla block, kickback qubit."""
    if num_work_qubits < 2:
        raise ValueError("Grover needs at least two work qubits")
    work = list(range(num_work_qubits))
    ancillas = list(range(num_work_qubits, 2 * num_work_qubits - 1))
    kickback = 2 * num_work_qubits - 1
    return {"work": work, "ancillas": ancillas, "kickback": kickback, "num_qubits": 2 * num_work_qubits}


def _normalise_secret(secret: Union[str, Sequence[int]], length: int) -> Tuple[int, ...]:
    bits = parse_bitstring(secret) if isinstance(secret, str) else tuple(int(b) for b in secret)
    if len(bits) != length:
        raise ValueError(f"secret has length {len(bits)}, expected {length}")
    return bits


def _append_diffusion(circuit: Circuit, work: Sequence[int], ancillas: Sequence[int]) -> None:
    """Inversion about the mean on the work register (H X ... MCZ ... X H)."""
    for qubit in work:
        circuit.add("h", qubit)
    for qubit in work:
        circuit.add("x", qubit)
    append_multi_controlled_z(circuit, list(work[:-1]), work[-1], ancillas)
    for qubit in work:
        circuit.add("x", qubit)
    for qubit in work:
        circuit.add("h", qubit)


def grover_single_circuit(
    num_work_qubits: int,
    secret: Union[str, Sequence[int]],
    iterations: Optional[int] = None,
) -> Circuit:
    """Grover's search for one hidden string (phase kickback oracle)."""
    layout = grover_single_layout(num_work_qubits)
    secret_bits = _normalise_secret(secret, num_work_qubits)
    if iterations is None:
        iterations = default_iterations(num_work_qubits)
    work, ancillas, kickback = layout["work"], layout["ancillas"], layout["kickback"]
    circuit = Circuit(layout["num_qubits"], name=f"grover_single_{num_work_qubits}")
    circuit.add("x", kickback)
    circuit.add("h", kickback)
    for qubit in work:
        circuit.add("h", qubit)
    for _ in range(iterations):
        # oracle: flip the kickback qubit exactly when the work register equals the secret
        for qubit, bit in zip(work, secret_bits):
            if bit == 0:
                circuit.add("x", qubit)
        append_multi_controlled_x(circuit, work, kickback, ancillas)
        for qubit, bit in zip(work, secret_bits):
            if bit == 0:
                circuit.add("x", qubit)
        _append_diffusion(circuit, work, ancillas)
    circuit.add("h", kickback)
    return circuit


def grover_single_benchmark(
    num_work_qubits: int,
    secret: Optional[Union[str, Sequence[int]]] = None,
    iterations: Optional[int] = None,
) -> VerificationBenchmark:
    """Verification benchmark for Grover-Sing: ``{|0...0>} C {a_h |s..> + a_l |i..>}``."""
    if secret is None:
        secret = tuple(1 for _ in range(num_work_qubits))
    secret_bits = _normalise_secret(secret, num_work_qubits)
    if iterations is None:
        iterations = default_iterations(num_work_qubits)
    circuit = grover_single_circuit(num_work_qubits, secret_bits, iterations)
    layout = grover_single_layout(num_work_qubits)
    precondition = zero_state_precondition(circuit.num_qubits)
    a_high, a_low = _reference_amplitudes(circuit, layout, secret_bits)
    postcondition = states_condition(
        [_structured_output(num_work_qubits, layout, secret_bits, a_high, a_low)]
    )
    return VerificationBenchmark(
        name=f"Grover-Sing(n={num_work_qubits})",
        circuit=circuit,
        precondition=precondition,
        postcondition=postcondition,
        description=(
            f"Grover search, secret {''.join(map(str, secret_bits))}, {iterations} iteration(s)"
        ),
    )


def _tail_bits(layout: Dict[str, object]) -> Tuple[int, ...]:
    """Expected classical values of the ancilla block plus kickback qubit: 0...0 1."""
    return tuple(0 for _ in layout["ancillas"]) + (1,)


def _structured_output(
    num_work_qubits: int,
    layout: Dict[str, object],
    secret_bits: Tuple[int, ...],
    a_high: AlgebraicNumber,
    a_low: AlgebraicNumber,
    prefix: Tuple[int, ...] = (),
) -> QuantumState:
    """The expected Grover output state: a_high on the secret, a_low elsewhere."""
    tail = _tail_bits(layout)
    num_qubits = len(prefix) + num_work_qubits + len(tail)
    state = QuantumState(num_qubits)
    for assignment in itertools.product((0, 1), repeat=num_work_qubits):
        amplitude = a_high if assignment == secret_bits else a_low
        state[prefix + assignment + tail] = amplitude
    return state


def _reference_amplitudes(
    circuit: Circuit,
    layout: Dict[str, object],
    secret_bits: Tuple[int, ...],
    prefix: Tuple[int, ...] = (),
) -> Tuple[AlgebraicNumber, AlgebraicNumber]:
    """Run the exact simulator once and read off ``a_h`` (secret) and ``a_l`` (other)."""
    simulator = StateVectorSimulator()
    initial = QuantumState.basis_state(circuit.num_qubits, prefix + (0,) * (circuit.num_qubits - len(prefix)))
    output = simulator.run(circuit, initial)
    tail = _tail_bits(layout)
    high = output[prefix + secret_bits + tail]
    other = tuple(1 - b for b in secret_bits)
    low = output[prefix + other + tail]
    return high, low


# ------------------------------------------------------------------------ all oracles
def grover_all_layout(num_work_qubits: int) -> Dict[str, object]:
    """Qubit layout of Grover-All: oracle block, work block, ancillas, kickback."""
    if num_work_qubits < 2:
        raise ValueError("Grover needs at least two work qubits")
    oracle = list(range(num_work_qubits))
    work = list(range(num_work_qubits, 2 * num_work_qubits))
    ancillas = list(range(2 * num_work_qubits, 3 * num_work_qubits - 1))
    kickback = 3 * num_work_qubits - 1
    return {
        "oracle": oracle,
        "work": work,
        "ancillas": ancillas,
        "kickback": kickback,
        "num_qubits": 3 * num_work_qubits,
    }


def grover_all_circuit(num_work_qubits: int, iterations: Optional[int] = None) -> Circuit:
    """Grover's search where the oracle answer is read from the input qubits (Appendix D)."""
    layout = grover_all_layout(num_work_qubits)
    if iterations is None:
        iterations = default_iterations(num_work_qubits)
    oracle, work, ancillas, kickback = (
        layout["oracle"],
        layout["work"],
        layout["ancillas"],
        layout["kickback"],
    )
    circuit = Circuit(layout["num_qubits"], name=f"grover_all_{num_work_qubits}")
    circuit.add("x", kickback)
    circuit.add("h", kickback)
    for qubit in work:
        circuit.add("h", qubit)
    for _ in range(iterations):
        # oracle: compare the work register against the oracle-input register
        for source, destination in zip(oracle, work):
            circuit.add("cx", source, destination)
        for qubit in work:
            circuit.add("x", qubit)
        append_multi_controlled_x(circuit, work, kickback, ancillas)
        for qubit in work:
            circuit.add("x", qubit)
        for source, destination in zip(oracle, work):
            circuit.add("cx", source, destination)
        _append_diffusion(circuit, work, ancillas)
    circuit.add("h", kickback)
    return circuit


def grover_all_benchmark(
    num_work_qubits: int, iterations: Optional[int] = None
) -> VerificationBenchmark:
    """Verification benchmark for Grover-All over every possible oracle string."""
    if iterations is None:
        iterations = default_iterations(num_work_qubits)
    circuit = grover_all_circuit(num_work_qubits, iterations)
    layout = grover_all_layout(num_work_qubits)
    allowed = []
    for qubit in range(layout["num_qubits"]):
        allowed.append({0, 1} if qubit in layout["oracle"] else {0})
    precondition = classical_product_condition(allowed)
    # the amplitudes do not depend on the oracle string; read them off one instance
    zero_secret = (0,) * num_work_qubits
    a_high, a_low = _reference_amplitudes(circuit, layout, zero_secret, prefix=zero_secret)
    outputs = []
    for secret in itertools.product((0, 1), repeat=num_work_qubits):
        outputs.append(
            _structured_output(num_work_qubits, layout, secret, a_high, a_low, prefix=secret)
        )
    postcondition = states_condition(outputs)
    return VerificationBenchmark(
        name=f"Grover-All(n={num_work_qubits})",
        circuit=circuit,
        precondition=precondition,
        postcondition=postcondition,
        description=f"Grover search over all {2 ** num_work_qubits} oracles, {iterations} iteration(s)",
    )
