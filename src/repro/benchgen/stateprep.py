"""Entangled-state preparation circuits (GHZ chains and Bell-pair arrays).

The overview of the paper (Fig. 1) uses the 2-qubit Bell-state preparation as
its running example; these generators scale that example up and provide the
matching verification triples:

* ``ghz_benchmark`` — ``{|0^n>} H;CX-chain {(|0..0> + |1..1>)/sqrt 2}``,
* ``bell_chain_benchmark`` — ``{|0^{2m}>} m independent EPR circuits
  {tensor product of m Bell pairs}``.

Both post-conditions are single exact states, so the whole family doubles as a
regression test of the Hadamard (composition-based) transformer on growing
qubit counts.
"""

from __future__ import annotations

from ..algebraic import AlgebraicNumber
from ..circuits.circuit import Circuit
from ..core.specs import states_condition, zero_state_precondition
from ..states import QuantumState
from .common import VerificationBenchmark

__all__ = [
    "ghz_circuit",
    "ghz_state",
    "ghz_benchmark",
    "bell_chain_circuit",
    "bell_chain_state",
    "bell_chain_benchmark",
]


def ghz_circuit(num_qubits: int) -> Circuit:
    """Hadamard on qubit 0 followed by a CNOT chain: prepares the ``n``-qubit GHZ state."""
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least two qubits")
    circuit = Circuit(num_qubits, name=f"ghz_{num_qubits}")
    circuit.add("h", 0)
    for qubit in range(num_qubits - 1):
        circuit.add("cx", qubit, qubit + 1)
    return circuit


def ghz_state(num_qubits: int) -> QuantumState:
    """The GHZ state ``(|0...0> + |1...1>) / sqrt 2`` with exact amplitudes."""
    amplitude = AlgebraicNumber(1, 0, 0, 0, 1)
    return QuantumState(
        num_qubits, {(0,) * num_qubits: amplitude, (1,) * num_qubits: amplitude}
    )


def ghz_benchmark(num_qubits: int) -> VerificationBenchmark:
    """``{|0^n>} GHZ-prep {GHZ_n}`` verification triple."""
    return VerificationBenchmark(
        name=f"GHZ(n={num_qubits})",
        circuit=ghz_circuit(num_qubits),
        precondition=zero_state_precondition(num_qubits),
        postcondition=states_condition([ghz_state(num_qubits)]),
        description="H + CNOT chain prepares the n-qubit GHZ state",
    )


def bell_chain_circuit(num_pairs: int) -> Circuit:
    """``num_pairs`` disjoint EPR circuits on ``2 * num_pairs`` qubits."""
    if num_pairs < 1:
        raise ValueError("need at least one Bell pair")
    circuit = Circuit(2 * num_pairs, name=f"bell_chain_{num_pairs}")
    for pair in range(num_pairs):
        first = 2 * pair
        circuit.add("h", first)
        circuit.add("cx", first, first + 1)
    return circuit


def bell_chain_state(num_pairs: int) -> QuantumState:
    """The tensor product of ``num_pairs`` Bell pairs ``(|00> + |11>) / sqrt 2``."""
    num_qubits = 2 * num_pairs
    amplitude = AlgebraicNumber(1, 0, 0, 0, num_pairs)
    state = QuantumState(num_qubits)
    for pattern in range(1 << num_pairs):
        bits = []
        for pair in range(num_pairs):
            bit = (pattern >> (num_pairs - 1 - pair)) & 1
            bits.extend((bit, bit))
        state[tuple(bits)] = amplitude
    return state


def bell_chain_benchmark(num_pairs: int) -> VerificationBenchmark:
    """``{|0^{2m}>} Bell-chain {product of m Bell pairs}`` verification triple."""
    return VerificationBenchmark(
        name=f"BellChain(m={num_pairs})",
        circuit=bell_chain_circuit(num_pairs),
        precondition=zero_state_precondition(2 * num_pairs),
        postcondition=states_condition([bell_chain_state(num_pairs)]),
        description="m disjoint EPR circuits prepare m Bell pairs",
    )
