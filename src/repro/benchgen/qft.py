"""Approximate quantum Fourier transform circuits (an extension family).

The paper's algebraic amplitude encoding supports phases that are multiples of
``pi/4`` (powers of ``w = e^{i*pi/4}``), so the controlled rotations ``R_2``
(phase ``pi/2``) and ``R_3`` (phase ``pi/4``) of the textbook QFT are exactly
representable as the controlled-phase gates ``cs`` and ``ct``; higher
rotations are dropped, which is the standard *approximate QFT* (AQFT) with
approximation degree 3.  The paper notes (Section 4, "A note on expressivity")
that finer rotations would have to be approximated via Solovay–Kitaev; this
family exercises the native part.

Two verification triples are provided:

* ``qft_zero_benchmark`` — ``{|0^n>} AQFT {uniform superposition}``: on the
  all-zero input no controlled phase ever fires, so the output is the exact
  uniform superposition with amplitude ``(1/sqrt 2)^n`` everywhere.
* ``qft_roundtrip_benchmark`` — ``{all basis states} AQFT ; AQFT† {all basis
  states}``: the round trip is the identity, so the set of outputs equals the
  set of inputs.  This stresses the controlled-phase transformers in both
  directions (``cs``/``ct`` and ``csdg``/``ctdg``).
"""

from __future__ import annotations

from ..algebraic import AlgebraicNumber
from ..circuits.circuit import Circuit
from ..core.specs import states_condition, zero_state_precondition
from ..states import QuantumState
from ..ta.construction import all_basis_states_ta
from .common import VerificationBenchmark

__all__ = [
    "qft_circuit",
    "inverse_qft_circuit",
    "uniform_superposition_state",
    "qft_zero_benchmark",
    "qft_roundtrip_benchmark",
]

#: controlled-phase gate used for a rotation by ``pi / 2^(k-1)`` (distance ``k-1``)
_CONTROLLED_ROTATIONS = {2: "cs", 3: "ct"}
_INVERSE_ROTATIONS = {2: "csdg", 3: "ctdg"}


def qft_circuit(num_qubits: int, approximation_degree: int = 3, include_swaps: bool = True) -> Circuit:
    """The approximate QFT on ``num_qubits`` qubits.

    ``approximation_degree`` bounds the order ``k`` of the controlled
    rotations ``R_k`` that are kept; only ``k <= 3`` is representable with the
    algebraic encoding, larger values are rejected.  With ``include_swaps``
    the final qubit-reversal swaps are appended (as in the textbook circuit).
    """
    if num_qubits <= 0:
        raise ValueError("the QFT needs at least one qubit")
    if approximation_degree < 1 or approximation_degree > 3:
        raise ValueError(
            "approximation_degree must be between 1 and 3: the algebraic encoding "
            "only represents phases that are multiples of pi/4"
        )
    circuit = Circuit(num_qubits, name=f"aqft_{num_qubits}")
    for target in range(num_qubits):
        circuit.add("h", target)
        for distance in range(1, num_qubits - target):
            order = distance + 1
            if order > approximation_degree:
                break
            circuit.add(_CONTROLLED_ROTATIONS[order], target + distance, target)
    if include_swaps:
        for qubit in range(num_qubits // 2):
            circuit.add("swap", qubit, num_qubits - 1 - qubit)
    return circuit


def inverse_qft_circuit(
    num_qubits: int, approximation_degree: int = 3, include_swaps: bool = True
) -> Circuit:
    """The adjoint of :func:`qft_circuit` (gates reversed, phases conjugated)."""
    forward = qft_circuit(num_qubits, approximation_degree, include_swaps)
    inverse = Circuit(num_qubits, name=f"aqft_inv_{num_qubits}")
    substitutions = {"cs": "csdg", "ct": "ctdg"}
    for gate in reversed(list(forward)):
        inverse.add(substitutions.get(gate.kind, gate.kind), *gate.qubits)
    return inverse


def uniform_superposition_state(num_qubits: int) -> QuantumState:
    """The state with amplitude ``(1/sqrt 2)^n`` at every basis position."""
    amplitude = AlgebraicNumber(1, 0, 0, 0, num_qubits)
    state = QuantumState(num_qubits)
    for index in range(1 << num_qubits):
        state[index] = amplitude
    return state


def qft_zero_benchmark(num_qubits: int, approximation_degree: int = 3) -> VerificationBenchmark:
    """``{|0^n>} AQFT {uniform superposition}`` verification triple."""
    circuit = qft_circuit(num_qubits, approximation_degree)
    postcondition = states_condition([uniform_superposition_state(num_qubits)])
    return VerificationBenchmark(
        name=f"QFT-Zero(n={num_qubits})",
        circuit=circuit,
        precondition=zero_state_precondition(num_qubits),
        postcondition=postcondition,
        description="approximate QFT maps |0..0> to the uniform superposition",
    )


def qft_roundtrip_benchmark(num_qubits: int, approximation_degree: int = 3) -> VerificationBenchmark:
    """``{all basis states} AQFT ; AQFT† {all basis states}`` verification triple."""
    roundtrip = qft_circuit(num_qubits, approximation_degree).concatenated(
        inverse_qft_circuit(num_qubits, approximation_degree),
        name=f"aqft_roundtrip_{num_qubits}",
    )
    basis = all_basis_states_ta(num_qubits)
    return VerificationBenchmark(
        name=f"QFT-Roundtrip(n={num_qubits})",
        circuit=roundtrip,
        precondition=basis,
        postcondition=basis,
        description="AQFT followed by its inverse preserves the set of all basis states",
    )
