"""RevLib-style reversible-circuit generators (the RevLib family of Table 3).

The paper's RevLib benchmarks are distributed as fixed circuit files (adders,
cycle functions, hidden-weighted-bit and unstructured reversible functions).
Offline we cannot ship those files, so this module synthesises circuits of the
same families — ripple-carry adders, controlled increments ("cycle"), parity
networks ("rd"), and seeded unstructured reversible functions ("hwb"/"urf") —
with configurable sizes, using only CX / CCX / X gates exactly like the
originals.  The bug-finding experiment (inject one random gate, check
non-equivalence) is independent of the concrete function computed, so the
experiment's shape is preserved; see DESIGN.md for the substitution note.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..circuits.circuit import Circuit
from .common import append_multi_controlled_x

__all__ = [
    "ripple_carry_adder",
    "controlled_increment",
    "parity_network",
    "unstructured_reversible",
    "hidden_weighted_bit_like",
    "revlib_suite",
]


def ripple_carry_adder(num_bits: int) -> Circuit:
    """In-place ripple-carry adder ``b := a + b`` (the ``addNN`` RevLib family).

    Uses the Cuccaro/CDKM construction over ``2*num_bits + 2`` qubits
    (``a`` register, ``b`` register, one input carry, one output carry) with
    only CX and CCX gates.
    """
    if num_bits < 1:
        raise ValueError("adder needs at least one bit")
    # layout: carry_in, a_0..a_{n-1}, b_0..b_{n-1}, carry_out
    carry_in = 0
    a = [1 + i for i in range(num_bits)]
    b = [1 + num_bits + i for i in range(num_bits)]
    carry_out = 1 + 2 * num_bits
    circuit = Circuit(2 + 2 * num_bits, name=f"add{num_bits}")

    def maj(x: int, y: int, z: int) -> None:
        circuit.add("cx", z, y)
        circuit.add("cx", z, x)
        circuit.add("ccx", x, y, z)

    def uma(x: int, y: int, z: int) -> None:
        circuit.add("ccx", x, y, z)
        circuit.add("cx", z, x)
        circuit.add("cx", x, y)

    maj(carry_in, b[0], a[0])
    for i in range(1, num_bits):
        maj(a[i - 1], b[i], a[i])
    circuit.add("cx", a[num_bits - 1], carry_out)
    for i in range(num_bits - 1, 0, -1):
        uma(a[i - 1], b[i], a[i])
    uma(carry_in, b[0], a[0])
    return circuit


def controlled_increment(num_bits: int, num_controls: int = 1) -> Circuit:
    """Controlled increment modulo ``2^num_bits`` (the ``cycle`` RevLib family).

    When all control qubits are 1, the target register is incremented by one
    (a cyclic permutation of its basis states).  Multi-controlled X gates are
    decomposed over a clean ancilla block.
    """
    if num_bits < 1:
        raise ValueError("increment needs at least one target bit")
    controls = list(range(num_controls))
    register = [num_controls + i for i in range(num_bits)]
    ancillas = [num_controls + num_bits + i for i in range(max(0, num_bits + num_controls - 2))]
    circuit = Circuit(num_controls + num_bits + len(ancillas), name=f"cycle{num_bits}_{num_controls}")
    # increment: flip bit i controlled on all lower bits being 1 (and the controls);
    # the flips go from the most significant bit down so every control reads the
    # pre-increment value of the lower bits
    for index in range(num_bits):
        gate_controls = controls + register[index + 1 :]
        append_multi_controlled_x(circuit, gate_controls, register[index], ancillas)
    return circuit


def parity_network(num_bits: int, taps: Optional[List[int]] = None) -> Circuit:
    """Parity / syndrome network (the ``rd``/``ham`` RevLib families).

    XORs selected data qubits into check qubits, then mixes the checks with a
    layer of Toffoli gates — the typical structure of the rd53/rd84 and
    Hamming-code benchmarks.
    """
    if num_bits < 3:
        raise ValueError("parity network needs at least three data bits")
    num_checks = max(2, num_bits // 3)
    data = list(range(num_bits))
    checks = [num_bits + i for i in range(num_checks)]
    circuit = Circuit(num_bits + num_checks, name=f"rd{num_bits}")
    if taps is None:
        taps = list(range(1, num_checks + 1))
    for check_index, check in enumerate(checks):
        stride = taps[check_index % len(taps)]
        for position in range(0, num_bits, stride):
            circuit.add("cx", data[position], check)
    for check_index in range(num_checks - 1):
        circuit.add("ccx", checks[check_index], checks[check_index + 1], data[check_index])
    return circuit


def unstructured_reversible(num_bits: int, num_gates: int, seed: int = 0, name: str = "") -> Circuit:
    """Seeded unstructured reversible function (the ``urf`` RevLib family).

    A deterministic pseudo-random cascade of X / CX / CCX gates: classical
    reversible logic with no exploitable structure, the property that makes
    the urf benchmarks hard for equivalence checkers.
    """
    rng = random.Random(seed)
    circuit = Circuit(num_bits, name=name or f"urf{num_bits}_{seed}")
    kinds = ["x", "cx", "ccx"] if num_bits >= 3 else (["x", "cx"] if num_bits == 2 else ["x"])
    for _ in range(num_gates):
        kind = rng.choice(kinds)
        arity = {"x": 1, "cx": 2, "ccx": 3}[kind]
        circuit.add(kind, *rng.sample(range(num_bits), arity))
    return circuit


def hidden_weighted_bit_like(num_bits: int, seed: int = 7) -> Circuit:
    """Hidden-weighted-bit style circuit (the ``hwb`` RevLib family).

    Approximates the hwb structure: a cascade of controlled cyclic shifts
    (implemented with controlled swaps, i.e. Fredkin gates) whose controls
    walk over the register, followed by a small unstructured mixing layer.
    """
    if num_bits < 3:
        raise ValueError("hwb needs at least three bits")
    circuit = Circuit(num_bits, name=f"hwb{num_bits}")
    for control in range(num_bits):
        for position in range(num_bits - 1):
            if position == control:
                continue
            other = (position + 1) % num_bits
            if other == control:
                continue
            circuit.add("cswap", control, position, other)
    mixing = unstructured_reversible(num_bits, num_bits, seed=seed)
    circuit.extend(mixing.gates)
    return circuit


def revlib_suite(scale: int = 1) -> Dict[str, Circuit]:
    """A named suite of RevLib-style circuits, loosely mirroring Table 3's rows.

    ``scale`` multiplies the register widths so the suite can be grown toward
    the paper's sizes (the defaults are laptop-sized).
    """
    base = 4 * scale
    suite = {
        f"add{base * 2}": ripple_carry_adder(base * 2),
        f"add{base * 4}": ripple_carry_adder(base * 4),
        f"cycle{base}_2": controlled_increment(base, num_controls=2),
        f"rd{base * 2}": parity_network(base * 2),
        f"ham{base * 2 - 1}": parity_network(base * 2 - 1, taps=[1, 2, 3]),
        f"hwb{base + 2}": hidden_weighted_bit_like(base + 2),
        f"urf{base + 1}_1": unstructured_reversible(base + 1, 24 * scale, seed=1),
        f"urf{base + 2}_2": unstructured_reversible(base + 2, 40 * scale, seed=2),
        f"mod5adder_{base * 3}": ripple_carry_adder(max(2, base // 2)),
        f"avg{base * 6}": unstructured_reversible(base * 6, 12 * scale, seed=3, name=f"avg{base * 6}"),
    }
    return suite
