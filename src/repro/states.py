"""Explicit quantum states with exact algebraic amplitudes.

A :class:`QuantumState` is the *function representation* used by the paper
(Section 2.1): a mapping from computational-basis bitstrings ``{0,1}^n`` to
algebraic amplitudes.  It is the common currency between the tree-automaton
world (trees are exactly such functions), the exact simulator and the
reference gate semantics used in tests.

Basis states are indexed by tuples of bits ``(b_1, ..., b_n)`` where ``b_1``
corresponds to qubit 0 (the root level of the tree encoding, the paper's
``x_1``).  Helpers convert to/from integer indices using the most significant
bit first (MSBF) convention of the paper.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .algebraic import ONE, ZERO, AlgebraicNumber

__all__ = ["QuantumState", "bits_to_int", "int_to_bits", "parse_bitstring"]

Bits = Tuple[int, ...]


def bits_to_int(bits: Iterable[int]) -> int:
    """Convert a bit tuple (MSBF) to its integer index."""
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


def int_to_bits(value: int, num_qubits: int) -> Bits:
    """Convert an integer index to an MSBF bit tuple of width ``num_qubits``."""
    if value < 0 or value >= (1 << num_qubits):
        raise ValueError(f"index {value} out of range for {num_qubits} qubits")
    return tuple((value >> (num_qubits - 1 - i)) & 1 for i in range(num_qubits))


def parse_bitstring(text: str) -> Bits:
    """Parse a string like ``"0101"`` into a bit tuple."""
    if not text or any(ch not in "01" for ch in text):
        raise ValueError(f"not a bitstring: {text!r}")
    return tuple(int(ch) for ch in text)


class QuantumState:
    """A sparse, exact ``n``-qubit quantum state (or un-normalised vector)."""

    __slots__ = ("num_qubits", "_amplitudes")

    def __init__(self, num_qubits: int, amplitudes: Optional[Mapping[Bits, AlgebraicNumber]] = None):
        if num_qubits <= 0:
            raise ValueError("a quantum state needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self._amplitudes: Dict[Bits, AlgebraicNumber] = {}
        if amplitudes:
            for basis, amplitude in amplitudes.items():
                self[basis] = amplitude

    # ------------------------------------------------------------ constructors
    @classmethod
    def basis_state(cls, num_qubits: int, basis) -> "QuantumState":
        """The computational basis state ``|basis>`` with amplitude 1."""
        bits = cls._normalise_basis(basis, num_qubits)
        return cls(num_qubits, {bits: ONE})

    @classmethod
    def zero_state(cls, num_qubits: int) -> "QuantumState":
        """The all-zero basis state ``|0...0>``."""
        return cls.basis_state(num_qubits, (0,) * num_qubits)

    # ---------------------------------------------------------------- mapping
    @staticmethod
    def _normalise_basis(basis, num_qubits: int) -> Bits:
        if isinstance(basis, str):
            bits = parse_bitstring(basis)
        elif isinstance(basis, int):
            bits = int_to_bits(basis, num_qubits)
        else:
            bits = tuple(int(b) for b in basis)
        if len(bits) != num_qubits:
            raise ValueError(f"basis {basis!r} has wrong width (expected {num_qubits})")
        if any(bit not in (0, 1) for bit in bits):
            raise ValueError(f"basis {basis!r} contains non-binary values")
        return bits

    def __getitem__(self, basis) -> AlgebraicNumber:
        bits = self._normalise_basis(basis, self.num_qubits)
        return self._amplitudes.get(bits, ZERO)

    def __setitem__(self, basis, amplitude: AlgebraicNumber) -> None:
        bits = self._normalise_basis(basis, self.num_qubits)
        if amplitude.is_zero():
            self._amplitudes.pop(bits, None)
        else:
            self._amplitudes[bits] = amplitude

    def items(self) -> Iterator[Tuple[Bits, AlgebraicNumber]]:
        """Iterate over ``(bits, amplitude)`` pairs with non-zero amplitude."""
        return iter(sorted(self._amplitudes.items()))

    def nonzero_count(self) -> int:
        """Number of basis states with a non-zero amplitude."""
        return len(self._amplitudes)

    def __len__(self) -> int:
        return len(self._amplitudes)

    def __bool__(self) -> bool:
        return bool(self._amplitudes)

    # --------------------------------------------------------------- algebra
    def copy(self) -> "QuantumState":
        """Return an independent copy."""
        return QuantumState(self.num_qubits, dict(self._amplitudes))

    def __add__(self, other: "QuantumState") -> "QuantumState":
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot add states of different widths")
        result = self.copy()
        for bits, amplitude in other._amplitudes.items():
            result[bits] = result[bits] + amplitude
        return result

    def __sub__(self, other: "QuantumState") -> "QuantumState":
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot subtract states of different widths")
        result = self.copy()
        for bits, amplitude in other._amplitudes.items():
            result[bits] = result[bits] - amplitude
        return result

    def scaled(self, scalar: AlgebraicNumber) -> "QuantumState":
        """Return the state with every amplitude multiplied by ``scalar``."""
        return QuantumState(
            self.num_qubits,
            {bits: amplitude * scalar for bits, amplitude in self._amplitudes.items()},
        )

    def norm_squared(self) -> AlgebraicNumber:
        """Return ``sum |amplitude|^2`` as an exact algebraic number."""
        total = ZERO
        for amplitude in self._amplitudes.values():
            total = total + amplitude.abs_squared()
        return total

    def is_normalised(self) -> bool:
        """True iff the squared norm equals exactly 1."""
        return self.norm_squared() == ONE

    # ------------------------------------------------------------ comparisons
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumState):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._amplitudes == other._amplitudes

    def __hash__(self) -> int:
        return hash((self.num_qubits, frozenset(self._amplitudes.items())))

    def equals_up_to_global_phase(self, other: "QuantumState") -> bool:
        """True iff ``self == phase * other`` for some unit algebraic phase.

        Only the eight phases ``w^0 .. w^7`` (and their combination with -1,
        already included) are considered, which is all the gate set can produce
        for basis-state inputs of Clifford+T circuits without 1/sqrt2 factors;
        a fallback compares complex ratios numerically.
        """
        if self.num_qubits != other.num_qubits:
            return False
        if len(self._amplitudes) != len(other._amplitudes):
            return False
        if not self._amplitudes:
            return True
        for power in range(8):
            phase = AlgebraicNumber.omega_power(power)
            if all(self[bits] == amplitude * phase for bits, amplitude in other._amplitudes.items()):
                return True
        # numeric fallback for phases such as (1+i)/sqrt(2) combinations
        ref_bits = next(iter(other._amplitudes))
        denominator = other[ref_bits].to_complex()
        numerator = self[ref_bits].to_complex()
        if abs(denominator) < 1e-12:
            return False
        ratio = numerator / denominator
        if abs(abs(ratio) - 1.0) > 1e-9:
            return False
        return all(
            abs(self[bits].to_complex() - ratio * amplitude.to_complex()) < 1e-9
            for bits, amplitude in other._amplitudes.items()
        )

    # --------------------------------------------------------------- exports
    def to_vector(self):
        """Return the dense ``2^n`` complex numpy vector (for cross-checking)."""
        import numpy as np

        vector = np.zeros(1 << self.num_qubits, dtype=complex)
        for bits, amplitude in self._amplitudes.items():
            vector[bits_to_int(bits)] = amplitude.to_complex()
        return vector

    def __repr__(self) -> str:
        terms = ", ".join(
            f"|{''.join(map(str, bits))}>: {amplitude}" for bits, amplitude in sorted(self._amplitudes.items())
        )
        return f"QuantumState({self.num_qubits}, {{{terms}}})"
