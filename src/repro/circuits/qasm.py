"""A small OpenQASM 2.0 reader/writer for the supported gate set.

The benchmark suites in the paper (RevLib, Feynman) are distributed as QASM /
real files; our generators can dump and reload circuits in an OpenQASM 2.0
subset so that examples and the CLI can exchange circuits with other tools.

Supported statements::

    OPENQASM 2.0;
    include "qelib1.inc";
    qreg <name>[<size>];
    creg <name>[<size>];          // accepted and ignored
    x q[0];  y q[1];  z q[2];  h q[3];  s q[0];  sdg q[0];  t q[0];  tdg q[0];
    rx(pi/2) q[0];  ry(pi/2) q[0];
    cx q[0], q[1];  cz q[0], q[1];  ccx q[0], q[1], q[2];
    swap q[0], q[1];  cswap q[0], q[1], q[2];
    barrier ...;                  // accepted and ignored
    // comments

Anything else raises :class:`QasmError`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from .circuit import Circuit
from .gates import GATE_ARITY, Gate

__all__ = ["QasmError", "parse_qasm", "to_qasm", "load_qasm_file", "save_qasm_file"]


class QasmError(ValueError):
    """Raised when a QASM program cannot be parsed or uses unsupported features."""


_QREG_RE = re.compile(r"^qreg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$")
_CREG_RE = re.compile(r"^creg\s+([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$")
_REF_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*\[\s*(\d+)\s*\]$")
_GATE_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\s*(\(([^)]*)\))?\s+(.*)$")

_ANGLE_ALIASES = {"pi/2", "pi / 2", "1.5707963267948966", "1.570796326794897"}


def parse_qasm(text: str, name: str = "qasm_circuit") -> Circuit:
    """Parse an OpenQASM 2.0 program into a :class:`Circuit`.

    Multiple quantum registers are concatenated in declaration order.
    """
    statements = _split_statements(text)
    registers: Dict[str, Tuple[int, int]] = {}  # name -> (offset, size)
    total_qubits = 0
    gates: List[Gate] = []
    saw_header = False

    for statement in statements:
        if statement.startswith("OPENQASM"):
            saw_header = True
            continue
        if statement.startswith("include"):
            continue
        if statement.startswith("barrier") or statement.startswith("creg"):
            continue
        if statement.startswith("measure") or statement.startswith("reset"):
            raise QasmError(f"unsupported statement (no classical control): {statement!r}")
        qreg_match = _QREG_RE.match(statement)
        if qreg_match:
            reg_name, size = qreg_match.group(1), int(qreg_match.group(2))
            if reg_name in registers:
                raise QasmError(f"register {reg_name!r} declared twice")
            registers[reg_name] = (total_qubits, size)
            total_qubits += size
            continue
        gate = _parse_gate_statement(statement, registers)
        gates.append(gate)

    if not saw_header:
        raise QasmError("missing 'OPENQASM 2.0;' header")
    if total_qubits == 0:
        raise QasmError("no quantum register declared")
    circuit = Circuit(total_qubits, name=name)
    circuit.extend(gates)
    return circuit


def _split_statements(text: str) -> List[str]:
    without_comments = re.sub(r"//[^\n]*", "", text)
    statements = []
    for raw in without_comments.split(";"):
        statement = " ".join(raw.split())
        if statement:
            statements.append(statement)
    return statements


def _parse_gate_statement(statement: str, registers: Dict[str, Tuple[int, int]]) -> Gate:
    match = _GATE_RE.match(statement)
    if not match:
        raise QasmError(f"cannot parse statement: {statement!r}")
    kind = match.group(1).lower()
    angle = match.group(3)
    operand_text = match.group(4)
    if kind not in GATE_ARITY:
        raise QasmError(f"unsupported gate: {kind!r}")
    if kind in ("rx", "ry"):
        if angle is None or angle.strip().lower() not in _ANGLE_ALIASES:
            raise QasmError(
                f"only pi/2 rotations are supported by the algebraic encoding, got {kind}({angle})"
            )
    elif angle is not None:
        raise QasmError(f"gate {kind!r} does not take parameters")
    qubits = tuple(_resolve(ref.strip(), registers) for ref in operand_text.split(","))
    return Gate(kind, qubits)


def _resolve(reference: str, registers: Dict[str, Tuple[int, int]]) -> int:
    match = _REF_RE.match(reference)
    if not match:
        raise QasmError(f"cannot parse qubit reference: {reference!r}")
    reg_name, index = match.group(1), int(match.group(2))
    if reg_name not in registers:
        raise QasmError(f"unknown register {reg_name!r}")
    offset, size = registers[reg_name]
    if index >= size:
        raise QasmError(f"qubit index {index} out of range for register {reg_name!r}[{size}]")
    return offset + index


def to_qasm(circuit: Circuit) -> str:
    """Serialize a circuit to OpenQASM 2.0."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
    ]
    for gate in circuit:
        operands = ", ".join(f"q[{q}]" for q in gate.qubits)
        if gate.kind in ("rx", "ry"):
            lines.append(f"{gate.kind}(pi/2) {operands};")
        else:
            lines.append(f"{gate.kind} {operands};")
    return "\n".join(lines) + "\n"


def load_qasm_file(path: str, name: str = "") -> Circuit:
    """Load a circuit from a QASM file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_qasm(text, name=name or path)


def save_qasm_file(circuit: Circuit, path: str) -> None:
    """Write a circuit to a QASM file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_qasm(circuit))
