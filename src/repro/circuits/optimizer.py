"""A small peephole circuit optimizer (the "device under test" for Table 3's use case).

The paper's bug-hunting experiments simulate the situation where an optimizer
produced a slightly wrong circuit.  To make that scenario runnable end-to-end
we ship a deliberately simple optimizer with the classic peephole rewrites:

* cancellation of adjacent inverse pairs (``H H``, ``X X``, ``CX CX``,
  ``S S†``, ``T T†``, ...), also across gates acting on disjoint qubits,
* phase-gate fusion (``T T -> S``, ``S S -> Z``, ``Z Z -> identity``),
* an optional **unsound** rewrite ("drop Z gates — they do not change the
  measurement outcome") that models the kind of subtle miscompilation the
  TA-based non-equivalence check is designed to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .circuit import Circuit
from .gates import Gate

__all__ = ["OptimizationReport", "PeepholeOptimizer"]

#: pairs of gate kinds that cancel when applied twice to the same qubits
_SELF_INVERSE = {"x", "y", "z", "h", "cx", "cz", "ccx", "swap", "cswap"}
#: adjacent phase-gate fusions: (first, second) -> replacement kind (None = identity)
_FUSIONS: Dict[Tuple[str, str], Optional[str]] = {
    ("t", "t"): "s",
    ("tdg", "tdg"): "sdg",
    ("s", "s"): "z",
    ("sdg", "sdg"): "z",
    ("s", "sdg"): None,
    ("sdg", "s"): None,
    ("t", "tdg"): None,
    ("tdg", "t"): None,
    ("s", "z"): "sdg",
    ("z", "s"): "sdg",
    ("sdg", "z"): "s",
    ("z", "sdg"): "s",
}


@dataclass
class OptimizationReport:
    """What the optimizer did to a circuit."""

    original_gates: int = 0
    optimized_gates: int = 0
    passes: int = 0
    cancellations: int = 0
    fusions: int = 0
    unsound_drops: int = 0

    @property
    def removed_gates(self) -> int:
        return self.original_gates - self.optimized_gates


class PeepholeOptimizer:
    """Iterated peephole optimization over the Table 1 gate set."""

    def __init__(self, enable_unsound_rewrites: bool = False, max_passes: int = 20):
        self.enable_unsound_rewrites = enable_unsound_rewrites
        self.max_passes = max_passes

    # ------------------------------------------------------------------ API
    def optimize(self, circuit: Circuit) -> Tuple[Circuit, OptimizationReport]:
        """Return the optimized circuit and a report of the applied rewrites."""
        report = OptimizationReport(original_gates=circuit.num_gates)
        gates: List[Gate] = list(circuit.gates)
        for _ in range(self.max_passes):
            report.passes += 1
            gates, changed = self._one_pass(gates, report)
            if not changed:
                break
        if self.enable_unsound_rewrites:
            kept = []
            for gate in gates:
                if gate.kind == "z":
                    report.unsound_drops += 1
                else:
                    kept.append(gate)
            gates = kept
        report.optimized_gates = len(gates)
        return Circuit(circuit.num_qubits, gates, name=f"{circuit.name}_opt"), report

    # ------------------------------------------------------------- one pass
    def _one_pass(self, gates: List[Gate], report: OptimizationReport) -> Tuple[List[Gate], bool]:
        result: List[Gate] = []
        changed = False
        for gate in gates:
            partner_index = self._find_partner(result, gate)
            if partner_index is None:
                result.append(gate)
                continue
            partner = result[partner_index]
            rewrite = self._combine(partner, gate)
            if rewrite == "cancel":
                del result[partner_index]
                report.cancellations += 1
                changed = True
            elif isinstance(rewrite, Gate):
                result[partner_index] = rewrite
                report.fusions += 1
                changed = True
            else:
                result.append(gate)
        return result, changed

    def _find_partner(self, prefix: List[Gate], gate: Gate) -> Optional[int]:
        """Find the most recent gate that ``gate`` can be combined with, provided
        every gate in between acts on disjoint qubits (so they commute trivially)."""
        touched = set(gate.qubits)
        for index in range(len(prefix) - 1, -1, -1):
            candidate = prefix[index]
            if set(candidate.qubits) & touched:
                if candidate.qubits == gate.qubits and self._combine(candidate, gate) is not None:
                    return index
                return None
        return None

    @staticmethod
    def _combine(first: Gate, second: Gate):
        """Return "cancel", a fused Gate, or None when no rewrite applies."""
        if first.qubits != second.qubits:
            return None
        if first.kind == second.kind and first.kind in _SELF_INVERSE:
            return "cancel"
        fusion_key = (first.kind, second.kind)
        if fusion_key in _FUSIONS:
            replacement = _FUSIONS[fusion_key]
            if replacement is None:
                return "cancel"
            return Gate(replacement, first.qubits)
        return None
