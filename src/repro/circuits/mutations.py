"""Bug injection for the bug-hunting experiments (Section 7.2).

The paper creates buggy circuit copies by inserting *one additional randomly
selected gate at a random location*.  This module reproduces that mutation and
a taxonomy of further operators modelled on the published Qiskit bug studies:
gate removal, operand swapping, phase errors (a phase gate replaced by its
adjoint or a half-angle counterpart), qubit-ordering swaps, off-by-one gate
duplication (the loop-bound fault), and adjacent-gate transposition.

Every operator is deterministic under an explicit seed *or* an explicit
:class:`random.Random` instance (``rng=``); passing ``rng=random.Random(seed)``
consumes exactly the same stream as passing ``seed=seed``, so callers that
thread one generator through many mutations stay byte-identical with the
seed-per-call convention used by campaign plans.  Each operator returns the
mutant together with a :class:`MutationRecord`, which serialises losslessly to
JSON so corpus entries and campaign reports can replay the exact mutation.
"""

from __future__ import annotations

import json
import random
from typing import Dict, Optional, Sequence, Tuple

from .circuit import Circuit
from .gates import Gate
from .random_circuits import DEFAULT_GATE_POOL

__all__ = [
    "MUTATION_OPERATORS",
    "MutationRecord",
    "duplicate_random_gate",
    "flip_random_phase",
    "inject_random_gate",
    "remove_random_gate",
    "reorder_random_qubits",
    "swap_random_operands",
    "transpose_random_adjacent",
]

#: phase-error fault model: a phase gate replaced by its adjoint (``s``/``sdg``,
#: ``t``/``tdg``) or by a half-angle counterpart (``z`` -> ``s``) — the classic
#: "wrong sign / wrong angle" slip in hand-written phase arithmetic.
_PHASE_ERRORS: Dict[str, str] = {
    "s": "sdg",
    "sdg": "s",
    "t": "tdg",
    "tdg": "t",
    "cs": "csdg",
    "csdg": "cs",
    "ct": "ctdg",
    "ctdg": "ct",
    "z": "s",
    "cz": "cs",
}


class MutationRecord(Tuple[str, int, Gate]):
    """A record ``(mutation_kind, position, gate)`` describing an injected bug."""

    __slots__ = ()

    @property
    def kind(self) -> str:
        return self[0]

    @property
    def position(self) -> int:
        return self[1]

    @property
    def gate(self) -> Gate:
        return self[2]

    def __str__(self) -> str:
        return f"{self.kind} at position {self.position}: {self.gate}"

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict:
        """A JSON-safe dict; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "position": self.position,
            "gate": {"kind": self.gate.kind, "qubits": list(self.gate.qubits)},
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "MutationRecord":
        gate = payload["gate"]
        return cls(
            (
                str(payload["kind"]),
                int(payload["position"]),
                Gate(str(gate["kind"]), tuple(int(q) for q in gate["qubits"])),
            )
        )

    def to_json(self) -> str:
        """Lossless JSON form (stable key order), safe for corpus entries."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MutationRecord":
        return cls.from_dict(json.loads(text))


def _resolve_rng(rng: Optional[random.Random], seed: Optional[int]) -> random.Random:
    """``rng`` wins when given; otherwise a fresh generator seeded by ``seed``."""
    return rng if rng is not None else random.Random(seed)


def inject_random_gate(
    circuit: Circuit,
    seed: Optional[int] = None,
    gate_pool: Sequence[str] = DEFAULT_GATE_POOL,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Circuit, MutationRecord]:
    """Return a buggy copy with one random extra gate, plus the mutation record.

    This is exactly the fault model of the paper's Table 3: "for each circuit,
    we created a copy and injected an artificial bug (one additional randomly
    selected gate at a random location)".
    """
    rng = _resolve_rng(rng, seed)
    pool = list(gate_pool)
    if circuit.num_qubits < 3:
        pool = [kind for kind in pool if kind != "ccx"]
    if circuit.num_qubits < 2:
        pool = [kind for kind in pool if kind not in ("cx", "cz", "ccx")]
    kind = rng.choice(pool)
    arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
    qubits = tuple(rng.sample(range(circuit.num_qubits), arity))
    position = rng.randrange(circuit.num_gates + 1)
    gate = Gate(kind, qubits)
    buggy = circuit.copy(name=name or f"{circuit.name}_buggy")
    buggy.insert(position, gate)
    return buggy, MutationRecord(("insert", position, gate))


def remove_random_gate(
    circuit: Circuit,
    seed: Optional[int] = None,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Circuit, MutationRecord]:
    """Return a copy with one random gate removed (a dual fault model)."""
    if circuit.num_gates == 0:
        raise ValueError("cannot remove a gate from an empty circuit")
    rng = _resolve_rng(rng, seed)
    position = rng.randrange(circuit.num_gates)
    removed = circuit[position]
    buggy = circuit.without_gate(position, name=name or f"{circuit.name}_dropped")
    return buggy, MutationRecord(("remove", position, removed))


def swap_random_operands(
    circuit: Circuit,
    seed: Optional[int] = None,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Circuit, MutationRecord]:
    """Return a copy where one multi-qubit gate has two operands exchanged."""
    rng = _resolve_rng(rng, seed)
    candidates = [i for i, gate in enumerate(circuit) if len(gate.qubits) >= 2]
    if not candidates:
        raise ValueError("circuit has no multi-qubit gate to mutate")
    position = rng.choice(candidates)
    gate = circuit[position]
    qubits = list(gate.qubits)
    i, j = rng.sample(range(len(qubits)), 2)
    qubits[i], qubits[j] = qubits[j], qubits[i]
    mutated = Gate(gate.kind, tuple(qubits))
    gates = list(circuit.gates)
    gates[position] = mutated
    buggy = Circuit(circuit.num_qubits, gates, name=name or f"{circuit.name}_swapped")
    return buggy, MutationRecord(("swap-operands", position, mutated))


def flip_random_phase(
    circuit: Circuit,
    seed: Optional[int] = None,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Circuit, MutationRecord]:
    """Return a copy with one phase gate flipped to its adjoint/half-angle twin.

    Raises ``ValueError`` when the circuit contains no phase gate.
    """
    rng = _resolve_rng(rng, seed)
    candidates = [i for i, gate in enumerate(circuit) if gate.kind in _PHASE_ERRORS]
    if not candidates:
        raise ValueError("circuit has no phase gate to flip")
    position = rng.choice(candidates)
    gate = circuit[position]
    mutated = Gate(_PHASE_ERRORS[gate.kind], gate.qubits)
    gates = list(circuit.gates)
    gates[position] = mutated
    buggy = Circuit(circuit.num_qubits, gates, name=name or f"{circuit.name}_dephased")
    return buggy, MutationRecord(("phase-error", position, mutated))


def reorder_random_qubits(
    circuit: Circuit,
    seed: Optional[int] = None,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Circuit, MutationRecord]:
    """Return a copy with two qubit labels exchanged throughout the circuit.

    This models the register-ordering bugs of the Qiskit studies (endianness
    and wire-order mix-ups).  The record's position is the first gate whose
    operands changed.  Raises ``ValueError`` when fewer than two qubits exist
    or no gate touches the chosen pair.
    """
    if circuit.num_qubits < 2:
        raise ValueError("need at least two qubits to reorder")
    rng = _resolve_rng(rng, seed)
    first, second = rng.sample(range(circuit.num_qubits), 2)
    mapping = {first: second, second: first}
    touched = [i for i, gate in enumerate(circuit) if set(gate.qubits) & {first, second}]
    if not touched:
        raise ValueError("no gate touches the chosen qubit pair")
    gates = [
        gate.remap(mapping) if set(gate.qubits) & {first, second} else gate
        for gate in circuit
    ]
    buggy = Circuit(circuit.num_qubits, gates, name=name or f"{circuit.name}_reordered")
    position = touched[0]
    return buggy, MutationRecord(("reorder-qubits", position, gates[position]))


def duplicate_random_gate(
    circuit: Circuit,
    seed: Optional[int] = None,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Circuit, MutationRecord]:
    """Return a copy with one gate applied twice (the off-by-one loop bound).

    A loop that runs one iteration too many applies its body gate an extra
    time; the record's position is the index of the duplicate occurrence.
    Raises ``ValueError`` on an empty circuit.
    """
    if circuit.num_gates == 0:
        raise ValueError("cannot duplicate a gate in an empty circuit")
    rng = _resolve_rng(rng, seed)
    position = rng.randrange(circuit.num_gates)
    gate = circuit[position]
    buggy = circuit.copy(name=name or f"{circuit.name}_offbyone")
    buggy.insert(position + 1, gate)
    return buggy, MutationRecord(("off-by-one", position + 1, gate))


def transpose_random_adjacent(
    circuit: Circuit,
    seed: Optional[int] = None,
    name: Optional[str] = None,
    rng: Optional[random.Random] = None,
) -> Tuple[Circuit, MutationRecord]:
    """Return a copy with two adjacent (distinct) gates exchanged.

    Pairs sharing a qubit are preferred — exchanging gates on disjoint wires
    commutes and yields an equivalent circuit, which the static pre-filter
    would discard anyway.  Raises ``ValueError`` when every adjacent pair is
    identical (or the circuit has fewer than two gates).
    """
    if circuit.num_gates < 2:
        raise ValueError("need at least two gates to transpose")
    rng = _resolve_rng(rng, seed)
    candidates = [
        i for i in range(circuit.num_gates - 1) if circuit[i] != circuit[i + 1]
    ]
    if not candidates:
        raise ValueError("all adjacent gate pairs are identical")
    sharing = [
        i for i in candidates if set(circuit[i].qubits) & set(circuit[i + 1].qubits)
    ]
    position = rng.choice(sharing or candidates)
    gates = list(circuit.gates)
    gates[position], gates[position + 1] = gates[position + 1], gates[position]
    buggy = Circuit(circuit.num_qubits, gates, name=name or f"{circuit.name}_transposed")
    return buggy, MutationRecord(("transpose", position, gates[position]))


#: every mutation operator by record kind, in taxonomy order — the single
#: registry campaign plans and the fuzzer both draw from
MUTATION_OPERATORS = {
    "insert": inject_random_gate,
    "remove": remove_random_gate,
    "swap-operands": swap_random_operands,
    "phase-error": flip_random_phase,
    "reorder-qubits": reorder_random_qubits,
    "off-by-one": duplicate_random_gate,
    "transpose": transpose_random_adjacent,
}
