"""Bug injection for the bug-hunting experiments (Section 7.2).

The paper creates buggy circuit copies by inserting *one additional randomly
selected gate at a random location*.  This module reproduces that mutation and
a couple of other classical mutation operators (gate removal, qubit swap) that
are useful for widening the test surface.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from .circuit import Circuit
from .gates import Gate
from .random_circuits import DEFAULT_GATE_POOL

__all__ = ["inject_random_gate", "remove_random_gate", "swap_random_operands", "MutationRecord"]


class MutationRecord(Tuple[str, int, Gate]):
    """A record ``(mutation_kind, position, gate)`` describing an injected bug."""

    __slots__ = ()

    @property
    def kind(self) -> str:
        return self[0]

    @property
    def position(self) -> int:
        return self[1]

    @property
    def gate(self) -> Gate:
        return self[2]

    def __str__(self) -> str:
        return f"{self.kind} at position {self.position}: {self.gate}"


def inject_random_gate(
    circuit: Circuit,
    seed: Optional[int] = None,
    gate_pool: Sequence[str] = DEFAULT_GATE_POOL,
    name: Optional[str] = None,
) -> Tuple[Circuit, MutationRecord]:
    """Return a buggy copy with one random extra gate, plus the mutation record.

    This is exactly the fault model of the paper's Table 3: "for each circuit,
    we created a copy and injected an artificial bug (one additional randomly
    selected gate at a random location)".
    """
    rng = random.Random(seed)
    pool = list(gate_pool)
    if circuit.num_qubits < 3:
        pool = [kind for kind in pool if kind != "ccx"]
    if circuit.num_qubits < 2:
        pool = [kind for kind in pool if kind not in ("cx", "cz", "ccx")]
    kind = rng.choice(pool)
    arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
    qubits = tuple(rng.sample(range(circuit.num_qubits), arity))
    position = rng.randrange(circuit.num_gates + 1)
    gate = Gate(kind, qubits)
    buggy = circuit.copy(name=name or f"{circuit.name}_buggy")
    buggy.insert(position, gate)
    return buggy, MutationRecord(("insert", position, gate))


def remove_random_gate(
    circuit: Circuit, seed: Optional[int] = None, name: Optional[str] = None
) -> Tuple[Circuit, MutationRecord]:
    """Return a copy with one random gate removed (a dual fault model)."""
    if circuit.num_gates == 0:
        raise ValueError("cannot remove a gate from an empty circuit")
    rng = random.Random(seed)
    position = rng.randrange(circuit.num_gates)
    removed = circuit[position]
    buggy = circuit.without_gate(position, name=name or f"{circuit.name}_dropped")
    return buggy, MutationRecord(("remove", position, removed))


def swap_random_operands(
    circuit: Circuit, seed: Optional[int] = None, name: Optional[str] = None
) -> Tuple[Circuit, MutationRecord]:
    """Return a copy where one multi-qubit gate has two operands exchanged."""
    rng = random.Random(seed)
    candidates = [i for i, gate in enumerate(circuit) if len(gate.qubits) >= 2]
    if not candidates:
        raise ValueError("circuit has no multi-qubit gate to mutate")
    position = rng.choice(candidates)
    gate = circuit[position]
    qubits = list(gate.qubits)
    i, j = rng.sample(range(len(qubits)), 2)
    qubits[i], qubits[j] = qubits[j], qubits[i]
    mutated = Gate(gate.kind, tuple(qubits))
    gates = list(circuit.gates)
    gates[position] = mutated
    buggy = Circuit(circuit.num_qubits, gates, name=name or f"{circuit.name}_swapped")
    return buggy, MutationRecord(("swap-operands", position, mutated))
