"""Quantum circuit container.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
applications over a fixed number of qubits.  It is deliberately simple (no
classical registers, no mid-circuit measurement) — exactly the fragment the
paper's framework analyses.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from .gates import Gate

__all__ = ["Circuit"]


class Circuit:
    """An ordered sequence of gates over ``num_qubits`` qubits."""

    def __init__(self, num_qubits: int, gates: Optional[Iterable[Gate]] = None, name: str = "circuit"):
        if num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        self.num_qubits = int(num_qubits)
        self.name = name
        self._gates: List[Gate] = []
        for gate in gates or ():
            self.append(gate)

    # ------------------------------------------------------------- mutation
    def append(self, gate: Gate) -> "Circuit":
        """Append a gate, validating that its qubits fit the register."""
        if max(gate.qubits) >= self.num_qubits:
            raise ValueError(
                f"gate {gate} uses qubit {max(gate.qubits)} but the circuit has "
                f"only {self.num_qubits} qubits"
            )
        self._gates.append(gate)
        return self

    def add(self, kind: str, *qubits: int) -> "Circuit":
        """Convenience builder: ``circuit.add('cx', 0, 1)``."""
        return self.append(Gate(kind, tuple(qubits)))

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append every gate of ``gates`` in order."""
        for gate in gates:
            self.append(gate)
        return self

    def insert(self, position: int, gate: Gate) -> "Circuit":
        """Insert a gate at an arbitrary position (used by bug injection)."""
        if max(gate.qubits) >= self.num_qubits:
            raise ValueError("gate does not fit the register")
        self._gates.insert(position, gate)
        return self

    # --------------------------------------------------------------- queries
    @property
    def gates(self) -> Sequence[Gate]:
        """The gate list (read-only view)."""
        return tuple(self._gates)

    @property
    def num_gates(self) -> int:
        """Number of gates in the circuit (``#G`` in the paper's tables)."""
        return len(self._gates)

    def count_kind(self, kind: str) -> int:
        """Number of gates of a particular kind."""
        kind = kind.lower()
        return sum(1 for gate in self._gates if gate.kind == kind)

    def used_qubits(self) -> frozenset:
        """The set of qubits touched by at least one gate."""
        return frozenset(q for gate in self._gates for q in gate.qubits)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Circuit(self.num_qubits, self._gates[index], name=self.name)
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return self.num_qubits == other.num_qubits and self._gates == other._gates

    def __repr__(self) -> str:
        return f"Circuit(name={self.name!r}, num_qubits={self.num_qubits}, num_gates={self.num_gates})"

    # ----------------------------------------------------------- derivations
    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Return a shallow copy (gates are immutable)."""
        return Circuit(self.num_qubits, self._gates, name=name or self.name)

    def inverse(self, name: Optional[str] = None) -> "Circuit":
        """Return the adjoint circuit ``C†`` (gates reversed and daggered)."""
        inverted = [gate.dagger() for gate in reversed(self._gates)]
        return Circuit(self.num_qubits, inverted, name=name or f"{self.name}_dagger")

    def concatenated(self, other: "Circuit", name: Optional[str] = None) -> "Circuit":
        """Return ``self ; other`` (both circuits must have the same width)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot concatenate circuits of different widths")
        return Circuit(
            self.num_qubits,
            list(self._gates) + list(other.gates),
            name=name or f"{self.name}+{other.name}",
        )

    def without_gate(self, position: int, name: Optional[str] = None) -> "Circuit":
        """Return a copy with the gate at ``position`` removed."""
        gates = list(self._gates)
        del gates[position]
        return Circuit(self.num_qubits, gates, name=name or self.name)

    def decomposed(self, name: Optional[str] = None) -> "Circuit":
        """Expand ``swap``/``cswap`` into the Table 1 gate set (CX / CCX)."""
        result = Circuit(self.num_qubits, name=name or self.name)
        for gate in self._gates:
            if gate.kind == "swap":
                a, b = gate.qubits
                result.add("cx", a, b)
                result.add("cx", b, a)
                result.add("cx", a, b)
            elif gate.kind == "cswap":
                c, a, b = gate.qubits
                result.add("cx", b, a)
                result.add("ccx", c, a, b)
                result.add("cx", b, a)
            else:
                result.append(gate)
        return result

    def summary(self) -> str:
        """One-line summary used by the benchmark harness tables."""
        return f"{self.name}: {self.num_qubits} qubits, {self.num_gates} gates"
