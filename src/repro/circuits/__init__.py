"""Circuit intermediate representation, QASM I/O, random circuits and mutations."""

from .circuit import Circuit
from .gates import Gate, GATE_ARITY, PERMUTATION_GATES
from .metrics import (
    depth,
    engine_cost_profile,
    gate_histogram,
    moments,
    qubit_depths,
    summarise,
    t_count,
    two_qubit_count,
)
from .mutations import (
    MUTATION_OPERATORS,
    MutationRecord,
    duplicate_random_gate,
    flip_random_phase,
    inject_random_gate,
    remove_random_gate,
    reorder_random_qubits,
    swap_random_operands,
    transpose_random_adjacent,
)
from .optimizer import OptimizationReport, PeepholeOptimizer
from .qasm import QasmError, load_qasm_file, parse_qasm, save_qasm_file, to_qasm
from .random_circuits import random_benchmark_suite, random_circuit

__all__ = [
    "Circuit",
    "Gate",
    "GATE_ARITY",
    "PERMUTATION_GATES",
    "QasmError",
    "parse_qasm",
    "to_qasm",
    "load_qasm_file",
    "save_qasm_file",
    "random_circuit",
    "random_benchmark_suite",
    "MUTATION_OPERATORS",
    "MutationRecord",
    "inject_random_gate",
    "remove_random_gate",
    "swap_random_operands",
    "flip_random_phase",
    "reorder_random_qubits",
    "duplicate_random_gate",
    "transpose_random_adjacent",
    "PeepholeOptimizer",
    "OptimizationReport",
    "gate_histogram",
    "t_count",
    "two_qubit_count",
    "moments",
    "depth",
    "qubit_depths",
    "engine_cost_profile",
    "summarise",
]
