"""Gate model shared by the whole library.

A :class:`Gate` is a named operation applied to an ordered tuple of qubits.
By convention the **last** qubit is always the target and any preceding qubits
are controls (this matches OpenQASM's ``cx c, t`` / ``ccx c1, c2, t`` order).

Only the gates of Table 1 of the paper (plus their adjoints ``sdg``/``tdg``,
the derived ``swap``/``cswap`` and the diagonal controlled-phase extensions
``cs``/``csdg``/``ct``/``ctdg`` used by the approximate-QFT benchmarks) are
representable; anything else must be decomposed by the benchmark generators
before it reaches the analysis engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Gate", "GATE_ARITY", "SINGLE_QUBIT_GATES", "CONTROLLED_GATES", "PERMUTATION_GATES"]


#: Number of qubit operands for every supported gate kind (controls + target).
GATE_ARITY: Dict[str, int] = {
    "x": 1,
    "y": 1,
    "z": 1,
    "h": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "rx": 1,   # Rx(pi/2), the only rotation angle supported by the algebraic encoding
    "ry": 1,   # Ry(pi/2)
    "cx": 2,
    "cz": 2,
    "cs": 2,    # controlled-S = diag(1, 1, 1, i); extension beyond Table 1
    "csdg": 2,  # controlled-S†
    "ct": 2,    # controlled-T = diag(1, 1, 1, w); extension beyond Table 1
    "ctdg": 2,  # controlled-T†
    "ccx": 3,
    "swap": 2,
    "cswap": 3,
}

#: Gates acting on a single qubit.
SINGLE_QUBIT_GATES = frozenset(name for name, arity in GATE_ARITY.items() if arity == 1)

#: Gates with at least one control qubit (or otherwise multi-qubit).
CONTROLLED_GATES = frozenset(name for name, arity in GATE_ARITY.items() if arity > 1)

#: Gates whose matrix has exactly one non-zero entry per row (possibly scaled),
#: i.e. the gates the permutation-based encoding of Section 5 supports directly.
PERMUTATION_GATES = frozenset(
    {"x", "y", "z", "s", "sdg", "t", "tdg", "cx", "cz", "cs", "csdg", "ct", "ctdg", "ccx"}
)


@dataclass(frozen=True)
class Gate:
    """A single quantum gate application.

    Attributes:
        kind: lower-case gate name, one of :data:`GATE_ARITY`.
        qubits: operand qubits; controls first, target last.
    """

    kind: str
    qubits: Tuple[int, ...]

    def __post_init__(self) -> None:
        kind = self.kind.lower()
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if kind not in GATE_ARITY:
            raise ValueError(f"unsupported gate kind: {kind!r}")
        if len(self.qubits) != GATE_ARITY[kind]:
            raise ValueError(
                f"gate {kind!r} expects {GATE_ARITY[kind]} qubit(s), got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {kind!r} applied to duplicate qubits {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError("qubit indices must be non-negative")

    # ------------------------------------------------------------------ views
    @property
    def target(self) -> int:
        """The target qubit (last operand)."""
        return self.qubits[-1]

    @property
    def controls(self) -> Tuple[int, ...]:
        """The control qubits (all operands except the last)."""
        if self.kind in ("swap", "cswap"):
            # swap has no controls; cswap has exactly one control (the first operand)
            return self.qubits[:1] if self.kind == "cswap" else ()
        return self.qubits[:-1]

    @property
    def is_permutation_gate(self) -> bool:
        """True iff the permutation-based encoding (Section 5) handles this gate."""
        return self.kind in PERMUTATION_GATES

    def dagger(self) -> "Gate":
        """Return the adjoint gate (used to build ``C2†`` for equivalence checks)."""
        inverse_names = {
            "s": "sdg",
            "sdg": "s",
            "t": "tdg",
            "tdg": "t",
            "cs": "csdg",
            "csdg": "cs",
            "ct": "ctdg",
            "ctdg": "ct",
        }
        if self.kind in inverse_names:
            return Gate(inverse_names[self.kind], self.qubits)
        if self.kind in ("rx", "ry"):
            raise ValueError(f"adjoint of {self.kind} (pi/2 rotation) is not in the supported gate set")
        # x, y, z, h, cx, cz, ccx, swap, cswap are self-inverse
        return self

    def shift(self, offset: int) -> "Gate":
        """Return the same gate with all qubit indices shifted by ``offset``."""
        return Gate(self.kind, tuple(q + offset for q in self.qubits))

    def remap(self, mapping: Dict[int, int]) -> "Gate":
        """Return the same gate with qubits renamed according to ``mapping``."""
        return Gate(self.kind, tuple(mapping.get(q, q) for q in self.qubits))

    def __str__(self) -> str:
        return f"{self.kind} {', '.join(f'q[{q}]' for q in self.qubits)}"
