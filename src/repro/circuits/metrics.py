"""Static circuit metrics: depth, moments, T-count, engine-cost estimates.

Circuit tables in the paper report ``#q`` and ``#G``; when comparing circuits
produced by optimizers (the Table 3 use case) a few more standard metrics are
useful for reports and for sanity-checking the benchmark generators:

* :func:`gate_histogram` — gate counts per kind,
* :func:`t_count` / :func:`two_qubit_count` — the usual cost metrics of the
  Clifford+T literature,
* :func:`moments` / :func:`depth` — the greedy as-soon-as-possible layering
  and the resulting circuit depth,
* :func:`qubit_depths` — per-qubit critical path lengths (how many gates touch
  each wire),
* :func:`engine_cost_profile` — how many gates the Hybrid engine would route
  through the permutation-based vs. the composition-based transformer,
* :func:`summarise` — one dictionary with everything, used by the CLI.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from .circuit import Circuit
from .gates import Gate

__all__ = [
    "gate_histogram",
    "t_count",
    "two_qubit_count",
    "moments",
    "depth",
    "qubit_depths",
    "engine_cost_profile",
    "summarise",
]


def gate_histogram(circuit: Circuit) -> Dict[str, int]:
    """Number of gates per kind, sorted by kind for stable reports."""
    histogram = Counter(gate.kind for gate in circuit)
    return dict(sorted(histogram.items()))


def t_count(circuit: Circuit) -> int:
    """Number of T-phase applications (``t``/``tdg`` plus controlled ``ct``/``ctdg``).

    Toffoli gates are counted with the standard cost of 7 T gates each (their
    textbook Clifford+T decomposition), so optimizer comparisons on reversible
    circuits remain meaningful without actually decomposing them.
    """
    total = 0
    for gate in circuit.decomposed():
        if gate.kind in ("t", "tdg", "ct", "ctdg"):
            total += 1
        elif gate.kind == "ccx":
            total += 7
    return total


def two_qubit_count(circuit: Circuit) -> int:
    """Number of gates acting on two or more qubits (after swap/cswap decomposition)."""
    return sum(1 for gate in circuit.decomposed() if len(gate.qubits) >= 2)


def moments(circuit: Circuit) -> List[List[Gate]]:
    """Greedy as-soon-as-possible layering into moments of disjoint gates.

    Every gate is placed into the earliest layer after the last layer that
    touches any of its qubits; gates within one moment act on disjoint qubits
    and could execute in parallel.
    """
    layers: List[List[Gate]] = []
    frontier: Dict[int, int] = {}  # qubit -> index of the first free layer
    for gate in circuit:
        earliest = max((frontier.get(qubit, 0) for qubit in gate.qubits), default=0)
        while len(layers) <= earliest:
            layers.append([])
        layers[earliest].append(gate)
        for qubit in gate.qubits:
            frontier[qubit] = earliest + 1
    return layers


def depth(circuit: Circuit) -> int:
    """Circuit depth: the number of moments of the greedy layering."""
    return len(moments(circuit))


def qubit_depths(circuit: Circuit) -> Dict[int, int]:
    """Number of gates touching each qubit (the per-wire critical path)."""
    depths = {qubit: 0 for qubit in range(circuit.num_qubits)}
    for gate in circuit:
        for qubit in gate.qubits:
            depths[qubit] += 1
    return depths


def engine_cost_profile(circuit: Circuit) -> Dict[str, int]:
    """How the Hybrid engine would dispatch the gates of this circuit.

    Returns the number of gates handled by the permutation-based encoding and
    the number that must fall back to the composition-based encoding (H,
    Rx/Ry, and controlled gates whose control indices do not precede the
    target).
    """
    # imported lazily: repro.core depends on repro.circuits, not the other way round
    from ..core.permutation import supports_permutation

    permutation = 0
    composition = 0
    for gate in circuit.decomposed():
        if supports_permutation(gate):
            permutation += 1
        else:
            composition += 1
    return {"permutation": permutation, "composition": composition}


def summarise(circuit: Circuit) -> Dict[str, object]:
    """All metrics in one dictionary (used by ``autoq-repro stats`` and reports)."""
    profile = engine_cost_profile(circuit)
    return {
        "name": circuit.name,
        "qubits": circuit.num_qubits,
        "gates": circuit.num_gates,
        "gates_decomposed": circuit.decomposed().num_gates,
        "depth": depth(circuit),
        "t_count": t_count(circuit),
        "two_qubit_count": two_qubit_count(circuit),
        "histogram": gate_histogram(circuit),
        "permutation_gates": profile["permutation"],
        "composition_gates": profile["composition"],
    }
