"""Random circuit generation (the "Random" benchmark family of Section 7).

Following the paper (which follows SliQSim's configuration), the ratio of
``#qubits : #gates`` is fixed to ``1 : 3`` and both the gate kinds and the
qubits they act on are picked uniformly at random.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from .circuit import Circuit
from .gates import Gate

__all__ = ["random_circuit", "random_benchmark_suite", "DEFAULT_GATE_POOL"]

#: Gate kinds sampled by :func:`random_circuit`; the same set the paper's
#: framework supports (Table 1, plus the S/T adjoints).
DEFAULT_GATE_POOL: Sequence[str] = (
    "x", "y", "z", "h", "s", "sdg", "t", "tdg", "rx", "ry", "cx", "cz", "ccx",
)


def random_circuit(
    num_qubits: int,
    num_gates: Optional[int] = None,
    seed: Optional[int] = None,
    gate_pool: Sequence[str] = DEFAULT_GATE_POOL,
    name: Optional[str] = None,
) -> Circuit:
    """Generate a uniformly random circuit.

    Args:
        num_qubits: register width.
        num_gates: number of gates; defaults to ``3 * num_qubits`` as in the paper.
        seed: RNG seed for reproducibility.
        gate_pool: gate kinds to sample from.
        name: optional circuit name.
    """
    if num_qubits < 3 and any(kind == "ccx" for kind in gate_pool):
        gate_pool = [kind for kind in gate_pool if kind != "ccx"]
    if num_qubits < 2:
        gate_pool = [kind for kind in gate_pool if kind not in ("cx", "cz", "ccx")]
    if num_gates is None:
        num_gates = 3 * num_qubits
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=name or f"random_{num_qubits}q_{num_gates}g")
    for _ in range(num_gates):
        kind = rng.choice(list(gate_pool))
        arity = {"cx": 2, "cz": 2, "ccx": 3}.get(kind, 1)
        qubits = rng.sample(range(num_qubits), arity)
        circuit.append(Gate(kind, tuple(qubits)))
    return circuit


def random_benchmark_suite(
    num_qubits: int,
    count: int = 10,
    seed: int = 2023,
    gate_pool: Sequence[str] = DEFAULT_GATE_POOL,
) -> list:
    """Generate the paper's Random family: ``count`` circuits with 3n gates each.

    Circuit names follow the paper's convention (``35a`` .. ``35j``).
    """
    suffixes = "abcdefghijklmnopqrstuvwxyz"
    circuits = []
    for index in range(count):
        circuits.append(
            random_circuit(
                num_qubits,
                seed=seed + index,
                gate_pool=gate_pool,
                name=f"{num_qubits}{suffixes[index % len(suffixes)]}",
            )
        )
    return circuits
