"""Bottom-up determinization of quantum-state tree automata.

The paper leans on the classical tree-automata toolbox (VATA, TATA) for
language operations; this module provides the textbook bottom-up subset
construction specialised to the layered automata used throughout the library.
A bottom-up deterministic automaton has at most one state reachable for every
subtree, which makes several operations straightforward:

* exact counting of the number of accepted trees (quantum states) without
  enumerating them (:func:`count_language`),
* a canonical form (together with :mod:`repro.ta.minimization`) useful for
  hashing / caching sets of states,
* an alternative equivalence-check path used to cross-validate the
  antichain-based algorithm of :mod:`repro.ta.inclusion` in the test suite.

Determinization can blow up exponentially in the worst case; for the automata
produced by the gate transformers it typically stays close to the input size.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..algebraic import AlgebraicNumber
from .automaton import InternalTransition, TreeAutomaton, make_symbol, symbol_qubit

__all__ = ["determinize", "is_deterministic", "count_language"]


def is_deterministic(automaton: TreeAutomaton) -> bool:
    """True iff the automaton is bottom-up deterministic.

    Bottom-up determinism means: no two leaf states carry the same amplitude,
    and no two transitions share the same ``(symbol, left, right)`` triple with
    different parents.
    """
    amplitudes = list(automaton.leaves.values())
    if len(set(amplitudes)) != len(amplitudes):
        return False
    seen: Dict[Tuple, int] = {}
    for parent, symbol, left, right in automaton.transitions():
        key = (symbol, left, right)
        if key in seen and seen[key] != parent:
            return False
        seen[key] = parent
    return True


def determinize(automaton: TreeAutomaton) -> TreeAutomaton:
    """Return a bottom-up deterministic automaton with the same language.

    The construction is the standard subset construction run level by level
    from the leaves: determinized states are sets of original states, starting
    with "all leaf states carrying amplitude c" for every amplitude c, and a
    determinized transition exists for a pair of determinized children iff some
    original transition connects members of those sets.
    """
    automaton = automaton.remove_useless()
    if not automaton.roots:
        return TreeAutomaton(automaton.num_qubits, set(), {}, {})

    # macro-state bookkeeping: frozenset of original states -> new integer id
    macro_ids: Dict[FrozenSet[int], int] = {}

    def macro_id(states: FrozenSet[int]) -> int:
        if states not in macro_ids:
            macro_ids[states] = len(macro_ids)
        return macro_ids[states]

    new_leaves: Dict[int, AlgebraicNumber] = {}
    # group leaf states by amplitude
    by_amplitude: Dict[AlgebraicNumber, set] = {}
    for state, amplitude in automaton.leaves.items():
        by_amplitude.setdefault(amplitude, set()).add(state)
    current_level: Dict[FrozenSet[int], int] = {}
    for amplitude, states in by_amplitude.items():
        macro = frozenset(states)
        new_leaves[macro_id(macro)] = amplitude
        current_level[macro] = macro_id(macro)

    # transitions indexed by qubit level (shared cached index on the automaton)
    transitions_by_qubit = automaton.transitions_by_qubit()

    new_internal: Dict[int, List[InternalTransition]] = {}
    # process levels bottom-up: the last qubit sits directly above the leaves
    for qubit in range(automaton.num_qubits - 1, -1, -1):
        level_transitions = transitions_by_qubit.get(qubit, [])
        next_level: Dict[FrozenSet[int], int] = {}
        for left_macro, left_id in current_level.items():
            for right_macro, right_id in current_level.items():
                parents = frozenset(
                    parent
                    for parent, left, right in level_transitions
                    if left in left_macro and right in right_macro
                )
                if not parents:
                    continue
                parent_id = macro_id(parents)
                next_level.setdefault(parents, parent_id)
                new_internal.setdefault(parent_id, []).append(
                    (make_symbol(qubit), left_id, right_id)
                )
        current_level = next_level

    roots = {
        macro_ids[macro]
        for macro in current_level
        if macro & automaton.roots
    }
    result = TreeAutomaton(automaton.num_qubits, roots, new_internal, new_leaves)
    return result.remove_useless()


def count_language(automaton: TreeAutomaton) -> int:
    """Exactly count the number of distinct quantum states (trees) accepted.

    Counting runs of a *nondeterministic* automaton over-counts trees with
    multiple runs, so the automaton is determinized first; in a bottom-up
    deterministic automaton every tree has exactly one run, and the count is a
    simple dynamic program over the levels.
    """
    det = determinize(automaton)
    if not det.roots:
        return 0
    counts: Dict[int, int] = {state: 1 for state in det.leaves}

    def count(state: int) -> int:
        if state in counts:
            return counts[state]
        total = 0
        for _symbol, left, right in det.internal.get(state, ()):
            total += count(left) * count(right)
        counts[state] = total
        return total

    return sum(count(root) for root in det.roots)
