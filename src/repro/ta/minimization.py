"""Determinization-based language operations: counting cross-checks and equivalence.

The antichain-based checker in :mod:`repro.ta.inclusion` is the primary
decision procedure for language equivalence.  This module offers a second,
fully independent route built on the bottom-up subset construction of
:mod:`repro.ta.determinization`:

* :func:`reduced_deterministic` — a deterministic automaton for the language
  with duplicate / useless states removed (a compact normal form, though not
  necessarily the Myhill–Nerode minimal automaton),
* :func:`equivalent_via_counting` — decide ``L(A) = L(B)`` for the *finite*
  languages used in this framework by exact counting:
  ``|L(A)| = |L(B)| = |L(A) ∪ L(B)|``.

The counting route is used in the test suite to cross-validate the antichain
checker, and it is occasionally handy on its own (e.g. "how many distinct
output states can this circuit produce over this input set?").
"""

from __future__ import annotations

from .automaton import TreeAutomaton
from .determinization import count_language, determinize

__all__ = ["reduced_deterministic", "equivalent_via_counting", "included_via_counting"]


def reduced_deterministic(automaton: TreeAutomaton) -> TreeAutomaton:
    """Return a reduced bottom-up deterministic automaton for the same language."""
    return determinize(automaton).reduce()


def equivalent_via_counting(left: TreeAutomaton, right: TreeAutomaton) -> bool:
    """Decide ``L(left) = L(right)`` by exact counting over the union automaton.

    For finite languages (always the case here: full binary trees of a fixed
    height over finitely many amplitudes), ``A = B`` iff ``|A| = |B|`` and
    ``|A ∪ B| = |A|``.  Completely independent from the antichain-based
    checker, hence useful as a cross-validation oracle.
    """
    if left.num_qubits != right.num_qubits:
        return False
    left_count = count_language(left)
    right_count = count_language(right)
    if left_count != right_count:
        return False
    union_count = count_language(left.union(right))
    return union_count == left_count


def included_via_counting(left: TreeAutomaton, right: TreeAutomaton) -> bool:
    """Decide ``L(left) ⊆ L(right)`` by counting: ``|A ∪ B| = |B|``."""
    if left.num_qubits != right.num_qubits:
        raise ValueError("automata must have the same number of qubits")
    return count_language(left.union(right)) == count_language(right)
