"""Plain-text serialization of tree automata.

The format is a small, line-oriented dialect inspired by the Timbuk format
used by VATA, adapted to carry algebraic amplitudes on leaf transitions::

    # comment
    qubits 2
    roots 0
    leaf 3 0 0 0 0 0          # state 3 accepts the amplitude (0,0,0,0,0)
    leaf 4 1 0 0 0 0
    trans 0 x0 1 2            # state 0 -- x0 --> (state 1, state 2)
    trans 1 x1 3 4

It exists so that examples / the CLI can store pre- and post-conditions on
disk and exchange them between runs.

Next to the human-readable text dialect there is a *payload codec*
(:func:`to_payload` / :func:`from_payload`): a JSON-ready dict form of the
flat kernel representation, with an explicit symbol interning table, that
round-trips an automaton **losslessly** — exact state ids, transition order,
composition tags and leaf amplitudes all survive, so
``from_payload(to_payload(a)).structure_key() == a.structure_key()``.  The
cross-process automaton store (:mod:`repro.ta.store`) persists gate-memo
entries in this form.
"""

from __future__ import annotations

from typing import Dict, List

from ..algebraic import AlgebraicNumber
from .automaton import TreeAutomaton, make_symbol, symbol_qubit, symbol_tags

__all__ = [
    "dumps",
    "loads",
    "save",
    "load",
    "PAYLOAD_SCHEMA",
    "to_payload",
    "from_payload",
]

#: version of the payload dict layout; bump on any incompatible change so the
#: on-disk store (:mod:`repro.ta.store`) invalidates stale entries cleanly
PAYLOAD_SCHEMA = 1


def dumps(automaton: TreeAutomaton) -> str:
    """Serialize an (untagged) automaton to the text format."""
    if automaton.is_tagged():
        raise ValueError("only untagged automata can be serialized")
    lines: List[str] = [f"qubits {automaton.num_qubits}"]
    lines.append("roots " + " ".join(str(r) for r in sorted(automaton.roots)))
    for state in sorted(automaton.leaves):
        amplitude = automaton.leaves[state]
        lines.append("leaf " + " ".join(str(v) for v in (state,) + amplitude.as_tuple()))
    for parent in sorted(automaton.internal):
        for symbol, left, right in automaton.internal[parent]:
            lines.append(f"trans {parent} x{symbol_qubit(symbol)} {left} {right}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> TreeAutomaton:
    """Parse an automaton from the text format produced by :func:`dumps`."""
    num_qubits = None
    roots: List[int] = []
    leaves: Dict[int, AlgebraicNumber] = {}
    internal: Dict[int, List] = {}
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        if keyword == "qubits":
            num_qubits = int(parts[1])
        elif keyword == "roots":
            roots = [int(p) for p in parts[1:]]
        elif keyword == "leaf":
            state = int(parts[1])
            a, b, c, d, k = (int(p) for p in parts[2:7])
            leaves[state] = AlgebraicNumber(a, b, c, d, k)
        elif keyword == "trans":
            parent = int(parts[1])
            if not parts[2].startswith("x"):
                raise ValueError(f"bad symbol in line: {raw_line!r}")
            qubit = int(parts[2][1:])
            left, right = int(parts[3]), int(parts[4])
            internal.setdefault(parent, []).append((make_symbol(qubit), left, right))
        else:
            raise ValueError(f"unknown keyword {keyword!r} in line {raw_line!r}")
    if num_qubits is None:
        raise ValueError("missing 'qubits' declaration")
    return TreeAutomaton(num_qubits, roots, internal, leaves)


def to_payload(automaton: TreeAutomaton) -> Dict:
    """Encode an automaton as a JSON-ready dict, losslessly.

    Unlike :func:`dumps`, tagged automata are supported and nothing is
    renumbered or reordered: state ids, the insertion order of the internal
    and leaf tables, and the per-state transition order are all preserved, so
    decoding reproduces the exact :meth:`~TreeAutomaton.structure_key`.
    Distinct ``(qubit, tags)`` symbols are interned into a ``symbols`` table
    and transitions reference it by index, mirroring the in-process
    hash-consing and keeping repeated symbols out of the encoded form.
    """
    symbol_index: Dict[tuple, int] = {}
    symbols: List[List] = []
    internal: List[List] = []
    for parent, transitions in automaton.internal.items():
        encoded = [parent]
        for symbol, left, right in transitions:
            index = symbol_index.get(symbol)
            if index is None:
                index = symbol_index.setdefault(symbol, len(symbols))
                symbols.append([symbol_qubit(symbol), list(symbol_tags(symbol))])
            encoded.append([index, left, right])
        internal.append(encoded)
    return {
        "schema": PAYLOAD_SCHEMA,
        "num_qubits": automaton.num_qubits,
        "roots": sorted(automaton.roots),
        "symbols": symbols,
        "internal": internal,
        "leaves": [[state, *amplitude.as_tuple()]
                   for state, amplitude in automaton.leaves.items()],
    }


def from_payload(payload: Dict) -> TreeAutomaton:
    """Decode a :func:`to_payload` dict; :class:`ValueError` on malformed input.

    The payload's ``schema`` must equal :data:`PAYLOAD_SCHEMA` — readers of
    persisted payloads (the on-disk store) rely on this to reject entries
    written by an incompatible codec instead of mis-parsing them.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"automaton payload must be a dict, got {type(payload).__name__}")
    schema = payload.get("schema")
    if schema != PAYLOAD_SCHEMA:
        raise ValueError(
            f"unsupported automaton payload schema {schema!r} (expected {PAYLOAD_SCHEMA})"
        )
    try:
        num_qubits = int(payload["num_qubits"])
        roots = [int(root) for root in payload["roots"]]
        symbols = [make_symbol(int(qubit), tuple(int(tag) for tag in tags))
                   for qubit, tags in payload["symbols"]]
        internal: Dict[int, List] = {}
        for encoded in payload["internal"]:
            parent = int(encoded[0])
            internal[parent] = [
                (symbols[index], int(left), int(right))
                for index, left, right in encoded[1:]
            ]
        leaves = {}
        for state, a, b, c, d, k in payload["leaves"]:
            leaves[int(state)] = AlgebraicNumber(int(a), int(b), int(c), int(d), int(k))
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise ValueError(f"malformed automaton payload: {error}") from error
    return TreeAutomaton(num_qubits, roots, internal, leaves)


def save(automaton: TreeAutomaton, path: str) -> None:
    """Write an automaton to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(automaton))


def load(path: str) -> TreeAutomaton:
    """Read an automaton from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
