"""Plain-text serialization of tree automata.

The format is a small, line-oriented dialect inspired by the Timbuk format
used by VATA, adapted to carry algebraic amplitudes on leaf transitions::

    # comment
    qubits 2
    roots 0
    leaf 3 0 0 0 0 0          # state 3 accepts the amplitude (0,0,0,0,0)
    leaf 4 1 0 0 0 0
    trans 0 x0 1 2            # state 0 -- x0 --> (state 1, state 2)
    trans 1 x1 3 4

It exists so that examples / the CLI can store pre- and post-conditions on
disk and exchange them between runs.
"""

from __future__ import annotations

from typing import Dict, List

from ..algebraic import AlgebraicNumber
from .automaton import TreeAutomaton, make_symbol, symbol_qubit, symbol_tags

__all__ = ["dumps", "loads", "save", "load"]


def dumps(automaton: TreeAutomaton) -> str:
    """Serialize an (untagged) automaton to the text format."""
    if automaton.is_tagged():
        raise ValueError("only untagged automata can be serialized")
    lines: List[str] = [f"qubits {automaton.num_qubits}"]
    lines.append("roots " + " ".join(str(r) for r in sorted(automaton.roots)))
    for state in sorted(automaton.leaves):
        amplitude = automaton.leaves[state]
        lines.append("leaf " + " ".join(str(v) for v in (state,) + amplitude.as_tuple()))
    for parent in sorted(automaton.internal):
        for symbol, left, right in automaton.internal[parent]:
            lines.append(f"trans {parent} x{symbol_qubit(symbol)} {left} {right}")
    return "\n".join(lines) + "\n"


def loads(text: str) -> TreeAutomaton:
    """Parse an automaton from the text format produced by :func:`dumps`."""
    num_qubits = None
    roots: List[int] = []
    leaves: Dict[int, AlgebraicNumber] = {}
    internal: Dict[int, List] = {}
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        keyword = parts[0]
        if keyword == "qubits":
            num_qubits = int(parts[1])
        elif keyword == "roots":
            roots = [int(p) for p in parts[1:]]
        elif keyword == "leaf":
            state = int(parts[1])
            a, b, c, d, k = (int(p) for p in parts[2:7])
            leaves[state] = AlgebraicNumber(a, b, c, d, k)
        elif keyword == "trans":
            parent = int(parts[1])
            if not parts[2].startswith("x"):
                raise ValueError(f"bad symbol in line: {raw_line!r}")
            qubit = int(parts[2][1:])
            left, right = int(parts[3]), int(parts[4])
            internal.setdefault(parent, []).append((make_symbol(qubit), left, right))
        else:
            raise ValueError(f"unknown keyword {keyword!r} in line {raw_line!r}")
    if num_qubits is None:
        raise ValueError("missing 'qubits' declaration")
    return TreeAutomaton(num_qubits, roots, internal, leaves)


def save(automaton: TreeAutomaton, path: str) -> None:
    """Write an automaton to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(automaton))


def load(path: str) -> TreeAutomaton:
    """Read an automaton from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
