"""Tree automata over quantum-state trees (the paper's Section 3 substrate)."""

from .automaton import (
    InternalTransition,
    Symbol,
    TreeAutomaton,
    clear_intern_tables,
    intern_table_sizes,
    intern_transition,
    intern_transitions,
    make_symbol,
    symbol_qubit,
    symbol_tags,
)
from .boolean import complement, difference, intersection, leaf_alphabet
from .construction import (
    all_basis_states_ta,
    basis_product_ta,
    basis_state_ta,
    from_quantum_state,
    from_quantum_states,
)
from .determinization import count_language, determinize, is_deterministic
from .inclusion import EquivalenceResult, InclusionResult, check_equivalence, check_inclusion
from .minimization import equivalent_via_counting, included_via_counting, reduced_deterministic
from .simulation import downward_simulation, simulation_equivalence_classes, simulation_reduce
from .store import AutomatonStore, default_store_dir
from . import serialization, store, timbuk

__all__ = [
    "TreeAutomaton",
    "Symbol",
    "InternalTransition",
    "make_symbol",
    "symbol_qubit",
    "symbol_tags",
    "intern_transition",
    "intern_transitions",
    "intern_table_sizes",
    "clear_intern_tables",
    "basis_state_ta",
    "all_basis_states_ta",
    "basis_product_ta",
    "from_quantum_state",
    "from_quantum_states",
    "check_inclusion",
    "check_equivalence",
    "InclusionResult",
    "EquivalenceResult",
    "determinize",
    "is_deterministic",
    "count_language",
    "reduced_deterministic",
    "equivalent_via_counting",
    "included_via_counting",
    "intersection",
    "complement",
    "difference",
    "leaf_alphabet",
    "downward_simulation",
    "simulation_equivalence_classes",
    "simulation_reduce",
    "AutomatonStore",
    "default_store_dir",
    "serialization",
    "store",
    "timbuk",
]
