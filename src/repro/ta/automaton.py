"""Tree automata over full binary trees encoding sets of quantum states.

This module is the reproduction's stand-in for the VATA library used by the
paper.  A :class:`TreeAutomaton` represents a finite set of ``n``-qubit quantum
states: its language consists of full binary trees of height ``n`` whose
internal nodes at depth ``i`` are labelled with the qubit symbol ``x_{i+1}``
and whose leaves carry algebraic amplitudes (Section 3 of the paper).

Representation
--------------
* States are non-negative integers.
* An *internal transition* is ``parent -- (qubit, tags) --> (left, right)``.
  ``tags`` is the (possibly empty) tuple of tag numbers introduced by the
  composition-based gate encoding (Section 6); untagged automata always use
  the empty tuple.
* A *leaf transition* maps a leaf state to exactly one
  :class:`~repro.algebraic.omega.AlgebraicNumber` amplitude (the paper's
  convention that leaf transitions have dedicated parent states).
* A state is either internal (has internal transitions) or a leaf state, never
  both.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..algebraic import ZERO, AlgebraicNumber
from ..states import QuantumState

__all__ = [
    "Symbol",
    "InternalTransition",
    "TreeAutomaton",
    "CompactForm",
    "make_symbol",
    "symbol_qubit",
    "symbol_tags",
    "intern_transition",
    "intern_transitions",
    "intern_table_sizes",
    "clear_intern_tables",
    "reduce_cache_stats",
    "clear_reduce_cache",
]

#: An internal-node symbol: ``(qubit_index, tags)``.
Symbol = Tuple[int, Tuple[int, ...]]
#: ``(symbol, left_state, right_state)``.
InternalTransition = Tuple[Symbol, int, int]

# ----------------------------------------------------------------- hash-consing
# The gate transformers create and destroy millions of short transition tuples
# (the same ``(symbol, left, right)`` triple is typically rebuilt by every
# restriction / swap / product step).  Interning them in per-process tables
# makes structurally equal tuples share one object, so dict probing during
# ``reduce()`` and the product constructions mostly hits identity comparisons
# and repeated automata reuse their transition storage instead of re-tupling.
_SYMBOL_TABLE: Dict[Symbol, Symbol] = {}
_TRANSITION_TABLE: Dict[InternalTransition, InternalTransition] = {}
#: safety valve: once a table reaches this size, new entries are no longer
#: stored (existing ones keep being shared) — interning is an optimisation, so
#: degrading it must never cost more than not interning, and wiping a hot
#: million-entry table would.  ``clear_intern_tables()`` resets explicitly.
_MAX_INTERNED = 1_000_000


def make_symbol(qubit: int, tags: Tuple[int, ...] = ()) -> Symbol:
    """Build (and intern) an internal symbol for ``qubit`` with optional tags."""
    table = _SYMBOL_TABLE
    symbol = (int(qubit), tuple(tags))
    if len(table) >= _MAX_INTERNED:
        return table.get(symbol, symbol)
    return table.setdefault(symbol, symbol)


def intern_transition(symbol: Symbol, left: int, right: int) -> InternalTransition:
    """Return the canonical shared tuple for the transition ``(symbol, left, right)``."""
    table = _TRANSITION_TABLE
    entry = (symbol, left, right)
    if len(table) >= _MAX_INTERNED:
        return table.get(entry, entry)
    return table.setdefault(entry, entry)


def intern_transitions(transitions: Iterable[InternalTransition]) -> Tuple[InternalTransition, ...]:
    """Dedupe (order-preserving) and intern a transition iterable into a tuple."""
    table = _TRANSITION_TABLE
    if len(table) >= _MAX_INTERNED:
        return tuple(dict.fromkeys(table.get(entry, entry) for entry in transitions))
    return tuple(dict.fromkeys(table.setdefault(entry, entry) for entry in transitions))


def intern_table_sizes() -> Tuple[int, int]:
    """Current sizes of the (symbol, transition) intern tables, for diagnostics."""
    return len(_SYMBOL_TABLE), len(_TRANSITION_TABLE)


def clear_intern_tables() -> None:
    """Drop the intern tables (existing automata keep working; sharing restarts)."""
    _SYMBOL_TABLE.clear()
    _TRANSITION_TABLE.clear()


def symbol_qubit(symbol: Symbol) -> int:
    """The qubit (tree level) of an internal symbol."""
    return symbol[0]


def symbol_tags(symbol: Symbol) -> Tuple[int, ...]:
    """The tag tuple of an internal symbol (empty when untagged)."""
    return symbol[1]


# -------------------------------------------------------------- reduce cache
# ``reduce()`` is called after every gate application, and circuits with
# repetitive structure (Grover iterations, QFT layers, campaign sweeps over
# mutants of one circuit) keep presenting the *same* automaton again and
# again.  The per-process cache below interns whole state-signature tables:
# it maps the signature of an automaton (its ``structure_key()``) to the
# fully reduced result, so re-reducing a previously seen
# automaton is one dict probe instead of re-hashing every subtree — and all
# callers share one reduced instance, which in turn makes *their* signature
# lookups (and the hash-consed transition tables) hit more often.
_REDUCE_CACHE: Dict[tuple, "TreeAutomaton"] = {}
#: safety valve, same contract as the intern tables: beyond this size new
#: results are no longer stored (lookups keep working) until an explicit
#: :func:`clear_reduce_cache`.
_MAX_REDUCE_CACHE = 8192
_REDUCE_CACHE_STATS = {"hits": 0, "misses": 0}


def reduce_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of the per-process reduce cache (diagnostics)."""
    return {"size": len(_REDUCE_CACHE), **_REDUCE_CACHE_STATS}


def clear_reduce_cache() -> None:
    """Drop the per-process reduce cache and reset its counters."""
    _REDUCE_CACHE.clear()
    _REDUCE_CACHE_STATS["hits"] = 0
    _REDUCE_CACHE_STATS["misses"] = 0


def _reduce_cache_put(key: tuple, value: "TreeAutomaton") -> None:
    if len(_REDUCE_CACHE) < _MAX_REDUCE_CACHE:
        _REDUCE_CACHE[key] = value


class CompactForm:
    """The canonical flat form of a :class:`TreeAutomaton`.

    States are renumbered to contiguous ids ``0..m-1`` (by ascending original
    id, so structurally identical automata built the same way get identical
    forms), transitions are stored per compact state id and — on demand —
    grouped per interned symbol for the product constructions.  ``key`` is the
    automaton's full structural signature: a hashable tuple that two automata
    share iff they are identical up to state renaming along the same order.
    """

    __slots__ = ("num_qubits", "num_states", "roots", "to_original",
                 "internal", "leaves", "key", "_by_state_symbol", "_digest")

    def __init__(self, automaton: "TreeAutomaton"):
        ordered = sorted(automaton.states)
        index = {old: new for new, old in enumerate(ordered)}
        self.num_qubits = automaton.num_qubits
        self.num_states = len(ordered)
        self.roots: Tuple[int, ...] = tuple(sorted(index[root] for root in automaton.roots))
        self.to_original: Tuple[int, ...] = tuple(ordered)
        internal: List[Tuple[InternalTransition, ...]] = [()] * len(ordered)
        for parent, transitions in automaton.internal.items():
            internal[index[parent]] = tuple(
                intern_transition(symbol, index[left], index[right])
                for symbol, left, right in transitions
            )
        self.internal: Tuple[Tuple[InternalTransition, ...], ...] = tuple(internal)
        self.leaves: Dict[int, AlgebraicNumber] = {
            index[state]: amplitude for state, amplitude in automaton.leaves.items()
        }
        self.key: tuple = (
            self.num_qubits,
            self.roots,
            self.internal,
            tuple(sorted(self.leaves.items(), key=lambda item: item[0])),
        )
        self._by_state_symbol: Optional[Dict[Tuple[int, Symbol], Tuple[Tuple[int, int], ...]]] = None
        #: canonical content digest, filled lazily by repro.ta.store.fingerprint
        self._digest: Optional[str] = None

    @property
    def by_state_symbol(self) -> Dict[Tuple[int, Symbol], Tuple[Tuple[int, int], ...]]:
        """``(state, symbol) -> ((left, right), ...)`` product index (lazy, cached)."""
        if self._by_state_symbol is None:
            grouped: Dict[Tuple[int, Symbol], List[Tuple[int, int]]] = {}
            for parent, transitions in enumerate(self.internal):
                for symbol, left, right in transitions:
                    grouped.setdefault((parent, symbol), []).append((left, right))
            self._by_state_symbol = {key: tuple(value) for key, value in grouped.items()}
        return self._by_state_symbol


class TreeAutomaton:
    """A (nondeterministic, finite) tree automaton encoding quantum-state sets."""

    __slots__ = ("num_qubits", "roots", "internal", "leaves", "_max_state", "_states",
                 "_num_transitions", "_depths", "_compact", "_reduced", "_skey", "_by_qubit",
                 "_pair_index", "_arrays")

    def __init__(
        self,
        num_qubits: int,
        roots: Iterable[int],
        internal: Dict[int, Iterable[InternalTransition]],
        leaves: Dict[int, AlgebraicNumber],
    ):
        self.num_qubits = int(num_qubits)
        self.roots = frozenset(int(r) for r in roots)
        self.internal: Dict[int, Tuple[InternalTransition, ...]] = {
            int(state): intern_transitions(transitions)
            for state, transitions in internal.items()
            if transitions
        }
        self.leaves: Dict[int, AlgebraicNumber] = dict(leaves)
        self._max_state: Optional[int] = None
        self._states: Optional[FrozenSet[int]] = None
        self._num_transitions: Optional[int] = None
        self._depths: Optional[object] = None
        self._compact: Optional[CompactForm] = None
        self._reduced = False
        self._skey: Optional[tuple] = None
        self._by_qubit: Optional[Dict[int, Tuple[Tuple[int, int, int], ...]]] = None
        self._pair_index: Optional[Dict[Tuple[int, Symbol], Tuple[Tuple[int, int], ...]]] = None
        # struct-of-arrays view cached by the vectorized kernel backend
        self._arrays: Optional[object] = None

    @classmethod
    def _make(
        cls,
        num_qubits: int,
        roots: FrozenSet[int],
        internal: Dict[int, Tuple[InternalTransition, ...]],
        leaves: Dict[int, AlgebraicNumber],
    ) -> "TreeAutomaton":
        """Trusted fast-path constructor for the kernel transformers.

        The caller guarantees what ``__init__`` would otherwise normalise:
        ``roots`` is a frozenset, every value of ``internal`` is a non-empty,
        duplicate-free tuple of *interned* transitions, and neither mapping is
        mutated afterwards (they may alias another automaton's storage).
        Skipping the re-interning dictcomp is a large constant win because the
        transformers construct automata once per gate term.
        """
        self = cls.__new__(cls)
        self.num_qubits = num_qubits
        self.roots = roots if isinstance(roots, frozenset) else frozenset(roots)
        self.internal = internal
        self.leaves = leaves
        self._max_state = None
        self._states = None
        self._num_transitions = None
        self._depths = None
        self._compact = None
        self._reduced = False
        self._skey = None
        self._by_qubit = None
        self._pair_index = None
        self._arrays = None
        return self

    # ----------------------------------------------------------------- basics
    @property
    def states(self) -> FrozenSet[int]:
        """All states mentioned anywhere in the automaton (cached; do not mutate)."""
        if self._states is None:
            result: Set[int] = set(self.roots) | set(self.internal) | set(self.leaves)
            for transitions in self.internal.values():
                for _symbol, left, right in transitions:
                    result.add(left)
                    result.add(right)
            self._states = frozenset(result)
        return self._states

    @property
    def num_states(self) -> int:
        """Number of states (the ``states`` column of the paper's tables)."""
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        """Number of transitions (the ``transitions`` column of the tables)."""
        if self._num_transitions is None:
            self._num_transitions = sum(len(ts) for ts in self.internal.values()) + len(self.leaves)
        return self._num_transitions

    def size_summary(self) -> str:
        """Format sizes the way the paper's tables do: ``states (transitions)``."""
        return f"{self.num_states} ({self.num_transitions})"

    def transitions(self) -> Iterator[Tuple[int, Symbol, int, int]]:
        """Iterate over all internal transitions as ``(parent, symbol, left, right)``."""
        for parent, transitions in self.internal.items():
            for symbol, left, right in transitions:
                yield parent, symbol, left, right

    def transitions_at(self, qubit: int) -> Iterator[Tuple[int, Symbol, int, int]]:
        """Iterate over internal transitions whose symbol belongs to ``qubit``."""
        for parent, symbol, left, right in self.transitions():
            if symbol_qubit(symbol) == qubit:
                yield parent, symbol, left, right

    def pair_index(self) -> Dict[Tuple[int, Symbol], Tuple[Tuple[int, int], ...]]:
        """``(state, symbol) -> ((left, right), ...)`` product index (cached).

        This is the flat per-interned-symbol grouping the worklist product
        construction (``binary_operation``) probes for matching transitions;
        caching it on the instance makes repeated products over a shared
        automaton — the normal case thanks to the reduce cache — skip the
        re-indexing pass entirely.
        """
        if self._pair_index is None:
            grouped: Dict[Tuple[int, Symbol], List[Tuple[int, int]]] = {}
            for parent, transitions in self.internal.items():
                for symbol, left, right in transitions:
                    grouped.setdefault((parent, symbol), []).append((left, right))
            self._pair_index = {key: tuple(value) for key, value in grouped.items()}
        return self._pair_index

    def transitions_by_qubit(self) -> Dict[int, Tuple[Tuple[int, int, int], ...]]:
        """``qubit -> ((parent, left, right), ...)`` level index (cached).

        This is the flat per-level view the layered algorithms (membership,
        determinization, complementation) iterate over; tags are dropped
        because those algorithms only see untagged condition automata.
        """
        if self._by_qubit is None:
            grouped: Dict[int, List[Tuple[int, int, int]]] = {}
            for parent, transitions in self.internal.items():
                for symbol, left, right in transitions:
                    grouped.setdefault(symbol[0], []).append((parent, left, right))
            self._by_qubit = {qubit: tuple(entries) for qubit, entries in grouped.items()}
        return self._by_qubit

    def next_free_state(self) -> int:
        """Return an integer strictly greater than every existing state id."""
        if self._max_state is None:
            states = self.states
            self._max_state = max(states) if states else -1
        return self._max_state + 1

    def compact(self) -> CompactForm:
        """The canonical flat form (contiguous ids, per-symbol grouping; cached)."""
        if self._compact is None:
            self._compact = CompactForm(self)
        return self._compact

    def structure_key(self) -> tuple:
        """A hashable fingerprint of the exact structure (cached).

        Unlike :meth:`compact`, state ids are *not* renumbered: the key is the
        raw ``(roots, internal, leaves)`` content in insertion order, which is
        deterministic for a given construction history.  Two automata built by
        the same transformer sequence over equal inputs therefore get equal
        keys — exactly the property the reduce and gate caches need — at one
        O(size) pass without sorting.
        """
        if self._skey is None:
            self._skey = (
                self.num_qubits,
                self.roots,
                tuple(self.internal.items()),
                tuple(self.leaves.items()),
            )
        return self._skey

    def _state_depths(self) -> Optional[Dict[int, int]]:
        """``state -> depth`` for every root-reachable state (cached).

        Returns ``None`` when some state is reachable at two different depths,
        i.e. the automaton violates the layering the gate transformers assume;
        callers then fall back to depth-agnostic algorithms.
        """
        if self._depths is None:
            depths: Dict[int, int] = {}
            stack: List[Tuple[int, int]] = [(root, 0) for root in self.roots]
            while stack:
                state, depth = stack.pop()
                known = depths.get(state)
                if known is not None:
                    if known != depth:
                        self._depths = False
                        return None
                    continue
                depths[state] = depth
                for _symbol, left, right in self.internal.get(state, ()):
                    stack.append((left, depth + 1))
                    stack.append((right, depth + 1))
            self._depths = depths
        return self._depths if self._depths is not False else None

    def is_tagged(self) -> bool:
        """True iff any internal symbol carries composition tags."""
        return any(symbol_tags(symbol) for _p, symbol, _l, _r in self.transitions())

    def __repr__(self) -> str:
        return (
            f"TreeAutomaton(num_qubits={self.num_qubits}, states={self.num_states}, "
            f"transitions={self.num_transitions}, roots={sorted(self.roots)})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality (same states, roots and transitions) — *not* language equality."""
        if not isinstance(other, TreeAutomaton):
            return NotImplemented
        if self is other:
            return True
        # fast path: equal structure keys mean bit-identical content, and both
        # sides usually have theirs cached (the reduce/gate caches key on it) —
        # comparing them skips rebuilding two full frozenset tables.  Unequal
        # keys are inconclusive (they are transition-order-sensitive; equality
        # is not), so fall through to the order-insensitive comparison.
        if (
            self._skey is not None
            and other._skey is not None
            and self._skey == other._skey
        ):
            return True
        return (
            self.num_qubits == other.num_qubits
            and self.roots == other.roots
            and {s: frozenset(t) for s, t in self.internal.items()}
            == {s: frozenset(t) for s, t in other.internal.items()}
            and self.leaves == other.leaves
        )

    # -------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on violation.

        * no state is both internal and leaf,
        * all states reachable from a root at depth ``d`` carry symbols of
          qubit ``d`` (the layering assumed by the gate transformers),
        * leaf states appear exactly below the last qubit level.
        """
        overlap = set(self.internal) & set(self.leaves)
        if overlap:
            raise ValueError(f"states are both internal and leaf: {sorted(overlap)[:5]}")
        depth_of: Dict[int, int] = {}
        queue: List[Tuple[int, int]] = [(root, 0) for root in self.roots]
        while queue:
            state, depth = queue.pop()
            if state in depth_of:
                if depth_of[state] != depth:
                    raise ValueError(f"state {state} appears at depths {depth_of[state]} and {depth}")
                continue
            depth_of[state] = depth
            if state in self.leaves:
                if depth != self.num_qubits:
                    raise ValueError(f"leaf state {state} reachable at depth {depth} != {self.num_qubits}")
                continue
            for symbol, left, right in self.internal.get(state, ()):
                if symbol_qubit(symbol) != depth:
                    raise ValueError(
                        f"state {state} at depth {depth} has a transition on qubit {symbol_qubit(symbol)}"
                    )
                queue.append((left, depth + 1))
                queue.append((right, depth + 1))

    # ---------------------------------------------------------------- algebra
    def relabelled(self) -> "TreeAutomaton":
        """Return an automaton with states renumbered ``0..m-1`` deterministically."""
        ordered = sorted(self.states)
        mapping = {old: new for new, old in enumerate(ordered)}
        internal = {
            mapping[parent]: tuple(
                (symbol, mapping[left], mapping[right]) for symbol, left, right in transitions
            )
            for parent, transitions in self.internal.items()
        }
        leaves = {mapping[state]: amplitude for state, amplitude in self.leaves.items()}
        roots = {mapping[root] for root in self.roots if root in mapping}
        return TreeAutomaton(self.num_qubits, roots, internal, leaves)

    def map_leaves(self, mapper) -> "TreeAutomaton":
        """Return a copy whose leaf amplitudes are transformed by ``mapper``."""
        leaves = {state: mapper(amplitude) for state, amplitude in self.leaves.items()}
        # the internal structure is immutable and interned -> share it outright
        return TreeAutomaton._make(self.num_qubits, self.roots, self.internal, leaves)

    def remove_useless(self) -> "TreeAutomaton":
        """Drop states that are not both reachable (top-down) and productive (bottom-up).

        Dispatches to the active kernel backend (:mod:`repro.ta.kernel`); the
        reference implementation lives in
        :func:`repro.ta.kernel.reference.remove_useless`.  Every backend
        returns ``self`` (identity) when no state is useless.
        """
        from .kernel import active_backend

        return active_backend().remove_useless(self)

    def reduce(self) -> "TreeAutomaton":
        """Merge states with identical outgoing behaviour until a fixpoint.

        This is the paper's "lightweight simulation-based reduction": two
        states are merged when they have exactly the same successor transitions
        (after previous merges), which is a congruence refinement computed
        bottom-up.  Useless states are removed first and duplicates pruned.

        Results are interned in the per-process reduce cache keyed by the
        automaton's :meth:`structure_key`, so consecutive gate applications
        that present a previously seen automaton never re-hash its subtrees —
        they get the shared, already-reduced instance back.

        The sweeps themselves run on the active kernel backend
        (:mod:`repro.ta.kernel`); the cache probe and the layered/fixpoint
        choice stay here so every backend shares them.
        """
        if self._reduced:
            return self
        key = self.structure_key()
        cached = _REDUCE_CACHE.get(key)
        if cached is not None:
            _REDUCE_CACHE_STATS["hits"] += 1
            return cached
        _REDUCE_CACHE_STATS["misses"] += 1
        from .kernel import active_backend

        backend = active_backend()
        automaton = backend.remove_useless(self)
        if automaton._reduced:
            _reduce_cache_put(key, automaton)
            return automaton
        if automaton._state_depths() is not None:
            result = backend.reduce_layered(automaton)
        else:
            result = backend.reduce_fixpoint(automaton)
        result._reduced = True
        _reduce_cache_put(key, result)
        if result is not automaton:
            # idempotence: reducing the result later must also be a cache hit
            _reduce_cache_put(result.structure_key(), result)
        return result

    # -------------------------------------------------------------- language
    def accepts(self, state: QuantumState) -> bool:
        """Membership test: is the full-binary-tree encoding of ``state`` accepted?"""
        if state.num_qubits != self.num_qubits:
            return False
        leaf_states_by_amplitude: Dict[AlgebraicNumber, Set[int]] = {}
        for leaf_state, amplitude in self.leaves.items():
            leaf_states_by_amplitude.setdefault(amplitude, set()).add(leaf_state)
        transitions_by_qubit = self.transitions_by_qubit()

        cache: Dict[Tuple[int, frozenset], frozenset] = {}

        def reach(depth: int, submap: frozenset) -> frozenset:
            """TA states that generate the subtree described by the sparse suffix map."""
            key = (depth, submap)
            if key in cache:
                return cache[key]
            if depth == self.num_qubits:
                amplitude = ZERO
                for _suffix, value in submap:
                    amplitude = value
                result = frozenset(leaf_states_by_amplitude.get(amplitude, frozenset()))
            else:
                left_items = frozenset(
                    (suffix[1:], value) for suffix, value in submap if suffix[0] == 0
                )
                right_items = frozenset(
                    (suffix[1:], value) for suffix, value in submap if suffix[0] == 1
                )
                left_states = reach(depth + 1, left_items)
                right_states = reach(depth + 1, right_items)
                states = set()
                if left_states and right_states:
                    for parent, left, right in transitions_by_qubit.get(depth, ()):
                        if left in left_states and right in right_states:
                            states.add(parent)
                result = frozenset(states)
            cache[key] = result
            return result

        initial = frozenset((bits, amplitude) for bits, amplitude in state.items())
        return bool(reach(0, initial) & self.roots)

    def enumerate_states(self, limit: Optional[int] = None) -> List[QuantumState]:
        """Enumerate the language as explicit :class:`QuantumState` objects.

        Subtrees are represented sparsely (suffix -> amplitude maps), so the
        cost is proportional to the number and sparsity of accepted states,
        not to ``2^n``.  ``limit`` bounds the number of returned states; a
        :class:`ValueError` is raised when the language exceeds it.
        """
        cache: Dict[int, List[Dict[Tuple[int, ...], AlgebraicNumber]]] = {}

        def expand(state: int, depth: int) -> List[Dict[Tuple[int, ...], AlgebraicNumber]]:
            if state in cache:
                return cache[state]
            results: List[Dict[Tuple[int, ...], AlgebraicNumber]] = []
            if state in self.leaves:
                amplitude = self.leaves[state]
                results.append({} if amplitude.is_zero() else {(): amplitude})
            else:
                for symbol, left, right in self.internal.get(state, ()):
                    for left_map, right_map in itertools.product(
                        expand(left, depth + 1), expand(right, depth + 1)
                    ):
                        merged: Dict[Tuple[int, ...], AlgebraicNumber] = {}
                        for suffix, amplitude in left_map.items():
                            merged[(0,) + suffix] = amplitude
                        for suffix, amplitude in right_map.items():
                            merged[(1,) + suffix] = amplitude
                        if merged not in results:
                            results.append(merged)
                        if limit is not None and len(results) > limit:
                            raise ValueError(f"language exceeds enumeration limit {limit}")
            cache[state] = results
            return results

        seen: List[QuantumState] = []
        for root in sorted(self.roots):
            for amplitude_map in expand(root, 0):
                candidate = QuantumState(self.num_qubits, amplitude_map)
                if candidate not in seen:
                    seen.append(candidate)
                if limit is not None and len(seen) > limit:
                    raise ValueError(f"language exceeds enumeration limit {limit}")
        return seen

    def is_empty(self) -> bool:
        """True iff the language is empty."""
        return not self.remove_useless().roots

    # ------------------------------------------------------------- utilities
    def untagged(self) -> "TreeAutomaton":
        """Return a copy with all composition tags removed from internal symbols."""
        internal = {
            parent: tuple(dict.fromkeys(
                intern_transition(make_symbol(symbol_qubit(symbol)), left, right)
                for symbol, left, right in transitions
            ))
            for parent, transitions in self.internal.items()
        }
        return TreeAutomaton._make(self.num_qubits, self.roots, internal, self.leaves)

    def shifted(self, offset: int) -> "TreeAutomaton":
        """Return a copy with every state id shifted by ``offset`` (for disjoint unions)."""
        internal = {
            parent + offset: tuple(
                intern_transition(symbol, left + offset, right + offset)
                for symbol, left, right in transitions
            )
            for parent, transitions in self.internal.items()
        }
        leaves = {state + offset: amplitude for state, amplitude in self.leaves.items()}
        roots = frozenset(root + offset for root in self.roots)
        return TreeAutomaton._make(self.num_qubits, roots, internal, leaves)

    def union(self, other: "TreeAutomaton") -> "TreeAutomaton":
        """Language union of two automata over the same number of qubits."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot union automata of different widths")
        offset = self.next_free_state()
        shifted = other.shifted(offset)
        internal = dict(self.internal)
        internal.update(shifted.internal)
        leaves = dict(self.leaves)
        leaves.update(shifted.leaves)
        roots = self.roots | shifted.roots
        return TreeAutomaton._make(self.num_qubits, roots, internal, leaves)
