"""Tree automata over full binary trees encoding sets of quantum states.

This module is the reproduction's stand-in for the VATA library used by the
paper.  A :class:`TreeAutomaton` represents a finite set of ``n``-qubit quantum
states: its language consists of full binary trees of height ``n`` whose
internal nodes at depth ``i`` are labelled with the qubit symbol ``x_{i+1}``
and whose leaves carry algebraic amplitudes (Section 3 of the paper).

Representation
--------------
* States are non-negative integers.
* An *internal transition* is ``parent -- (qubit, tags) --> (left, right)``.
  ``tags`` is the (possibly empty) tuple of tag numbers introduced by the
  composition-based gate encoding (Section 6); untagged automata always use
  the empty tuple.
* A *leaf transition* maps a leaf state to exactly one
  :class:`~repro.algebraic.omega.AlgebraicNumber` amplitude (the paper's
  convention that leaf transitions have dedicated parent states).
* A state is either internal (has internal transitions) or a leaf state, never
  both.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..algebraic import ZERO, AlgebraicNumber
from ..states import QuantumState

__all__ = [
    "Symbol",
    "InternalTransition",
    "TreeAutomaton",
    "make_symbol",
    "symbol_qubit",
    "symbol_tags",
    "intern_transition",
    "intern_transitions",
    "intern_table_sizes",
    "clear_intern_tables",
]

#: An internal-node symbol: ``(qubit_index, tags)``.
Symbol = Tuple[int, Tuple[int, ...]]
#: ``(symbol, left_state, right_state)``.
InternalTransition = Tuple[Symbol, int, int]

# ----------------------------------------------------------------- hash-consing
# The gate transformers create and destroy millions of short transition tuples
# (the same ``(symbol, left, right)`` triple is typically rebuilt by every
# restriction / swap / product step).  Interning them in per-process tables
# makes structurally equal tuples share one object, so dict probing during
# ``reduce()`` and the product constructions mostly hits identity comparisons
# and repeated automata reuse their transition storage instead of re-tupling.
_SYMBOL_TABLE: Dict[Symbol, Symbol] = {}
_TRANSITION_TABLE: Dict[InternalTransition, InternalTransition] = {}
#: safety valve: once a table reaches this size, new entries are no longer
#: stored (existing ones keep being shared) — interning is an optimisation, so
#: degrading it must never cost more than not interning, and wiping a hot
#: million-entry table would.  ``clear_intern_tables()`` resets explicitly.
_MAX_INTERNED = 1_000_000


def make_symbol(qubit: int, tags: Tuple[int, ...] = ()) -> Symbol:
    """Build (and intern) an internal symbol for ``qubit`` with optional tags."""
    table = _SYMBOL_TABLE
    symbol = (int(qubit), tuple(tags))
    if len(table) >= _MAX_INTERNED:
        return table.get(symbol, symbol)
    return table.setdefault(symbol, symbol)


def intern_transition(symbol: Symbol, left: int, right: int) -> InternalTransition:
    """Return the canonical shared tuple for the transition ``(symbol, left, right)``."""
    table = _TRANSITION_TABLE
    entry = (symbol, left, right)
    if len(table) >= _MAX_INTERNED:
        return table.get(entry, entry)
    return table.setdefault(entry, entry)


def intern_transitions(transitions: Iterable[InternalTransition]) -> Tuple[InternalTransition, ...]:
    """Dedupe (order-preserving) and intern a transition iterable into a tuple."""
    table = _TRANSITION_TABLE
    if len(table) >= _MAX_INTERNED:
        return tuple(dict.fromkeys(table.get(entry, entry) for entry in transitions))
    return tuple(dict.fromkeys(table.setdefault(entry, entry) for entry in transitions))


def intern_table_sizes() -> Tuple[int, int]:
    """Current sizes of the (symbol, transition) intern tables, for diagnostics."""
    return len(_SYMBOL_TABLE), len(_TRANSITION_TABLE)


def clear_intern_tables() -> None:
    """Drop the intern tables (existing automata keep working; sharing restarts)."""
    _SYMBOL_TABLE.clear()
    _TRANSITION_TABLE.clear()


def symbol_qubit(symbol: Symbol) -> int:
    """The qubit (tree level) of an internal symbol."""
    return symbol[0]


def symbol_tags(symbol: Symbol) -> Tuple[int, ...]:
    """The tag tuple of an internal symbol (empty when untagged)."""
    return symbol[1]


class TreeAutomaton:
    """A (nondeterministic, finite) tree automaton encoding quantum-state sets."""

    __slots__ = ("num_qubits", "roots", "internal", "leaves", "_max_state", "_states", "_num_transitions")

    def __init__(
        self,
        num_qubits: int,
        roots: Iterable[int],
        internal: Dict[int, Iterable[InternalTransition]],
        leaves: Dict[int, AlgebraicNumber],
    ):
        self.num_qubits = int(num_qubits)
        self.roots = frozenset(int(r) for r in roots)
        self.internal: Dict[int, Tuple[InternalTransition, ...]] = {
            int(state): intern_transitions(transitions)
            for state, transitions in internal.items()
            if transitions
        }
        self.leaves: Dict[int, AlgebraicNumber] = dict(leaves)
        self._max_state: Optional[int] = None
        self._states: Optional[FrozenSet[int]] = None
        self._num_transitions: Optional[int] = None

    # ----------------------------------------------------------------- basics
    @property
    def states(self) -> FrozenSet[int]:
        """All states mentioned anywhere in the automaton (cached; do not mutate)."""
        if self._states is None:
            result: Set[int] = set(self.roots) | set(self.internal) | set(self.leaves)
            for transitions in self.internal.values():
                for _symbol, left, right in transitions:
                    result.add(left)
                    result.add(right)
            self._states = frozenset(result)
        return self._states

    @property
    def num_states(self) -> int:
        """Number of states (the ``states`` column of the paper's tables)."""
        return len(self.states)

    @property
    def num_transitions(self) -> int:
        """Number of transitions (the ``transitions`` column of the tables)."""
        if self._num_transitions is None:
            self._num_transitions = sum(len(ts) for ts in self.internal.values()) + len(self.leaves)
        return self._num_transitions

    def size_summary(self) -> str:
        """Format sizes the way the paper's tables do: ``states (transitions)``."""
        return f"{self.num_states} ({self.num_transitions})"

    def transitions(self) -> Iterator[Tuple[int, Symbol, int, int]]:
        """Iterate over all internal transitions as ``(parent, symbol, left, right)``."""
        for parent, transitions in self.internal.items():
            for symbol, left, right in transitions:
                yield parent, symbol, left, right

    def transitions_at(self, qubit: int) -> Iterator[Tuple[int, Symbol, int, int]]:
        """Iterate over internal transitions whose symbol belongs to ``qubit``."""
        for parent, symbol, left, right in self.transitions():
            if symbol_qubit(symbol) == qubit:
                yield parent, symbol, left, right

    def next_free_state(self) -> int:
        """Return an integer strictly greater than every existing state id."""
        if self._max_state is None:
            states = self.states
            self._max_state = max(states) if states else -1
        return self._max_state + 1

    def is_tagged(self) -> bool:
        """True iff any internal symbol carries composition tags."""
        return any(symbol_tags(symbol) for _p, symbol, _l, _r in self.transitions())

    def __repr__(self) -> str:
        return (
            f"TreeAutomaton(num_qubits={self.num_qubits}, states={self.num_states}, "
            f"transitions={self.num_transitions}, roots={sorted(self.roots)})"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality (same states, roots and transitions) — *not* language equality."""
        if not isinstance(other, TreeAutomaton):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self.roots == other.roots
            and {s: frozenset(t) for s, t in self.internal.items()}
            == {s: frozenset(t) for s, t in other.internal.items()}
            and self.leaves == other.leaves
        )

    # -------------------------------------------------------------- validation
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on violation.

        * no state is both internal and leaf,
        * all states reachable from a root at depth ``d`` carry symbols of
          qubit ``d`` (the layering assumed by the gate transformers),
        * leaf states appear exactly below the last qubit level.
        """
        overlap = set(self.internal) & set(self.leaves)
        if overlap:
            raise ValueError(f"states are both internal and leaf: {sorted(overlap)[:5]}")
        depth_of: Dict[int, int] = {}
        queue: List[Tuple[int, int]] = [(root, 0) for root in self.roots]
        while queue:
            state, depth = queue.pop()
            if state in depth_of:
                if depth_of[state] != depth:
                    raise ValueError(f"state {state} appears at depths {depth_of[state]} and {depth}")
                continue
            depth_of[state] = depth
            if state in self.leaves:
                if depth != self.num_qubits:
                    raise ValueError(f"leaf state {state} reachable at depth {depth} != {self.num_qubits}")
                continue
            for symbol, left, right in self.internal.get(state, ()):
                if symbol_qubit(symbol) != depth:
                    raise ValueError(
                        f"state {state} at depth {depth} has a transition on qubit {symbol_qubit(symbol)}"
                    )
                queue.append((left, depth + 1))
                queue.append((right, depth + 1))

    # ---------------------------------------------------------------- algebra
    def relabelled(self) -> "TreeAutomaton":
        """Return an automaton with states renumbered ``0..m-1`` deterministically."""
        ordered = sorted(self.states)
        mapping = {old: new for new, old in enumerate(ordered)}
        internal = {
            mapping[parent]: tuple(
                (symbol, mapping[left], mapping[right]) for symbol, left, right in transitions
            )
            for parent, transitions in self.internal.items()
        }
        leaves = {mapping[state]: amplitude for state, amplitude in self.leaves.items()}
        roots = {mapping[root] for root in self.roots if root in mapping}
        return TreeAutomaton(self.num_qubits, roots, internal, leaves)

    def map_leaves(self, mapper) -> "TreeAutomaton":
        """Return a copy whose leaf amplitudes are transformed by ``mapper``."""
        leaves = {state: mapper(amplitude) for state, amplitude in self.leaves.items()}
        return TreeAutomaton(self.num_qubits, self.roots, self.internal, leaves)

    def remove_useless(self) -> "TreeAutomaton":
        """Drop states that are not both reachable (top-down) and productive (bottom-up)."""
        # productive = can generate at least one subtree
        productive: Set[int] = set(self.leaves)
        changed = True
        while changed:
            changed = False
            for parent, transitions in self.internal.items():
                if parent in productive:
                    continue
                for _symbol, left, right in transitions:
                    if left in productive and right in productive:
                        productive.add(parent)
                        changed = True
                        break
        # reachable = reachable from a root through productive transitions
        reachable: Set[int] = set()
        stack = [root for root in self.roots if root in productive]
        while stack:
            state = stack.pop()
            if state in reachable:
                continue
            reachable.add(state)
            for _symbol, left, right in self.internal.get(state, ()):
                if left in productive and right in productive:
                    if left not in reachable:
                        stack.append(left)
                    if right not in reachable:
                        stack.append(right)
        keep = reachable & productive
        if len(keep) == len(self.states):
            # every state is useful, so no transition can be dropped either
            return self
        internal = {
            parent: tuple(
                entry
                for entry in transitions
                if entry[1] in keep and entry[2] in keep
            )
            for parent, transitions in self.internal.items()
            if parent in keep
        }
        internal = {parent: transitions for parent, transitions in internal.items() if transitions}
        leaves = {state: amplitude for state, amplitude in self.leaves.items() if state in keep}
        roots = {root for root in self.roots if root in keep}
        return TreeAutomaton(self.num_qubits, roots, internal, leaves)

    def reduce(self) -> "TreeAutomaton":
        """Merge states with identical outgoing behaviour until a fixpoint.

        This is the paper's "lightweight simulation-based reduction": two
        states are merged when they have exactly the same successor transitions
        (after previous merges), which is a congruence refinement computed
        bottom-up.  Useless states are removed first and duplicates pruned.
        """
        automaton = self.remove_useless()
        representative: Dict[int, int] = {state: state for state in automaton.states}

        def resolve(state: int) -> int:
            while representative[state] != state:
                representative[state] = representative[representative[state]]
                state = representative[state]
            return state

        changed = True
        merged_any = False
        internal = automaton.internal
        leaves = automaton.leaves
        ordered_states = sorted(automaton.states)
        while changed:
            changed = False
            signature_to_state: Dict[object, int] = {}
            for state in ordered_states:
                state = resolve(state)
                if state in leaves:
                    signature = ("leaf", leaves[state])
                else:
                    signature = (
                        "internal",
                        frozenset(
                            intern_transition(symbol, resolve(left), resolve(right))
                            for symbol, left, right in internal.get(state, ())
                        ),
                    )
                previous = signature_to_state.get(signature)
                if previous is None:
                    signature_to_state[signature] = state
                elif previous != state:
                    representative[state] = previous
                    changed = True
                    merged_any = True
        if not merged_any:
            # nothing merged: the useless-state-free automaton is already reduced,
            # so reuse it (and its interned transition storage) as-is
            return automaton
        new_internal: Dict[int, Dict[InternalTransition, None]] = {}
        for parent, transitions in internal.items():
            rep_parent = resolve(parent)
            bucket = new_internal.setdefault(rep_parent, {})
            for symbol, left, right in transitions:
                bucket[intern_transition(symbol, resolve(left), resolve(right))] = None
        new_leaves = {resolve(state): amplitude for state, amplitude in leaves.items()}
        new_roots = {resolve(root) for root in automaton.roots}
        reduced = TreeAutomaton(self.num_qubits, new_roots, new_internal, new_leaves)
        return reduced.remove_useless()

    # -------------------------------------------------------------- language
    def accepts(self, state: QuantumState) -> bool:
        """Membership test: is the full-binary-tree encoding of ``state`` accepted?"""
        if state.num_qubits != self.num_qubits:
            return False
        leaf_states_by_amplitude: Dict[AlgebraicNumber, Set[int]] = {}
        for leaf_state, amplitude in self.leaves.items():
            leaf_states_by_amplitude.setdefault(amplitude, set()).add(leaf_state)
        transitions_by_qubit: Dict[int, List[Tuple[int, int, int]]] = {}
        for parent, symbol, left, right in self.transitions():
            transitions_by_qubit.setdefault(symbol_qubit(symbol), []).append((parent, left, right))

        cache: Dict[Tuple[int, frozenset], frozenset] = {}

        def reach(depth: int, submap: frozenset) -> frozenset:
            """TA states that generate the subtree described by the sparse suffix map."""
            key = (depth, submap)
            if key in cache:
                return cache[key]
            if depth == self.num_qubits:
                amplitude = ZERO
                for _suffix, value in submap:
                    amplitude = value
                result = frozenset(leaf_states_by_amplitude.get(amplitude, frozenset()))
            else:
                left_items = frozenset(
                    (suffix[1:], value) for suffix, value in submap if suffix[0] == 0
                )
                right_items = frozenset(
                    (suffix[1:], value) for suffix, value in submap if suffix[0] == 1
                )
                left_states = reach(depth + 1, left_items)
                right_states = reach(depth + 1, right_items)
                states = set()
                if left_states and right_states:
                    for parent, left, right in transitions_by_qubit.get(depth, ()):
                        if left in left_states and right in right_states:
                            states.add(parent)
                result = frozenset(states)
            cache[key] = result
            return result

        initial = frozenset((bits, amplitude) for bits, amplitude in state.items())
        return bool(reach(0, initial) & self.roots)

    def enumerate_states(self, limit: Optional[int] = None) -> List[QuantumState]:
        """Enumerate the language as explicit :class:`QuantumState` objects.

        Subtrees are represented sparsely (suffix -> amplitude maps), so the
        cost is proportional to the number and sparsity of accepted states,
        not to ``2^n``.  ``limit`` bounds the number of returned states; a
        :class:`ValueError` is raised when the language exceeds it.
        """
        cache: Dict[int, List[Dict[Tuple[int, ...], AlgebraicNumber]]] = {}

        def expand(state: int, depth: int) -> List[Dict[Tuple[int, ...], AlgebraicNumber]]:
            if state in cache:
                return cache[state]
            results: List[Dict[Tuple[int, ...], AlgebraicNumber]] = []
            if state in self.leaves:
                amplitude = self.leaves[state]
                results.append({} if amplitude.is_zero() else {(): amplitude})
            else:
                for symbol, left, right in self.internal.get(state, ()):
                    for left_map, right_map in itertools.product(
                        expand(left, depth + 1), expand(right, depth + 1)
                    ):
                        merged: Dict[Tuple[int, ...], AlgebraicNumber] = {}
                        for suffix, amplitude in left_map.items():
                            merged[(0,) + suffix] = amplitude
                        for suffix, amplitude in right_map.items():
                            merged[(1,) + suffix] = amplitude
                        if merged not in results:
                            results.append(merged)
                        if limit is not None and len(results) > limit:
                            raise ValueError(f"language exceeds enumeration limit {limit}")
            cache[state] = results
            return results

        seen: List[QuantumState] = []
        for root in sorted(self.roots):
            for amplitude_map in expand(root, 0):
                candidate = QuantumState(self.num_qubits, amplitude_map)
                if candidate not in seen:
                    seen.append(candidate)
                if limit is not None and len(seen) > limit:
                    raise ValueError(f"language exceeds enumeration limit {limit}")
        return seen

    def is_empty(self) -> bool:
        """True iff the language is empty."""
        return not self.remove_useless().roots

    # ------------------------------------------------------------- utilities
    def untagged(self) -> "TreeAutomaton":
        """Return a copy with all composition tags removed from internal symbols."""
        internal = {
            parent: tuple(
                (make_symbol(symbol_qubit(symbol)), left, right)
                for symbol, left, right in transitions
            )
            for parent, transitions in self.internal.items()
        }
        return TreeAutomaton(self.num_qubits, self.roots, internal, self.leaves)

    def shifted(self, offset: int) -> "TreeAutomaton":
        """Return a copy with every state id shifted by ``offset`` (for disjoint unions)."""
        internal = {
            parent + offset: tuple(
                (symbol, left + offset, right + offset) for symbol, left, right in transitions
            )
            for parent, transitions in self.internal.items()
        }
        leaves = {state + offset: amplitude for state, amplitude in self.leaves.items()}
        roots = {root + offset for root in self.roots}
        return TreeAutomaton(self.num_qubits, roots, internal, leaves)

    def union(self, other: "TreeAutomaton") -> "TreeAutomaton":
        """Language union of two automata over the same number of qubits."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("cannot union automata of different widths")
        offset = self.next_free_state()
        shifted = other.shifted(offset)
        internal = dict(self.internal)
        for parent, transitions in shifted.internal.items():
            internal[parent] = tuple(transitions)
        leaves = dict(self.leaves)
        leaves.update(shifted.leaves)
        roots = set(self.roots) | set(shifted.roots)
        return TreeAutomaton(self.num_qubits, roots, internal, leaves)
