"""Maximum downward simulation on quantum-state tree automata.

The paper keeps the automata small with a *lightweight* reduction that only
merges states with literally identical successor transitions (footnote 6 calls
computing the full simulation relation future work).  This module provides the
full version for comparison and ablation:

* :func:`downward_simulation` computes the maximum downward-simulation
  preorder ``q ⪯ r`` ("everything ``q`` can generate, ``r`` can generate
  too") with the classical greatest-fixpoint refinement, specialised to the
  layered, acyclic automata of this library so it runs level by level in one
  bottom-up pass;
* :func:`simulation_reduce` quotients the automaton by simulation
  *equivalence* (``q ⪯ r`` and ``r ⪯ q``) and optionally drops transitions
  that are dominated by another transition of the same parent — both
  operations preserve the language exactly;
* :func:`simulation_equivalence_classes` exposes the partition for inspection.

The lightweight reduction of :meth:`TreeAutomaton.reduce` is never *wrong*,
just weaker; ``simulation_reduce`` can only produce an automaton that is at
most as large.  The ablation benchmark ``bench_ablations.py`` compares the two.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .automaton import InternalTransition, TreeAutomaton

__all__ = [
    "downward_simulation",
    "simulation_equivalence_classes",
    "simulation_reduce",
]


def _states_by_depth(automaton: TreeAutomaton) -> Dict[int, Set[int]]:
    """Group reachable states by their depth (qubit level; leaves at ``num_qubits``)."""
    depth_of: Dict[int, int] = {}
    stack: List[Tuple[int, int]] = [(root, 0) for root in automaton.roots]
    while stack:
        state, depth = stack.pop()
        if state in depth_of:
            continue
        depth_of[state] = depth
        for _symbol, left, right in automaton.internal.get(state, ()):
            stack.append((left, depth + 1))
            stack.append((right, depth + 1))
    by_depth: Dict[int, Set[int]] = {}
    for state, depth in depth_of.items():
        by_depth.setdefault(depth, set()).add(state)
    return by_depth


def downward_simulation(automaton: TreeAutomaton) -> FrozenSet[Tuple[int, int]]:
    """Return the maximum downward simulation as a set of pairs ``(q, r)`` meaning ``q ⪯ r``.

    Only pairs of *distinct* reachable states are reported (the relation is
    reflexive by definition, listing ``(q, q)`` would be noise).  A leaf state
    is simulated exactly by the leaf states carrying the same amplitude; an
    internal state ``q`` is simulated by ``r`` iff every transition of ``q``
    is matched by some transition of ``r`` whose children simulate ``q``'s
    children component-wise.
    """
    automaton = automaton.remove_useless()
    by_depth = _states_by_depth(automaton)
    if not by_depth:
        return frozenset()
    max_depth = max(by_depth)

    simulated_by: Dict[int, Set[int]] = {}

    # leaves: same amplitude
    for state in by_depth.get(max_depth, ()):  # leaf level (== num_qubits for non-empty TAs)
        amplitude = automaton.leaves.get(state)
        simulated_by[state] = {
            other
            for other in by_depth[max_depth]
            if automaton.leaves.get(other) == amplitude
        }

    def transition_matched(
        transition: InternalTransition, candidates: Tuple[InternalTransition, ...]
    ) -> bool:
        symbol, left, right = transition
        for other_symbol, other_left, other_right in candidates:
            if other_symbol != symbol:
                continue
            if other_left in simulated_by.get(left, ()) or other_left == left:
                if other_right in simulated_by.get(right, ()) or other_right == right:
                    return True
        return False

    # internal levels bottom-up; children live one level deeper, so their
    # relation is already final when the parents are processed.
    for depth in range(max_depth - 1, -1, -1):
        states = sorted(by_depth.get(depth, ()))
        for state in states:
            transitions = automaton.internal.get(state, ())
            simulators: Set[int] = set()
            for candidate in states:
                if candidate == state:
                    continue
                candidate_transitions = automaton.internal.get(candidate, ())
                if all(
                    transition_matched(transition, candidate_transitions)
                    for transition in transitions
                ):
                    simulators.add(candidate)
            simulated_by[state] = simulators

    pairs = {
        (state, simulator)
        for state, simulators in simulated_by.items()
        for simulator in simulators
        if simulator != state
    }
    return frozenset(pairs)


def simulation_equivalence_classes(automaton: TreeAutomaton) -> List[FrozenSet[int]]:
    """Partition the reachable states into simulation-equivalence classes."""
    automaton = automaton.remove_useless()
    relation = downward_simulation(automaton)
    pairs = set(relation)
    classes: Dict[int, Set[int]] = {}
    for state in sorted(automaton.states):
        placed = False
        for representative, members in classes.items():
            if ((state, representative) in pairs and (representative, state) in pairs) or (
                state == representative
            ):
                members.add(state)
                placed = True
                break
        if not placed:
            classes[state] = {state}
    return [frozenset(members) for members in classes.values()]


def simulation_reduce(automaton: TreeAutomaton, prune_transitions: bool = True) -> TreeAutomaton:
    """Quotient by simulation equivalence and drop dominated transitions.

    The reduction proceeds in two language-preserving steps:

    1. merge every simulation-equivalence class into its smallest member;
    2. (optional) on the quotient automaton, recompute the simulation and drop
       every transition ``q -f-> (l, r)`` *dominated* by a sibling
       ``q -f-> (l', r')`` with ``l ⪯ l'`` and ``r ⪯ r'``: any subtree the
       dominated transition generates, the dominating one generates too.
    """
    automaton = automaton.remove_useless()
    if not automaton.roots:
        return automaton
    quotient = _quotient_by_simulation_equivalence(automaton)
    if not prune_transitions:
        return quotient
    return _prune_dominated_transitions(quotient)


def _quotient_by_simulation_equivalence(automaton: TreeAutomaton) -> TreeAutomaton:
    """Merge mutually-simulating states (smallest state id becomes the representative)."""
    pairs = set(downward_simulation(automaton))
    representative: Dict[int, int] = {}
    for state in sorted(automaton.states):
        representative[state] = state
        for other in sorted(automaton.states):
            if other >= state:
                break
            if (state, other) in pairs and (other, state) in pairs:
                representative[state] = other
                break

    internal: Dict[int, List[InternalTransition]] = {}
    for parent, transitions in automaton.internal.items():
        bucket = internal.setdefault(representative[parent], [])
        for symbol, left, right in transitions:
            entry = (symbol, representative[left], representative[right])
            if entry not in bucket:
                bucket.append(entry)
    leaves = {
        representative[state]: amplitude
        for state, amplitude in automaton.leaves.items()
        if representative[state] == state
    }
    roots = {representative[root] for root in automaton.roots}
    return TreeAutomaton(automaton.num_qubits, roots, internal, leaves).remove_useless()


def _prune_dominated_transitions(automaton: TreeAutomaton) -> TreeAutomaton:
    """Drop transitions dominated by a sibling transition of the same parent."""
    pairs = set(downward_simulation(automaton))

    def simulates(small: int, large: int) -> bool:
        return small == large or (small, large) in pairs

    internal: Dict[int, List[InternalTransition]] = {}
    for parent, transitions in automaton.internal.items():
        transitions = list(transitions)
        kept: List[InternalTransition] = []
        for index, (symbol, left, right) in enumerate(transitions):
            dominated = False
            for other_index, (other_symbol, other_left, other_right) in enumerate(transitions):
                if index == other_index or other_symbol != symbol:
                    continue
                if not (simulates(left, other_left) and simulates(right, other_right)):
                    continue
                mutually = simulates(other_left, left) and simulates(other_right, right)
                # strictly dominated, or a duplicate of an earlier equivalent transition
                if not mutually or other_index < index:
                    dominated = True
                    break
            if not dominated:
                kept.append((symbol, left, right))
        internal[parent] = kept
    result = TreeAutomaton(automaton.num_qubits, automaton.roots, internal, automaton.leaves)
    return result.remove_useless()
