"""Pluggable TA kernel backends for the hot-path operations.

The three operations every gate application funnels through —
``binary_operation`` (the Algorithm 9 product construction), ``remove_useless``
and the ``reduce`` sweeps — are dispatched through a process-wide *active
backend* selected here.  Two backends ship today:

* ``reference`` — the pure-Python implementation extracted verbatim from the
  PR 3 kernel (:mod:`repro.ta.kernel.reference`); always available and the
  definition of correct output.
* ``numpy`` — a vectorized implementation over the compact-form integer
  arrays (:mod:`repro.ta.kernel.vectorized`); feature-detected exactly like
  the optional FastAPI app builder: when numpy is not importable the backend
  simply is not available and selection falls back to ``reference``.

**Conformance contract.**  Every backend must produce output *bit-identical*
to the reference backend: the same state ids assigned in the same order, the
same transition-tuple order, hence identical ``structure_key()`` fingerprints.
This is what lets the reduce cache, the gate memo and the content-addressed
store stay backend-agnostic, and it is enforced by
``tests/test_kernel_conformance.py`` and the ``kernel-parity`` fuzz oracle.

**Selection.**  The default is resolved lazily on first use: the
``AUTOQ_REPRO_KERNEL`` environment variable (``reference`` / ``numpy`` /
``auto``) wins when set and satisfiable, otherwise ``numpy`` when importable,
otherwise ``reference``.  An env request that cannot be satisfied degrades to
auto-detection with a warning — backend selection is an optimisation and must
never break a run.  Programmatic selection (:func:`set_active_backend`,
:func:`use_backend`, ``SessionConfig.kernel_backend``) raises instead, because
an explicit API request that silently did something else would be a lie.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "KernelBackend",
    "active_backend",
    "active_backend_name",
    "available_backends",
    "backend_names",
    "get_backend",
    "set_active_backend",
    "use_backend",
]

#: environment variable naming the default backend ("reference"/"numpy"/"auto")
ENV_VAR = "AUTOQ_REPRO_KERNEL"


class KernelBackend:
    """Interface every kernel backend implements.

    All four operations take and return ordinary :class:`~repro.ta.automaton.
    TreeAutomaton` instances; ``reduce_layered``/``reduce_fixpoint`` are called
    by :meth:`TreeAutomaton.reduce` *after* the reduce-cache probe and the
    ``remove_useless`` pass, on a useless-free automaton.  Implementations
    must preserve the reference backend's identity fast paths (returning the
    input object itself when nothing changes) — callers test ``is``.
    """

    name: str = "?"

    def binary_operation(self, left, right, subtract: bool = False):
        raise NotImplementedError

    def remove_useless(self, automaton):
        raise NotImplementedError

    def reduce_layered(self, automaton):
        raise NotImplementedError

    def reduce_fixpoint(self, automaton):
        raise NotImplementedError


def _load_reference() -> KernelBackend:
    from .reference import ReferenceBackend

    return ReferenceBackend()


def _load_numpy() -> KernelBackend:
    # raises ImportError when numpy is absent -> "not available", by design
    from .vectorized import VectorizedBackend

    return VectorizedBackend()


#: backend name -> zero-argument factory; factories may raise ImportError,
#: which means "not available in this environment" (feature detection)
_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "reference": _load_reference,
    "numpy": _load_numpy,
}
_INSTANCES: Dict[str, KernelBackend] = {}
_ACTIVE: Optional[KernelBackend] = None


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name, available in this environment or not."""
    return tuple(_FACTORIES)


def get_backend(name: str) -> KernelBackend:
    """The (cached) backend instance for ``name``.

    Raises :class:`ValueError` for an unknown name and :class:`ImportError`
    when the backend exists but its dependency is missing.
    """
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; expected one of {backend_names()}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _FACTORIES[name]()
        _INSTANCES[name] = instance
    return instance


def available_backends() -> Tuple[str, ...]:
    """The backends usable in this environment (``reference`` always is)."""
    names = []
    for name in _FACTORIES:
        try:
            get_backend(name)
        except ImportError:
            continue
        names.append(name)
    return tuple(names)


def _detect_default() -> KernelBackend:
    """Resolve the default backend: env var first, then feature detection."""
    requested = (os.environ.get(ENV_VAR) or "").strip().lower()
    if requested and requested != "auto":
        if requested not in _FACTORIES:
            warnings.warn(
                f"{ENV_VAR}={requested!r} names no kernel backend "
                f"(known: {backend_names()}); auto-detecting instead",
                RuntimeWarning,
                stacklevel=3,
            )
        else:
            try:
                return get_backend(requested)
            except ImportError as error:
                warnings.warn(
                    f"{ENV_VAR}={requested!r} is not available ({error}); "
                    "auto-detecting instead",
                    RuntimeWarning,
                    stacklevel=3,
                )
    try:
        return get_backend("numpy")
    except ImportError:
        return get_backend("reference")


def active_backend() -> KernelBackend:
    """The backend all kernel operations currently dispatch to (lazy default)."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _detect_default()
    return _ACTIVE


def active_backend_name() -> str:
    """Name of the active backend (resolving the default if needed)."""
    return active_backend().name


def set_active_backend(name: Optional[str]) -> str:
    """Select the process-wide backend; returns the *previous* active name.

    ``None`` or ``"auto"`` re-runs the default detection (env var included).
    Unknown names raise :class:`ValueError`; known-but-unavailable ones raise
    :class:`ImportError` — explicit selection never silently degrades.
    """
    global _ACTIVE
    previous = active_backend().name
    if name is None or name == "auto":
        _ACTIVE = _detect_default()
    else:
        _ACTIVE = get_backend(name)
    return previous


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[KernelBackend]:
    """Context manager: run the block under ``name``, then restore the previous
    selection.  The switch is process-global (it is *the* active backend), so
    nesting is fine but concurrent threads share it."""
    previous = set_active_backend(name)
    try:
        yield active_backend()
    finally:
        set_active_backend(previous)
