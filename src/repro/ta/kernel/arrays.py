"""Flat integer-array export of a :class:`~repro.ta.automaton.CompactForm`.

The compact form already renumbers states to contiguous ids; this module goes
one step further and flattens the per-state transition tuples into parallel
integer columns — the "struct of arrays" layout the vectorized backend loads
straight into numpy buffers.  The module itself is dependency-free (plain
tuples of python ints) so the export and its round-trip guarantee are testable
in environments without numpy.

Round-trip contract: ``to_automaton()`` rebuilds a :class:`TreeAutomaton`
whose compact form has the *same* ``key`` as the source form — states,
per-state transition order, shared symbol table and leaf amplitudes all
survive the trip unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...algebraic import AlgebraicNumber
from ..automaton import CompactForm, Symbol, TreeAutomaton, make_symbol

__all__ = ["CompactArrays", "compact_arrays"]


class CompactArrays:
    """Parallel-column view of a compact form.

    * ``parent``/``symbol_id``/``left``/``right`` — one entry per internal
      transition, rows sorted by compact parent id and, within a parent, in
      the compact form's tuple order (so the row order is canonical).
    * ``symbols`` — the distinct interned symbols, in first-appearance order;
      ``symbol_id`` indexes into it.
    * ``row_start`` — CSR offsets: the rows of compact state ``s`` are
      ``row_start[s]:row_start[s + 1]`` (leaf and transition-free states get
      empty slices), making per-state slicing O(1) without searching.
    * ``leaf_state``/``leaf_amplitude_id`` — one entry per leaf transition in
      ascending state order; ``amplitudes`` holds the distinct
      :class:`AlgebraicNumber` values in first-appearance order.
    """

    __slots__ = (
        "num_qubits",
        "num_states",
        "roots",
        "symbols",
        "parent",
        "symbol_id",
        "left",
        "right",
        "row_start",
        "leaf_state",
        "leaf_amplitude_id",
        "amplitudes",
    )

    def __init__(
        self,
        num_qubits: int,
        num_states: int,
        roots: Tuple[int, ...],
        symbols: Tuple[Symbol, ...],
        parent: Tuple[int, ...],
        symbol_id: Tuple[int, ...],
        left: Tuple[int, ...],
        right: Tuple[int, ...],
        row_start: Tuple[int, ...],
        leaf_state: Tuple[int, ...],
        leaf_amplitude_id: Tuple[int, ...],
        amplitudes: Tuple[AlgebraicNumber, ...],
    ):
        self.num_qubits = num_qubits
        self.num_states = num_states
        self.roots = roots
        self.symbols = symbols
        self.parent = parent
        self.symbol_id = symbol_id
        self.left = left
        self.right = right
        self.row_start = row_start
        self.leaf_state = leaf_state
        self.leaf_amplitude_id = leaf_amplitude_id
        self.amplitudes = amplitudes

    @property
    def num_rows(self) -> int:
        """Number of internal-transition rows."""
        return len(self.parent)

    @classmethod
    def from_compact(cls, compact: CompactForm) -> "CompactArrays":
        """Flatten ``compact`` into parallel columns (canonical row order)."""
        symbol_ids: Dict[Symbol, int] = {}
        symbols: List[Symbol] = []
        parent: List[int] = []
        symbol_id: List[int] = []
        left: List[int] = []
        right: List[int] = []
        row_start: List[int] = [0] * (compact.num_states + 1)
        for state, transitions in enumerate(compact.internal):
            row_start[state] = len(parent)
            for symbol, l_child, r_child in transitions:
                identifier = symbol_ids.get(symbol)
                if identifier is None:
                    identifier = len(symbols)
                    symbol_ids[symbol] = identifier
                    symbols.append(symbol)
                parent.append(state)
                symbol_id.append(identifier)
                left.append(l_child)
                right.append(r_child)
        row_start[compact.num_states] = len(parent)
        amplitude_ids: Dict[AlgebraicNumber, int] = {}
        amplitudes: List[AlgebraicNumber] = []
        leaf_state: List[int] = []
        leaf_amplitude_id: List[int] = []
        for state in sorted(compact.leaves):
            amplitude = compact.leaves[state]
            identifier = amplitude_ids.get(amplitude)
            if identifier is None:
                identifier = len(amplitudes)
                amplitude_ids[amplitude] = identifier
                amplitudes.append(amplitude)
            leaf_state.append(state)
            leaf_amplitude_id.append(identifier)
        return cls(
            num_qubits=compact.num_qubits,
            num_states=compact.num_states,
            roots=compact.roots,
            symbols=tuple(symbols),
            parent=tuple(parent),
            symbol_id=tuple(symbol_id),
            left=tuple(left),
            right=tuple(right),
            row_start=tuple(row_start),
            leaf_state=tuple(leaf_state),
            leaf_amplitude_id=tuple(leaf_amplitude_id),
            amplitudes=tuple(amplitudes),
        )

    def to_automaton(self) -> TreeAutomaton:
        """Rebuild a :class:`TreeAutomaton` over the compact state ids.

        The result's own compact form has the same ``key`` as the form these
        arrays were exported from (states are already contiguous, so the
        renumbering is the identity and row order is preserved).
        """
        internal: Dict[int, List[Tuple[Symbol, int, int]]] = {}
        symbols = [make_symbol(qubit, tags) for qubit, tags in self.symbols]
        for state in range(self.num_states):
            start, stop = self.row_start[state], self.row_start[state + 1]
            if start == stop:
                continue
            internal[state] = [
                (symbols[self.symbol_id[row]], self.left[row], self.right[row])
                for row in range(start, stop)
            ]
        leaves = {
            state: self.amplitudes[identifier]
            for state, identifier in zip(self.leaf_state, self.leaf_amplitude_id)
        }
        return TreeAutomaton(self.num_qubits, self.roots, internal, leaves)


def compact_arrays(automaton: TreeAutomaton) -> CompactArrays:
    """Export ``automaton`` (via its cached compact form) to parallel columns."""
    return CompactArrays.from_compact(automaton.compact())
