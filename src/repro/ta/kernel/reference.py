"""The pure-Python reference kernel — the extracted PR 3 hot-path code.

Every function here is the *definitional* implementation of its operation:
other backends (numpy today, a native extension tomorrow) must reproduce its
output **bit for bit** — same state ids assigned in the same order, same
transition-tuple order, same ``structure_key()`` — so that the reduce cache,
the gate memo and the on-disk store all key identically no matter which
backend computed an automaton.  The conformance suite
(``tests/test_kernel_conformance.py``) and the ``kernel-parity`` fuzz oracle
enforce exactly that contract.

The bodies were moved verbatim from ``TreeAutomaton.remove_useless`` /
``TreeAutomaton._reduce_layered`` / ``TreeAutomaton._reduce_fixpoint`` and
``repro.core.composition.binary_operation``; the methods now dispatch through
:func:`repro.ta.kernel.active_backend`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...algebraic import AlgebraicNumber
from ..automaton import InternalTransition, TreeAutomaton, intern_transition
from . import KernelBackend

__all__ = [
    "ReferenceBackend",
    "binary_operation",
    "reduce_fixpoint",
    "reduce_layered",
    "remove_useless",
]


def remove_useless(automaton: TreeAutomaton) -> TreeAutomaton:
    """Drop states that are not both reachable (top-down) and productive (bottom-up).

    Productivity is computed with a counting worklist (one pass over the
    transitions plus one event per state that turns productive), not a
    repeated fixpoint sweep, so the common no-op case costs O(transitions).
    Returns ``automaton`` itself (identity) when every state is useful.
    """
    internal = automaton.internal
    # productive = can generate at least one subtree
    productive: Set[int] = set(automaton.leaves)
    # per-transition countdown of unproductive children; child -> cells to
    # decrement when it turns productive
    trigger: Dict[int, List[List[int]]] = {}
    queue: List[int] = []
    for parent, transitions in internal.items():
        for _symbol, left, right in transitions:
            if parent in productive:
                break
            waiting = [child for child in {left, right} if child not in productive]
            if any(child not in internal for child in waiting):
                continue  # a child with no rules at all can never produce
            if not waiting:
                productive.add(parent)
                queue.append(parent)
                break
            cell = [parent, len(waiting)]
            for child in waiting:
                trigger.setdefault(child, []).append(cell)
    while queue:
        state = queue.pop()
        for cell in trigger.get(state, ()):
            cell[1] -= 1
            if cell[1] == 0 and cell[0] not in productive:
                productive.add(cell[0])
                queue.append(cell[0])
    # reachable = reachable from a root through productive transitions
    reachable: Set[int] = set()
    stack = [root for root in automaton.roots if root in productive]
    while stack:
        state = stack.pop()
        if state in reachable:
            continue
        reachable.add(state)
        for _symbol, left, right in internal.get(state, ()):
            if left in productive and right in productive:
                if left not in reachable:
                    stack.append(left)
                if right not in reachable:
                    stack.append(right)
    keep = reachable
    if len(keep) == len(automaton.states):
        # every state is useful, so no transition can be dropped either
        return automaton
    new_internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    for parent, transitions in internal.items():
        if parent not in keep:
            continue
        kept = tuple(
            entry for entry in transitions if entry[1] in keep and entry[2] in keep
        )
        if kept:
            new_internal[parent] = transitions if len(kept) == len(transitions) else kept
    leaves = {state: amplitude for state, amplitude in automaton.leaves.items() if state in keep}
    roots = automaton.roots if keep >= automaton.roots else frozenset(
        root for root in automaton.roots if root in keep
    )
    return TreeAutomaton._make(automaton.num_qubits, roots, new_internal, leaves)


def reduce_layered(automaton: TreeAutomaton) -> TreeAutomaton:
    """Single bottom-up pass over the depth layers (``automaton`` useless-free).

    In a layered automaton every transition points one level down, so a
    state's final signature only depends on strictly deeper states; one
    sweep from the leaf layer to the roots reaches the congruence fixpoint
    without re-hashing any subtree twice.  The caller guarantees
    ``automaton._state_depths()`` is not ``None``.
    """
    depths = automaton._state_depths()
    internal = automaton.internal
    leaves = automaton.leaves
    by_depth: Dict[int, List[int]] = {}
    for state, depth in depths.items():
        by_depth.setdefault(depth, []).append(state)

    representative: Dict[int, int] = {}
    merged_any = False
    for depth in sorted(by_depth, reverse=True):
        table: Dict[object, int] = {}
        for state in sorted(by_depth[depth]):
            if state in leaves:
                signature: object = leaves[state]
            else:
                signature = frozenset(
                    intern_transition(symbol, representative[left], representative[right])
                    for symbol, left, right in internal.get(state, ())
                )
            previous = table.get(signature)
            if previous is None:
                table[signature] = state
                representative[state] = state
            else:
                representative[state] = previous
                merged_any = True
    if not merged_any:
        return automaton
    new_internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    for parent, transitions in internal.items():
        if representative[parent] != parent:
            continue  # merged into an earlier state with the same signature
        new_internal[parent] = tuple(dict.fromkeys(
            intern_transition(symbol, representative[left], representative[right])
            for symbol, left, right in transitions
        ))
    new_leaves = {
        state: amplitude for state, amplitude in leaves.items()
        if representative[state] == state
    }
    new_roots = frozenset(representative[root] for root in automaton.roots)
    return TreeAutomaton._make(automaton.num_qubits, new_roots, new_internal, new_leaves)


def reduce_fixpoint(automaton: TreeAutomaton) -> TreeAutomaton:
    """Depth-agnostic fallback for non-layered automata (``automaton`` useless-free)."""
    representative: Dict[int, int] = {state: state for state in automaton.states}

    def resolve(state: int) -> int:
        while representative[state] != state:
            representative[state] = representative[representative[state]]
            state = representative[state]
        return state

    changed = True
    merged_any = False
    internal = automaton.internal
    leaves = automaton.leaves
    ordered_states = sorted(automaton.states)
    while changed:
        changed = False
        signature_to_state: Dict[object, int] = {}
        for state in ordered_states:
            state = resolve(state)
            if state in leaves:
                signature = ("leaf", leaves[state])
            else:
                signature = (
                    "internal",
                    frozenset(
                        intern_transition(symbol, resolve(left), resolve(right))
                        for symbol, left, right in internal.get(state, ())
                    ),
                )
            previous = signature_to_state.get(signature)
            if previous is None:
                signature_to_state[signature] = state
            elif previous != state:
                representative[state] = previous
                changed = True
                merged_any = True
    if not merged_any:
        # nothing merged: the useless-state-free automaton is already reduced,
        # so reuse it (and its interned transition storage) as-is
        return automaton
    new_internal: Dict[int, Dict[InternalTransition, None]] = {}
    for parent, transitions in internal.items():
        rep_parent = resolve(parent)
        bucket = new_internal.setdefault(rep_parent, {})
        for symbol, left, right in transitions:
            bucket[intern_transition(symbol, resolve(left), resolve(right))] = None
    new_leaves = {resolve(state): amplitude for state, amplitude in leaves.items()}
    new_roots = {resolve(root) for root in automaton.roots}
    reduced = TreeAutomaton(automaton.num_qubits, new_roots, new_internal, new_leaves)
    return reduced.remove_useless()


def binary_operation(
    left: TreeAutomaton, right: TreeAutomaton, subtract: bool = False
) -> TreeAutomaton:
    """The binary operation ``Bin(A1, A2, ±)`` (Algorithm 9).

    A product construction over matching (tagged) symbols; leaf amplitudes are
    added (or subtracted).  Only pairs reachable from the root pairs are built.
    """
    if left.num_qubits != right.num_qubits:
        raise ValueError("operands must have the same number of qubits")
    # the (state, symbol) -> child-pairs index is cached on the right operand,
    # so repeated products over a shared automaton — the normal case thanks to
    # the reduce cache — skip the re-indexing pass entirely
    left_internal = left.internal
    left_leaves = left.leaves
    right_leaves = right.leaves
    right_index = right.pair_index()

    pair_ids: Dict[Tuple[int, int], int] = {}
    internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    leaves: Dict[int, AlgebraicNumber] = {}

    def pair_id(pair: Tuple[int, int]) -> int:
        identifier = pair_ids.get(pair)
        if identifier is None:
            identifier = len(pair_ids)
            pair_ids[pair] = identifier
        return identifier

    worklist: List[Tuple[int, int]] = [
        (left_root, right_root)
        for left_root in left.roots
        for right_root in right.roots
    ]
    roots = frozenset(pair_id(pair) for pair in worklist)
    dead_pairs = False

    while worklist:
        pair = worklist.pop()
        left_state, right_state = pair
        current = pair_ids[pair]
        left_amp = left_leaves.get(left_state)
        right_amp = right_leaves.get(right_state)
        if left_amp is not None and right_amp is not None:
            leaves[current] = left_amp - right_amp if subtract else left_amp + right_amp
            continue
        transitions: Dict[InternalTransition, None] = {}
        if left_amp is None and right_amp is None:
            for symbol, l_child, r_child in left_internal.get(left_state, ()):
                for rl_child, rr_child in right_index.get((right_state, symbol), ()):
                    left_pair = (l_child, rl_child)
                    right_pair = (r_child, rr_child)
                    if left_pair not in pair_ids:
                        worklist.append(left_pair)
                    left_id = pair_id(left_pair)
                    if right_pair not in pair_ids:
                        worklist.append(right_pair)
                    transitions[
                        intern_transition(symbol, left_id, pair_id(right_pair))
                    ] = None
        if transitions:
            internal[current] = tuple(transitions)
        else:
            # leaf/internal mismatch or no matching symbol: the pair is a dead
            # end and everything only it supports must be pruned afterwards
            dead_pairs = True
    result = TreeAutomaton._make(left.num_qubits, roots, internal, leaves)
    # the memoised worklist only builds root-reachable pairs, so unless a dead
    # pair appeared the product is already fully useful — no post-hoc pruning
    return result.remove_useless() if dead_pairs else result


class ReferenceBackend(KernelBackend):
    """The pure-Python kernel: always available, defines the output contract."""

    name = "reference"

    def binary_operation(
        self, left: TreeAutomaton, right: TreeAutomaton, subtract: bool = False
    ) -> TreeAutomaton:
        return binary_operation(left, right, subtract)

    def remove_useless(self, automaton: TreeAutomaton) -> TreeAutomaton:
        return remove_useless(automaton)

    def reduce_layered(self, automaton: TreeAutomaton) -> TreeAutomaton:
        return reduce_layered(automaton)

    def reduce_fixpoint(self, automaton: TreeAutomaton) -> TreeAutomaton:
        return reduce_fixpoint(automaton)
