"""numpy-vectorized kernel backend over compact-form integer arrays.

The three hot-path operations are reformulated as array programs over a
cached struct-of-arrays view of each automaton (:class:`_ArrayForm`, the
in-memory twin of :mod:`~repro.ta.kernel.arrays`):

* ``binary_operation`` — the Algorithm 9 product.  The per-pair dict probes of
  ``pair_index()`` become sorted-key joins: left transitions are CSR-grouped
  by parent, right transitions are sorted by a ``state * (S + 1) + symbol``
  key, and each BFS round over the frontier of new pair codes expands its
  matching rows with ``np.repeat``/``cumsum`` ragged indexing plus two
  ``np.searchsorted`` probes.  Discovery is vectorized; the *id assignment*
  is then replayed as a pure-integer LIFO walk over the precomputed row table
  so the output is bit-identical to the reference worklist (same state ids in
  the same order, same transition-tuple order, same ``structure_key()``).
* ``remove_useless`` — productivity as a bottom-up boolean fixpoint (one
  vectorized sweep per automaton level) and reachability as a breadth-first
  boolean closure, replacing the counting worklist.
* ``reduce_layered`` — per-depth signature tables built by lexicographic row
  sorting: transition rows are sorted by ``(parent, symbol, left, right)``,
  deduplicated, given dense row ids via a sorted unique join, and parents are
  grouped by padding their row-id sequences into a matrix and running
  ``np.unique(axis=0)`` — replacing per-state frozenset interning.

The array form is cached on the automaton (``TreeAutomaton._arrays``) and the
product attaches it to its output, so the per-gate pipeline
``binary_operation -> remove_useless -> reduce`` flattens the transition dict
at most once.

Small inputs fall back to the reference backend (per-operation
``DEFAULT_THRESHOLDS``): below a few hundred transitions the numpy call
overhead dominates, and the outputs are identical either way.  Conformance
tests construct ``VectorizedBackend(min_transitions=0)`` to force the vector
paths on arbitrarily small inputs.

Importing this module requires numpy; the ImportError is how
:func:`repro.ta.kernel.get_backend` feature-detects availability.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...algebraic import AlgebraicNumber
from ..automaton import (
    _MAX_INTERNED,
    _TRANSITION_TABLE,
    InternalTransition,
    Symbol,
    TreeAutomaton,
    intern_transition,
)
from . import KernelBackend
from . import reference as _reference

__all__ = ["DEFAULT_THRESHOLDS", "VectorizedBackend"]

#: per-operation size floors (total input transitions) below which the numpy
#: call overhead dominates and the backend delegates to the reference code;
#: the outputs are identical either way, only the speed differs.  The reduce
#: sweep pays per-*layer* numpy overhead, so its floor is the highest.
DEFAULT_THRESHOLDS = {
    "binary_operation": 256,
    "remove_useless": 256,
    "reduce_layered": 1024,
}

#: above this many candidate pair codes (|left states| x |right states|) the
#: product's seen-bitmap would be too large; fall back to sorted membership
_MAX_BITMAP = 1 << 27

#: widest padded signature matrix ``reduce_layered`` will build; layers where
#: some parent keeps more distinct rows use a per-parent hash table instead
_MAX_SIGNATURE_WIDTH = 64


class _ArrayForm:
    """Struct-of-arrays view of an automaton's internal transitions.

    ``states`` lists all states in ascending order; the parallel ``parent`` /
    ``sym`` / ``left`` / ``right`` columns hold one row per transition over
    *positions* into ``states``, in canonical order: ascending parent
    position, within a parent the transition-tuple order.  ``symbols`` /
    ``symbol_ids`` are the form's own symbol table (ids are meaningful only
    within this form).  ``identity`` marks forms whose states are already
    ``0..n-1`` so position == state id and no index dict is needed.
    """

    __slots__ = (
        "states",
        "identity",
        "parent",
        "sym",
        "left",
        "right",
        "symbols",
        "symbol_ids",
        "_index",
        "_rowptr",
        "_join",
    )

    def __init__(self, states, identity, parent, sym, left, right, symbols, symbol_ids):
        self.states: List[int] = states
        self.identity: bool = identity
        self.parent: np.ndarray = parent
        self.sym: np.ndarray = sym
        self.left: np.ndarray = left
        self.right: np.ndarray = right
        self.symbols: List[Symbol] = symbols
        self.symbol_ids: Dict[Symbol, int] = symbol_ids
        self._index: Optional[Dict[int, int]] = None
        self._rowptr: Optional[np.ndarray] = None
        self._join: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def index_map(self) -> Optional[Dict[int, int]]:
        """``state id -> position`` dict, or ``None`` for identity forms."""
        if self.identity:
            return None
        if self._index is None:
            self._index = {state: i for i, state in enumerate(self.states)}
        return self._index

    def position(self, state: int) -> int:
        index = self.index_map()
        return state if index is None else index[state]

    def rowptr(self) -> np.ndarray:
        """CSR offsets: rows of the state at position ``p`` are
        ``rowptr[p]:rowptr[p + 1]`` (canonical order makes them contiguous)."""
        if self._rowptr is None:
            counts = np.bincount(self.parent, minlength=len(self.states))
            self._rowptr = np.concatenate(([0], np.cumsum(counts)))
        return self._rowptr

    def join_table(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rows sorted by the ``parent * (S + 1) + symbol`` join key.

        Returns ``(key_sorted, left_sorted, right_sorted)``; the stable sort
        preserves the per-(state, symbol) append order that ``pair_index()``
        exposes, which the bit-identical product replay depends on.
        """
        if self._join is None:
            key = self.parent * (len(self.symbols) + 1) + self.sym
            order = np.argsort(key, kind="stable")
            self._join = (key[order], self.left[order], self.right[order])
        return self._join


def _flatten_rows(
    internal: Dict[int, Tuple[InternalTransition, ...]],
    index: Optional[Dict[int, int]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[Symbol], Dict[Symbol, int]]:
    """Flatten a transition dict into parallel columns (dict iteration order)."""
    rows: List[InternalTransition] = []
    extend = rows.extend
    parent_runs: List[int] = []
    for parent, transitions in internal.items():
        extend(transitions)
        parent_runs.append(parent if index is None else index[parent])
    counts = [len(transitions) for transitions in internal.values()]
    symbol_ids: Dict[Symbol, int] = {}
    symbols: List[Symbol] = []
    for symbol in {row[0] for row in rows}:
        symbol_ids[symbol] = len(symbols)
        symbols.append(symbol)
    if parent_runs:
        parents = np.repeat(
            np.asarray(parent_runs, dtype=np.int64),
            np.asarray(counts, dtype=np.int64),
        )
    else:
        parents = np.empty(0, dtype=np.int64)
    if index is None:
        lefts = np.asarray([row[1] for row in rows], dtype=np.int64)
        rights = np.asarray([row[2] for row in rows], dtype=np.int64)
    else:
        lefts = np.asarray([index[row[1]] for row in rows], dtype=np.int64)
        rights = np.asarray([index[row[2]] for row in rows], dtype=np.int64)
    syms = np.asarray([symbol_ids[row[0]] for row in rows], dtype=np.int64)
    return parents, syms, lefts, rights, symbols, symbol_ids


def _array_form(automaton: TreeAutomaton) -> _ArrayForm:
    """The automaton's cached :class:`_ArrayForm` (built on first use)."""
    form = automaton._arrays
    if form is not None:
        return form
    states = sorted(automaton.states)
    identity = bool(states) and states[-1] == len(states) - 1 or not states
    index = None if identity else {state: i for i, state in enumerate(states)}
    parent, sym, left, right, symbols, symbol_ids = _flatten_rows(
        automaton.internal, index
    )
    order = np.argsort(parent, kind="stable")  # canonical row order
    form = _ArrayForm(
        states,
        identity,
        parent[order],
        sym[order],
        left[order],
        right[order],
        symbols,
        symbol_ids,
    )
    automaton._arrays = form
    return form


def _vector_binary_operation(
    left: TreeAutomaton, right: TreeAutomaton, subtract: bool
) -> TreeAutomaton:
    left_form = _array_form(left)
    right_form = _array_form(right)
    num_left = len(left_form.states)
    num_right = len(right_form.states)
    left_rowptr = left_form.rowptr()
    left_sym = left_form.sym
    left_lchild = left_form.left
    left_rchild = left_form.right
    right_key_sorted, right_lchild, right_rchild = right_form.join_table()
    # translate left symbol ids into the right form's table; misses map to the
    # out-of-range id S (never present in the right join keys)
    miss = len(right_form.symbols)
    translate = np.asarray(
        [right_form.symbol_ids.get(symbol, miss) for symbol in left_form.symbols]
        or [miss],
        dtype=np.int64,
    )
    key_width = miss + 1

    # ---- vectorized breadth-first discovery over pair codes l * num_right + r
    root_codes: List[int] = [
        left_form.position(left_root) * num_right + right_form.position(right_root)
        for left_root in left.roots
        for right_root in right.roots
    ]
    frontier = np.unique(np.asarray(root_codes, dtype=np.int64))
    code_space = num_left * num_right
    seen: Optional[np.ndarray] = None
    if code_space <= _MAX_BITMAP:
        # membership as one boolean gather instead of per-round sorted set
        # algebra (np.setdiff1d/union1d re-sort the whole known set each round)
        seen = np.zeros(code_space, dtype=bool)
        seen[frontier] = True
    known = frontier
    round_pair: List[np.ndarray] = []
    round_sym: List[np.ndarray] = []
    round_lchild: List[np.ndarray] = []
    round_rchild: List[np.ndarray] = []
    while frontier.size:
        left_ids = frontier // num_right
        right_ids = frontier % num_right
        # expand each frontier pair to its left state's transition rows
        counts = left_rowptr[left_ids + 1] - left_rowptr[left_ids]
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.concatenate(([0], np.cumsum(counts)))
        positions = np.arange(total) - np.repeat(offsets[:-1], counts)
        trow = np.repeat(left_rowptr[left_ids], counts) + positions
        tsym = left_sym[trow]
        # join against the right rows sharing (right_state, symbol)
        probe = np.repeat(right_ids, counts) * key_width + translate[tsym]
        lo = np.searchsorted(right_key_sorted, probe, side="left")
        hi = np.searchsorted(right_key_sorted, probe, side="right")
        group_counts = hi - lo
        total_rows = int(group_counts.sum())
        if total_rows == 0:
            break
        group_offsets = np.concatenate(([0], np.cumsum(group_counts)))
        group_positions = np.arange(total_rows) - np.repeat(
            group_offsets[:-1], group_counts
        )
        urow = np.repeat(lo, group_counts) + group_positions
        pair_codes = np.repeat(np.repeat(frontier, counts), group_counts)
        row_sym = np.repeat(tsym, group_counts)
        row_lchild = (
            np.repeat(left_lchild[trow], group_counts) * num_right
            + right_lchild[urow]
        )
        row_rchild = (
            np.repeat(left_rchild[trow], group_counts) * num_right
            + right_rchild[urow]
        )
        round_pair.append(pair_codes)
        round_sym.append(row_sym)
        round_lchild.append(row_lchild)
        round_rchild.append(row_rchild)
        children = np.concatenate((row_lchild, row_rchild))
        if seen is not None:
            fresh = np.unique(children[~seen[children]])
            seen[fresh] = True
        else:
            candidates = np.unique(children)
            position = np.searchsorted(known, candidates)
            position[position == known.size] = 0
            fresh = candidates[known[position] != candidates]
            known = np.sort(np.concatenate((known, fresh)))
        frontier = fresh
    if seen is not None:
        known = np.flatnonzero(seen)

    # ---- canonical row table: rows grouped by pair code, within-pair order
    # preserved (each pair's rows come from exactly one round, in the
    # reference's left-transition-major, right-match-minor order)
    num_pairs = known.size
    if round_pair:
        all_pair = np.concatenate(round_pair)
        all_sym = np.concatenate(round_sym)
        all_lchild = np.concatenate(round_lchild)
        all_rchild = np.concatenate(round_rchild)
        order = np.argsort(all_pair, kind="stable")
        all_sym = all_sym[order]
        # pairs and children as dense indices into the sorted ``known`` codes
        dense_pair = np.searchsorted(known, all_pair[order])
        dense_lchild = np.searchsorted(known, all_lchild[order])
        dense_rchild = np.searchsorted(known, all_rchild[order])
        rowptr = np.concatenate(
            ([0], np.cumsum(np.bincount(dense_pair, minlength=num_pairs)))
        ).tolist()
        row_sym_list = all_sym.tolist()
        row_lchild_list = dense_lchild.tolist()
        row_rchild_list = dense_rchild.tolist()
    else:
        dense_pair = dense_lchild = dense_rchild = all_sym = np.empty(0, np.int64)
        rowptr = [0] * (num_pairs + 1)
        row_sym_list = []
        row_lchild_list = []
        row_rchild_list = []

    # ---- pure-integer LIFO replay of the reference id assignment
    known_codes: List[int] = known.tolist()
    left_leaf: List[Optional[AlgebraicNumber]] = [None] * max(num_left, 1)
    left_index = left_form.index_map()
    if left_index is None:
        for state, amplitude in left.leaves.items():
            left_leaf[state] = amplitude
    else:
        for state, amplitude in left.leaves.items():
            left_leaf[left_index[state]] = amplitude
    right_leaf: List[Optional[AlgebraicNumber]] = [None] * max(num_right, 1)
    right_index = right_form.index_map()
    if right_index is None:
        for state, amplitude in right.leaves.items():
            right_leaf[state] = amplitude
    else:
        for state, amplitude in right.leaves.items():
            right_leaf[right_index[state]] = amplitude
    root_dense = (
        np.searchsorted(known, np.asarray(root_codes, dtype=np.int64)).tolist()
        if root_codes
        else []
    )
    left_symbols = left_form.symbols
    # one tuple per row: slicing this list per pair and unpacking is faster
    # than three indexed list accesses inside the replay loop
    row_table = list(
        zip(
            map(left_symbols.__getitem__, row_sym_list),
            row_lchild_list,
            row_rchild_list,
        )
    )
    intern_table = _TRANSITION_TABLE
    intern_get = intern_table.get
    intern_setdefault = intern_table.setdefault

    ids = [-1] * num_pairs
    next_id = 0
    worklist: List[int] = []
    root_ids: List[int] = []
    for dense in root_dense:
        if ids[dense] < 0:
            ids[dense] = next_id
            next_id += 1
            worklist.append(dense)
        root_ids.append(ids[dense])
    roots = frozenset(root_ids)
    internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    leaves: Dict[int, AlgebraicNumber] = {}
    dead_pairs = False
    while worklist:
        dense = worklist.pop()
        current = ids[dense]
        code = known_codes[dense]
        left_amp = left_leaf[code // num_right]
        right_amp = right_leaf[code % num_right]
        if left_amp is not None and right_amp is not None:
            leaves[current] = (
                left_amp - right_amp if subtract else left_amp + right_amp
            )
            continue
        transitions: Dict[InternalTransition, None] = {}
        if left_amp is None and right_amp is None:
            for symbol, lchild, rchild in row_table[rowptr[dense] : rowptr[dense + 1]]:
                left_id = ids[lchild]
                if left_id < 0:
                    left_id = ids[lchild] = next_id
                    next_id += 1
                    worklist.append(lchild)
                right_id = ids[rchild]
                if right_id < 0:
                    right_id = ids[rchild] = next_id
                    next_id += 1
                    worklist.append(rchild)
                # inlined intern_transition (the per-row call overhead adds up)
                entry = (symbol, left_id, right_id)
                if len(intern_table) >= _MAX_INTERNED:
                    transitions[intern_get(entry, entry)] = None
                else:
                    transitions[intern_setdefault(entry, entry)] = None
        if transitions:
            internal[current] = tuple(transitions)
        else:
            dead_pairs = True
    result = TreeAutomaton._make(left.num_qubits, roots, internal, leaves)
    if not dead_pairs and dense_pair.size:
        # attach the product's array form (states are 0..P-1, so positions are
        # the ids themselves): the downstream remove_useless/reduce of the
        # same gate application then skips re-flattening the dict entirely
        ids_arr = np.asarray(ids, dtype=np.int64)
        out_parent = ids_arr[dense_pair]
        out_order = np.argsort(out_parent, kind="stable")
        result._arrays = _ArrayForm(
            list(range(num_pairs)),
            True,
            out_parent[out_order],
            all_sym[out_order],
            ids_arr[dense_lchild][out_order],
            ids_arr[dense_rchild][out_order],
            left_symbols,
            left_form.symbol_ids,
        )
    return result.remove_useless() if dead_pairs else result


def _vector_remove_useless(automaton: TreeAutomaton) -> TreeAutomaton:
    form = _array_form(automaton)
    states = form.states
    num_states = len(states)
    p_arr, l_arr, r_arr = form.parent, form.left, form.right
    index = form.index_map()

    # bottom-up productivity: one vectorized sweep per automaton level
    productive = np.zeros(num_states, dtype=bool)
    if automaton.leaves:
        if index is None:
            productive[list(automaton.leaves)] = True
        else:
            productive[[index[state] for state in automaton.leaves]] = True
    while True:
        enabled = productive[l_arr] & productive[r_arr] & ~productive[p_arr]
        if not enabled.any():
            break
        productive[p_arr[enabled]] = True

    # top-down reachability through productive transitions
    usable = productive[l_arr] & productive[r_arr]
    up, ul, ur = p_arr[usable], l_arr[usable], r_arr[usable]
    root_positions = [
        position
        for position in (
            (root if index is None else index[root]) for root in automaton.roots
        )
        if productive[position]
    ]
    reachable = np.zeros(num_states, dtype=bool)
    frontier = np.unique(np.asarray(root_positions, dtype=np.int64))
    while frontier.size:
        reachable[frontier] = True
        take = reachable[up]
        children = np.concatenate((ul[take], ur[take]))
        children = children[~reachable[children]]
        frontier = np.unique(children)

    if int(reachable.sum()) == num_states:
        # every state is useful, so no transition can be dropped either
        return automaton
    keep = {states[i] for i in np.flatnonzero(reachable).tolist()}
    # rebuild exactly as the reference does (same dict order, same sharing)
    internal = automaton.internal
    new_internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    for parent, transitions in internal.items():
        if parent not in keep:
            continue
        kept = tuple(
            entry for entry in transitions if entry[1] in keep and entry[2] in keep
        )
        if kept:
            new_internal[parent] = transitions if len(kept) == len(transitions) else kept
    leaves = {
        state: amplitude
        for state, amplitude in automaton.leaves.items()
        if state in keep
    }
    roots = automaton.roots if keep >= automaton.roots else frozenset(
        root for root in automaton.roots if root in keep
    )
    return TreeAutomaton._make(automaton.num_qubits, roots, new_internal, leaves)


def _vector_reduce_layered(automaton: TreeAutomaton) -> TreeAutomaton:
    depths = automaton._state_depths()
    form = _array_form(automaton)
    states = form.states
    num_states = len(states)
    if depths is None or len(depths) != num_states:
        # not layered, or some state is unreachable (not useless-free): both
        # violate this operation's contract — let the reference code decide
        return _reference.reduce_layered(automaton)
    internal = automaton.internal
    leaves = automaton.leaves
    index = form.index_map()
    depth_arr = np.asarray(
        [depths[state] for state in states], dtype=np.int64
    )
    p_arr, s_arr, l_arr, r_arr = form.parent, form.sym, form.left, form.right

    # leaf amplitudes interned to dense ids (same equality as the reference's
    # amplitude-keyed signature table)
    amplitude_ids: Dict[AlgebraicNumber, int] = {}
    is_leaf = np.zeros(num_states, dtype=bool)
    leaf_amp = np.full(num_states, -1, dtype=np.int64)
    for state, amplitude in leaves.items():
        identifier = amplitude_ids.setdefault(amplitude, len(amplitude_ids))
        position = state if index is None else index[state]
        is_leaf[position] = True
        leaf_amp[position] = identifier
    # internal states without any transition rows all share the empty signature
    has_rows = np.zeros(num_states, dtype=bool)
    if p_arr.size:
        has_rows[p_arr] = True
    bare_mask = ~is_leaf & ~has_rows

    # states and transitions sliced per depth via one stable sort each (the
    # stable order keeps ascending position inside a layer, which is the
    # reference's first-state-wins tie-break)
    state_order = np.argsort(depth_arr, kind="stable")
    state_depth_sorted = depth_arr[state_order]
    t_depth = depth_arr[p_arr]
    t_order = np.argsort(t_depth, kind="stable")
    t_depth_sorted = t_depth[t_order]

    # packed-key bit budget: row codes live below ``stride``; prepending the
    # parent keeps everything sortable as one int64 when it fits
    num_symbols = max(len(form.symbols), 1)
    stride = num_symbols * num_states * num_states
    if stride >= (1 << 62):
        return _reference.reduce_layered(automaton)
    packable = num_states * stride < (1 << 62)

    rep = np.arange(num_states, dtype=np.int64)
    merged_any = False
    for depth in sorted(set(depth_arr.tolist()), reverse=True):
        lo = int(np.searchsorted(state_depth_sorted, depth, side="left"))
        hi = int(np.searchsorted(state_depth_sorted, depth, side="right"))
        layer_ids = state_order[lo:hi]

        # leaf states: group by amplitude id, smallest position wins
        leaf_layer = layer_ids[is_leaf[layer_ids]]
        if leaf_layer.size:
            order = np.lexsort((leaf_layer, leaf_amp[leaf_layer]))
            sorted_ids = leaf_layer[order]
            sorted_amp = leaf_amp[leaf_layer][order]
            head = np.concatenate(([True], sorted_amp[1:] != sorted_amp[:-1]))
            group = np.cumsum(head) - 1
            heads = sorted_ids[np.flatnonzero(head)]
            targets = heads[group]
            if (targets != sorted_ids).any():
                merged_any = True
            rep[sorted_ids] = targets

        # bare states (no rows, no amplitude): all share the empty signature
        bare_layer = layer_ids[bare_mask[layer_ids]]
        if bare_layer.size > 1:
            rep[bare_layer] = bare_layer[0]
            merged_any = True

        # internal states: signature = canonical sorted row-id sequence
        tlo = int(np.searchsorted(t_depth_sorted, depth, side="left"))
        thi = int(np.searchsorted(t_depth_sorted, depth, side="right"))
        rows = t_order[tlo:thi]
        if not rows.size:
            continue
        tparent = p_arr[rows]
        tsym = s_arr[rows]
        tleft = rep[l_arr[rows]]
        tright = rep[r_arr[rows]]
        # row id = the (symbol, left-rep, right-rep) triple packed into one
        # integer: equal triples get equal ids, which is all the signature
        # comparison needs (density is not required)
        code = (tsym * num_states + tleft) * num_states + tright
        if packable:
            # one flat sort on (parent, code) packed into a single int64 is
            # markedly faster than a four-key lexsort
            order = np.argsort(tparent * stride + code)
        else:
            order = np.lexsort((tright, tleft, tsym, tparent))
        tparent = tparent[order]
        code = code[order]
        same = (tparent[1:] == tparent[:-1]) & (code[1:] == code[:-1])
        keep_rows = np.concatenate(([True], ~same))
        tparent = tparent[keep_rows]
        row_id = code[keep_rows]
        parent_change = np.concatenate(([True], tparent[1:] != tparent[:-1]))
        starts = np.flatnonzero(parent_change)
        ends = np.concatenate((starts[1:], [tparent.size]))
        parents_in_order = tparent[starts]  # ascending position
        row_counts = ends - starts
        width = int(row_counts.max())
        if width <= _MAX_SIGNATURE_WIDTH:
            # pad each parent's ascending row-id sequence into a matrix row,
            # lexsort the rows, and group consecutive equal rows; the stable
            # sort keeps parents ascending inside a group, so the group head
            # reproduces the reference first-state-wins tie-break
            matrix = np.full((parents_in_order.size, width), -1, dtype=np.int64)
            for column in range(width):
                mask = row_counts > column
                matrix[mask, column] = row_id[starts[mask] + column]
            sig_order = np.lexsort(
                tuple(matrix[:, column] for column in range(width - 1, -1, -1))
            )
            m_sorted = matrix[sig_order]
            parents_sorted = parents_in_order[sig_order]
            if m_sorted.shape[0] > 1:
                head = np.concatenate(
                    ([True], (m_sorted[1:] != m_sorted[:-1]).any(axis=1))
                )
            else:
                head = np.ones(1, dtype=bool)
            group = np.cumsum(head) - 1
            heads = parents_sorted[np.flatnonzero(head)]
            targets = heads[group]
            if (targets != parents_sorted).any():
                merged_any = True
            rep[parents_sorted] = targets
        else:
            table: Dict[bytes, int] = {}
            for k in range(parents_in_order.size):
                parent_id = int(parents_in_order[k])
                signature = row_id[starts[k] : ends[k]].tobytes()
                previous = table.get(signature)
                if previous is None:
                    table[signature] = parent_id
                else:
                    rep[parent_id] = previous
                    merged_any = True

    if not merged_any:
        return automaton
    rep_list = rep.tolist()
    representative = {states[i]: states[rep_list[i]] for i in range(num_states)}
    # rebuild exactly as the reference does
    new_internal: Dict[int, Tuple[InternalTransition, ...]] = {}
    for parent, transitions in internal.items():
        if representative[parent] != parent:
            continue
        new_internal[parent] = tuple(dict.fromkeys(
            intern_transition(symbol, representative[left], representative[right])
            for symbol, left, right in transitions
        ))
    new_leaves = {
        state: amplitude for state, amplitude in leaves.items()
        if representative[state] == state
    }
    new_roots = frozenset(representative[root] for root in automaton.roots)
    return TreeAutomaton._make(automaton.num_qubits, new_roots, new_internal, new_leaves)


class VectorizedBackend(KernelBackend):
    """The numpy kernel: vectorized discovery, bit-identical finalization.

    ``min_transitions`` (when given) overrides every per-operation floor from
    :data:`DEFAULT_THRESHOLDS` at once — the conformance suite passes ``0`` to
    force the vector paths on arbitrarily small inputs.
    """

    name = "numpy"

    def __init__(self, min_transitions: Optional[int] = None):
        if min_transitions is None:
            self.thresholds = dict(DEFAULT_THRESHOLDS)
        else:
            self.thresholds = {key: int(min_transitions) for key in DEFAULT_THRESHOLDS}

    def binary_operation(
        self, left: TreeAutomaton, right: TreeAutomaton, subtract: bool = False
    ) -> TreeAutomaton:
        if (
            left.num_transitions + right.num_transitions
            < self.thresholds["binary_operation"]
        ):
            return _reference.binary_operation(left, right, subtract)
        if left.num_qubits != right.num_qubits:
            raise ValueError("operands must have the same number of qubits")
        return _vector_binary_operation(left, right, subtract)

    def remove_useless(self, automaton: TreeAutomaton) -> TreeAutomaton:
        if automaton.num_transitions < self.thresholds["remove_useless"]:
            return _reference.remove_useless(automaton)
        return _vector_remove_useless(automaton)

    def reduce_layered(self, automaton: TreeAutomaton) -> TreeAutomaton:
        if automaton.num_transitions < self.thresholds["reduce_layered"]:
            return _reference.reduce_layered(automaton)
        return _vector_reduce_layered(automaton)

    def reduce_fixpoint(self, automaton: TreeAutomaton) -> TreeAutomaton:
        # the non-layered fallback is rare and inherently iterative; the
        # reference implementation is the sensible choice for every backend
        return _reference.reduce_fixpoint(automaton)
