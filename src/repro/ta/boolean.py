"""Boolean language operations on quantum-state tree automata.

The pre- and post-conditions of the verification problem ``{P} C {Q}`` are
*sets* of quantum states, so it is natural to combine them with set
operations.  This module provides the classical tree-automata constructions,
specialised to the layered full-binary-tree languages used by the framework:

* :func:`intersection` — product construction (``L(A) ∩ L(B)``),
* :func:`complement` — layered subset construction + completion against an
  explicit universe of leaf amplitudes, then root complementation,
* :func:`difference` — ``L(A) \\ L(B)`` via intersection with a complement,
* :func:`union` is already available as :meth:`TreeAutomaton.union`.

The *universe* of the complement is the set of all full binary trees of the
automaton's height whose leaves are labelled with amplitudes from a given
finite alphabet (by default the amplitudes appearing in the involved
automata).  This matches how specifications are written in practice — the
interesting alphabet is always finite and known — and keeps the operation
decidable without symbolic leaf constraints.

Complementation determinizes and can therefore blow up exponentially; it is
meant for composing *condition* automata (which are small), not for the large
intermediate automata produced inside circuit analysis.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..algebraic import AlgebraicNumber
from .automaton import InternalTransition, TreeAutomaton, make_symbol, symbol_qubit

__all__ = ["intersection", "complement", "difference", "leaf_alphabet"]


def leaf_alphabet(*automata: TreeAutomaton) -> Tuple[AlgebraicNumber, ...]:
    """The sorted tuple of distinct leaf amplitudes appearing in the given automata."""
    seen: Dict[AlgebraicNumber, None] = {}
    for automaton in automata:
        for amplitude in automaton.leaves.values():
            seen.setdefault(amplitude, None)
    return tuple(sorted(seen, key=lambda amplitude: amplitude.as_tuple()))


def intersection(left: TreeAutomaton, right: TreeAutomaton) -> TreeAutomaton:
    """Product automaton recognizing ``L(left) ∩ L(right)``."""
    if left.num_qubits != right.num_qubits:
        raise ValueError("cannot intersect automata of different widths")
    left = left.remove_useless()
    right = right.remove_useless()

    pair_ids: Dict[Tuple[int, int], int] = {}

    def pair_id(pair: Tuple[int, int]) -> int:
        if pair not in pair_ids:
            pair_ids[pair] = len(pair_ids)
        return pair_ids[pair]

    # per-(state, qubit) index over the right operand, so the product only
    # enumerates genuinely matching transition pairs (tags are ignored here:
    # intersection operates on untagged condition automata)
    right_index: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for parent, transitions in right.internal.items():
        for symbol, r_left, r_right in transitions:
            right_index.setdefault((parent, symbol_qubit(symbol)), []).append((r_left, r_right))

    internal: Dict[int, List[InternalTransition]] = {}
    leaves: Dict[int, AlgebraicNumber] = {}
    roots = set()
    stack: List[Tuple[int, int]] = []
    visited = set()
    for left_root in left.roots:
        for right_root in right.roots:
            roots.add(pair_id((left_root, right_root)))
            stack.append((left_root, right_root))
    while stack:
        pair = stack.pop()
        if pair in visited:
            continue
        visited.add(pair)
        left_state, right_state = pair
        if left_state in left.leaves or right_state in right.leaves:
            left_amplitude = left.leaves.get(left_state)
            right_amplitude = right.leaves.get(right_state)
            if left_amplitude is not None and left_amplitude == right_amplitude:
                leaves[pair_id(pair)] = left_amplitude
            continue
        bucket = internal.setdefault(pair_id(pair), [])
        for symbol, l_left, l_right in left.internal.get(left_state, ()):
            qubit = symbol_qubit(symbol)
            for r_left, r_right in right_index.get((right_state, qubit), ()):
                child_left = (l_left, r_left)
                child_right = (l_right, r_right)
                bucket.append(
                    (make_symbol(qubit), pair_id(child_left), pair_id(child_right))
                )
                stack.append(child_left)
                stack.append(child_right)
    result = TreeAutomaton(left.num_qubits, roots, internal, leaves)
    return result.remove_useless()


def complement(
    automaton: TreeAutomaton,
    alphabet: Optional[Iterable[AlgebraicNumber]] = None,
) -> TreeAutomaton:
    """Automaton for the complement of ``L(automaton)`` within the leaf-alphabet universe.

    The universe consists of all full binary trees of the automaton's height
    whose leaves carry amplitudes from ``alphabet`` (default: the amplitudes
    appearing in the automaton itself).  The construction is a complete,
    layered subset construction — every tree of the universe reaches exactly
    one macro-state per level — followed by complementing the set of root
    macro-states.
    """
    symbols = leaf_alphabet(automaton) if alphabet is None else tuple(dict.fromkeys(alphabet))
    if not symbols:
        raise ValueError("the leaf alphabet of the complement universe must not be empty")
    automaton = automaton.remove_useless()
    num_qubits = automaton.num_qubits

    macro_ids: Dict[Tuple[int, FrozenSet[int]], int] = {}

    def macro_id(level: int, macro: FrozenSet[int]) -> int:
        key = (level, macro)
        if key not in macro_ids:
            macro_ids[key] = len(macro_ids)
        return macro_ids[key]

    leaves: Dict[int, AlgebraicNumber] = {}
    by_amplitude: Dict[AlgebraicNumber, FrozenSet[int]] = {}
    for state, amplitude in automaton.leaves.items():
        by_amplitude[amplitude] = by_amplitude.get(amplitude, frozenset()) | {state}
    # one leaf state per alphabet symbol; distinct symbols must map to distinct
    # leaf states even when their macro-state coincides (typically the empty set)
    leaf_level_ids: List[Tuple[FrozenSet[int], int]] = []
    for amplitude in symbols:
        macro = by_amplitude.get(amplitude, frozenset())
        identifier = macro_id(num_qubits, macro)
        if identifier in leaves:
            identifier = macro_id(num_qubits, frozenset({-1 - len(leaves)}) | macro)
        leaves[identifier] = amplitude
        leaf_level_ids.append((macro, identifier))

    transitions_by_qubit = automaton.transitions_by_qubit()

    internal: Dict[int, List[InternalTransition]] = {}
    level_entries: List[Tuple[FrozenSet[int], int]] = leaf_level_ids
    for qubit in range(num_qubits - 1, -1, -1):
        level_transitions = transitions_by_qubit.get(qubit, [])
        next_entries: Dict[int, FrozenSet[int]] = {}
        for left_macro, left_id in level_entries:
            for right_macro, right_id in level_entries:
                parents = frozenset(
                    parent
                    for parent, left, right in level_transitions
                    if left in left_macro and right in right_macro
                )
                parent_id = macro_id(qubit, parents)
                next_entries[parent_id] = parents
                internal.setdefault(parent_id, []).append(
                    (make_symbol(qubit), left_id, right_id)
                )
        level_entries = [(macro, identifier) for identifier, macro in next_entries.items()]

    roots = {
        identifier for macro, identifier in level_entries if not (macro & automaton.roots)
    }
    result = TreeAutomaton(num_qubits, roots, internal, leaves)
    return result.remove_useless()


def difference(
    left: TreeAutomaton,
    right: TreeAutomaton,
    alphabet: Optional[Sequence[AlgebraicNumber]] = None,
) -> TreeAutomaton:
    """Automaton for ``L(left) \\ L(right)``.

    The complement universe defaults to the union of both automata's leaf
    alphabets, which is sufficient because every tree of ``L(left)`` only uses
    ``left``'s amplitudes.
    """
    if alphabet is None:
        alphabet = leaf_alphabet(left, right)
    return intersection(left, complement(right, alphabet))
