"""Content-addressed, on-disk automaton store shared across processes.

The per-process gate memo (:mod:`repro.core.engine`) turns repeated gate
applications into fingerprint lookups, but it dies with the process.  This
module is the cross-process tier behind it: a directory of automaton payloads
(:func:`repro.ta.serialization.to_payload`) keyed by content digests, so
campaign workers — and entirely separate campaign runs — reuse each other's
verified circuit prefixes, the way the paper's Table 2 scalability argument
amortises automaton construction across structurally identical inputs.

Design points:

* **Content addressing.**  :func:`fingerprint` digests the *compact* form of
  an automaton (:meth:`~repro.ta.automaton.TreeAutomaton.compact`), so the
  key is invariant under state renaming along the canonical order: two
  workers that built the same automaton through different allocation
  histories still agree on the digest.  Gate-memo entries are keyed by
  :meth:`AutomatonStore.gate_key` over ``(input digest, gate, mode, reduce
  flag)`` — the same triple the in-process memo uses — with the store schema
  version mixed into the key material, so a codec bump makes every stale
  entry unreachable by construction.
* **Single-writer-safe atomic puts.**  Entries are written to a temp file in
  the target shard directory and published with ``os.replace``; concurrent
  writers of the same key race benignly (last writer wins with identical
  content) and readers never observe a partial file.
* **In-process LRU read layer.**  Hot entries are served from memory
  (decoded automata, not JSON), bounded by ``max_memory_entries``.
* **Versioned layout.**  The store directory carries a ``STORE_VERSION.json``
  stamp; opening a store written by an incompatible schema wipes the stale
  entries instead of mis-reading them.  Individual corrupt / truncated /
  wrong-schema entries are treated as misses and **quarantined**: moved to
  ``<store>/quarantine/`` next to a ``.reason`` file naming what was wrong,
  so they are never re-read, never fatal, and still inspectable afterwards.
* **Retry + degradation.**  Raw disk I/O runs under the shared
  :class:`repro.faults.RetryPolicy` (bounded attempts, exponential backoff);
  after ``fault_threshold`` *consecutive* I/O failures the store disables
  itself for the session (``disabled`` flag, surfaced through
  ``EngineStatistics.store_disabled``) and every ``get``/``put`` becomes a
  cheap no-op — the engine keeps computing without the tier.  The
  ``store.get`` / ``store.put`` fault-injection sites
  (:mod:`repro.faults`) exercise exactly these paths.

The store is *purely* an optimisation: every ``get`` may return ``None`` and
every ``put`` may silently lose a race — callers must always be able to
recompute.  Maintenance (``stats`` / ``gc`` / ``clear``) is exposed through
the ``cache`` CLI subcommand.

Raw entry transport is pluggable (:mod:`repro.ta.store_backend`): the
default is the local sharded directory described above, while a location of
``http(s)://host:port`` attaches the daemon's ``/api/v1/store/{digest}``
endpoints instead, so hosts joined to one campaign share a single store.
Remote reads that hit count as ``backend_hits`` next to the plain ``hits``
counter; purely local concerns (quarantine, gc, version stamping) are no-ops
for a remote backend — damage handling is the serving daemon's job.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..faults import DEFAULT_STORE_RETRY, RetryPolicy, active_injector, inject
from . import serialization
from .automaton import TreeAutomaton
from .store_backend import (
    HTTPStoreBackend,
    LocalDirectoryBackend,
    StoreBackend,
    backend_for,
    is_remote_location,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "STORE_DIR_ENV",
    "QUARANTINE_DIR",
    "DEFAULT_FAULT_THRESHOLD",
    "default_store_dir",
    "open_store",
    "fingerprint",
    "StoreEntry",
    "AutomatonStore",
    "StoreBackend",
    "LocalDirectoryBackend",
    "HTTPStoreBackend",
    "is_remote_location",
]

#: version of the store layout *and* entry payloads; bumping it (or
#: :data:`repro.ta.serialization.PAYLOAD_SCHEMA`) cleanly invalidates every
#: previously written cache
STORE_SCHEMA_VERSION = 1

#: the cache-root environment variable shared with the campaign result cache;
#: the store lives in a ``store/`` subdirectory of it
STORE_DIR_ENV = "AUTOQ_REPRO_CACHE_DIR"

_VERSION_FILE = "STORE_VERSION.json"

#: shard-level directory corrupt entries are moved into (never re-read)
QUARANTINE_DIR = "quarantine"

#: consecutive I/O faults before a store disables itself for the session
DEFAULT_FAULT_THRESHOLD = 5

_LOGGER = logging.getLogger(__name__)


def default_store_dir() -> str:
    """``$AUTOQ_REPRO_CACHE_DIR/store`` or ``~/.cache/autoq-repro/store``."""
    override = os.environ.get(STORE_DIR_ENV)
    if override:
        return os.path.join(override, "store")
    return os.path.join(os.path.expanduser("~"), ".cache", "autoq-repro", "store")


def open_store(directory: Optional[str]) -> Optional["AutomatonStore"]:
    """Open the store at ``directory``; ``None`` for ``None`` or an unusable dir.

    The store is purely an optimisation, so every consumer — session
    runtimes, campaign pool workers — wants the same degrade-to-nothing
    behaviour instead of a crash when the directory cannot be created or
    stamped.  This helper is that one policy.  ``directory`` may also be an
    ``http(s)://`` daemon URL, which attaches the remote backend
    (:mod:`repro.ta.store_backend`) — an unreachable daemon degrades at
    ``get``/``put`` time, never here.
    """
    if directory is None:
        return None
    try:
        return AutomatonStore(directory)
    except OSError:
        return None


def fingerprint(automaton: TreeAutomaton) -> str:
    """Canonical content digest of an automaton (cached on its compact form).

    The digest is computed over the compact form — contiguous state ids in
    the canonical order, transitions per compact id, sorted leaves — so it is
    stable across processes and under state renaming, unlike the raw
    ``structure_key()``.  Automata shared through the reduce cache share one
    :class:`~repro.ta.automaton.CompactForm`, so repeated fingerprinting of
    the same instance is one attribute read.
    """
    compact = automaton.compact()
    if compact._digest is None:  # noqa: SLF001 - CompactForm reserves the slot for us
        symbol_index: Dict[tuple, int] = {}
        symbols: List[Tuple[int, Tuple[int, ...]]] = []
        internal = []
        for transitions in compact.internal:
            encoded = []
            for symbol, left, right in transitions:
                index = symbol_index.get(symbol)
                if index is None:
                    index = symbol_index.setdefault(symbol, len(symbols))
                    symbols.append(symbol)
                encoded.append((index, left, right))
            internal.append(encoded)
        material = json.dumps(
            {
                "num_qubits": compact.num_qubits,
                "roots": list(compact.roots),
                "symbols": [[qubit, list(tags)] for qubit, tags in symbols],
                "internal": internal,
                "leaves": sorted(
                    [state, *amplitude.as_tuple()]
                    for state, amplitude in compact.leaves.items()
                ),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        compact._digest = hashlib.sha256(material.encode("utf-8")).hexdigest()  # noqa: SLF001
    return compact._digest  # noqa: SLF001


class _EntryMissing(Exception):
    """Internal: the entry file does not exist — a plain, deterministic miss.

    Deliberately *not* an ``OSError``: the read retry policy allowlists
    ``OSError``, and retrying a missing file would turn every cold-cache
    lookup into ``attempts`` reads plus backoff sleeps.
    """


class StoreEntry:
    """A decoded store entry: the automaton plus its JSON metadata."""

    __slots__ = ("automaton", "meta")

    def __init__(self, automaton: TreeAutomaton, meta: Dict):
        self.automaton = automaton
        self.meta = meta


class AutomatonStore:
    """Directory-backed, content-addressed map from digests to automata.

    Entries live at ``<directory>/<digest[:2]>/<digest>.json`` (sharded so a
    big campaign store never piles 10^5 files into one directory).  All I/O
    errors degrade to cache misses; the store never raises out of ``get`` or
    ``put``.
    """

    def __init__(self, directory: str, max_memory_entries: int = 256,
                 retry: Optional[RetryPolicy] = None,
                 fault_threshold: int = DEFAULT_FAULT_THRESHOLD,
                 backend: Optional[StoreBackend] = None):
        self.directory = directory
        self.backend = backend if backend is not None else backend_for(directory)
        # the local backend (None for remote stores) gates every file-level
        # concern: quarantine, gc, version stamping, recency touches
        self._local: Optional[LocalDirectoryBackend] = (
            self.backend if isinstance(self.backend, LocalDirectoryBackend) else None
        )
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, StoreEntry]" = OrderedDict()
        self.counters = {"hits": 0, "misses": 0, "publishes": 0, "rejected": 0,
                         "quarantined": 0, "retries": 0, "backend_hits": 0}
        self.retry = retry if retry is not None else DEFAULT_STORE_RETRY
        self.fault_threshold = fault_threshold
        self.disabled = False
        self._consecutive_faults = 0
        if self._local is not None:
            os.makedirs(directory, exist_ok=True)
            self._stamp_version()

    # ------------------------------------------------------------- versioning
    def _version_path(self) -> str:
        return os.path.join(self.directory, _VERSION_FILE)

    def _stamp_version(self) -> None:
        """Validate the on-disk schema stamp; wipe stale entries on mismatch."""
        path = self._version_path()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                stamp = json.load(handle)
        except FileNotFoundError:
            stamp = None
        except (OSError, ValueError):
            stamp = {}
        current = {
            "store_schema": STORE_SCHEMA_VERSION,
            "payload_schema": serialization.PAYLOAD_SCHEMA,
        }
        if stamp is not None and stamp != current:
            self.clear()
        if stamp != current:
            self._atomic_write(path, current)

    # -------------------------------------------------------------- keys
    @staticmethod
    def gate_key(input_digest: str, gate_signature: str, mode: str,
                 reduced: bool) -> str:
        """The store key of one gate application.

        Mirrors the in-process gate memo's ``(fingerprint, gate, mode)`` key,
        with the schema versions mixed into the digest material so entries
        written by an incompatible codec can never collide with live keys.
        """
        material = "\n".join([
            f"schema={STORE_SCHEMA_VERSION}.{serialization.PAYLOAD_SCHEMA}",
            input_digest,
            gate_signature,
            mode,
            "reduced" if reduced else "raw",
        ])
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> str:
        if self._local is None:
            raise ValueError(f"remote store {self.backend.describe()} has no entry paths")
        return self._local.path_for(key)

    # -------------------------------------------------------------- get / put
    def _count_retry(self, _attempt: int, _error: BaseException) -> None:
        self.counters["retries"] += 1

    def _note_fault(self, error: BaseException) -> None:
        """One I/O failure survived all retries; degrade after a streak."""
        self._consecutive_faults += 1
        if not self.disabled and self._consecutive_faults >= self.fault_threshold:
            self.disabled = True
            _LOGGER.warning(
                "automaton store %s disabled for this session after %d "
                "consecutive I/O faults (last: %s); continuing without the "
                "store tier", self.directory, self._consecutive_faults, error,
            )

    def _read_payload(self, key: str):
        """Raw read of one entry; the ``store.get`` fault site."""
        inject("store.get")
        text = self.backend.read_text(key)
        if text is None:
            # a plain miss is deterministic — raised as a non-OSError so the
            # retry policy (allowlist: OSError) never loops on it
            raise _EntryMissing(key)
        return json.loads(text)

    def get(self, key: str) -> Optional[StoreEntry]:
        """Fetch and decode an entry; ``None`` on any miss or damage.

        Transient read errors are retried under :attr:`retry`; corrupt,
        truncated, or schema-incompatible entry files are quarantined so
        they are recomputed (and republished) instead of failing every run.
        """
        if self.disabled:
            return None
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.counters["hits"] += 1
            return cached
        try:
            payload = self.retry.call(self._read_payload, key,
                                      on_retry=self._count_retry)
        except _EntryMissing:
            # a plain miss: not a fault, but not evidence of health either
            self.counters["misses"] += 1
            return None
        except OSError as error:
            self._note_fault(error)
            self._reject_entry(key, f"unreadable entry: {error}")
            self.counters["misses"] += 1
            return None
        except ValueError as error:
            self._reject_entry(key, f"undecodable JSON: {error}", always_count=True)
            self.counters["misses"] += 1
            return None
        try:
            if not isinstance(payload, dict) or payload.get("store_schema") != STORE_SCHEMA_VERSION:
                raise ValueError(f"store schema mismatch for {key}")
            automaton = serialization.from_payload(payload["automaton"])
            meta = payload.get("meta") or {}
            if not isinstance(meta, dict):
                raise ValueError("entry meta must be a dict")
        except (KeyError, ValueError) as error:
            self.counters["misses"] += 1
            self._reject_entry(key, f"invalid payload: {error}", always_count=True)
            return None
        self._consecutive_faults = 0
        entry = StoreEntry(automaton, meta)
        self._remember(key, entry)
        self.counters["hits"] += 1
        if self.backend.remote:
            self.counters["backend_hits"] += 1
        elif self._local is not None:
            try:
                # refresh recency so gc() (least-recently-touched eviction)
                # keeps hot entries; puts are one-shot, so reads are the real
                # heat signal
                os.utime(self._local.path_for(key), None)
            except OSError:
                pass
        return entry

    def _reject_entry(self, key: str, reason: str, always_count: bool = False) -> None:
        """Count a damaged entry and quarantine its file when one exists.

        Remote entries have no local file to move — the serving daemon owns
        damage handling there — so only the counter moves (and only when the
        damage is certain, not merely a transport error)."""
        if self._local is not None:
            path = self._local.path_for(key)
            if os.path.exists(path):
                self.counters["rejected"] += 1
                self._quarantine(path, reason)
            elif always_count:
                self.counters["rejected"] += 1
        elif always_count or self.backend.remote:
            self.counters["rejected"] += 1

    def _write_text(self, key: str, text: str) -> None:
        """Raw publish of one serialized entry; the ``store.put`` fault site."""
        spec = inject("store.put")
        if spec is not None and spec.kind == "corrupt-payload":
            # a torn/corrupt write reaches the disk; a later read quarantines it
            injector = active_injector()
            if injector is not None:
                text = injector.corrupt("store.put", text)
        self.backend.write_text(key, text)

    def put(self, key: str, automaton: TreeAutomaton, meta: Optional[Dict] = None) -> bool:
        """Publish an entry atomically; returns False when the write failed.

        A best-effort operation: a full disk or a permissions problem must
        never break the computation whose result was being shared.  Transient
        write errors are retried under :attr:`retry` before giving up.
        """
        if self.disabled:
            return False
        entry = StoreEntry(automaton, dict(meta or {}))
        payload = {
            "store_schema": STORE_SCHEMA_VERSION,
            "automaton": serialization.to_payload(automaton),
            "meta": entry.meta,
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        try:
            self.retry.call(self._write_text, key, text,
                            on_retry=self._count_retry)
        except OSError as error:
            self._note_fault(error)
            return False
        self._consecutive_faults = 0
        self._remember(key, entry)
        self.counters["publishes"] += 1
        return True

    def _remember(self, key: str, entry: StoreEntry) -> None:
        memory = self._memory
        memory[key] = entry
        memory.move_to_end(key)
        while len(memory) > self.max_memory_entries:
            memory.popitem(last=False)

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a damaged entry to ``<store>/quarantine/`` with a reason file.

        Quarantined entries are never walked, never re-read, and survive
        ``gc`` — inspect or delete them by hand (or with ``cache clear``).
        Falls back to plain deletion when even the move fails.
        """
        quarantine_dir = os.path.join(self.directory, QUARANTINE_DIR)
        name = os.path.basename(path)
        try:
            os.makedirs(quarantine_dir, exist_ok=True)
            os.replace(path, os.path.join(quarantine_dir, name))
            with open(os.path.join(quarantine_dir, name + ".reason"), "w",
                      encoding="utf-8") as handle:
                handle.write(reason + "\n")
        except OSError:
            self._discard(path)
        self.counters["quarantined"] += 1

    @classmethod
    def _atomic_write(cls, path: str, payload: Dict) -> None:
        cls._atomic_write_text(
            path, json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )

    @staticmethod
    def _atomic_write_text(path: str, text: str) -> None:
        LocalDirectoryBackend.write_text_at(path, text)

    # ------------------------------------------------------------ maintenance
    @staticmethod
    def _walk_entries(directory: str, suffix: str = ".json") -> List[str]:
        paths = []
        try:
            shards = sorted(os.listdir(directory))
        except OSError:
            return paths
        for shard in shards:
            if shard == QUARANTINE_DIR:
                continue  # quarantined entries are dead to the store
            shard_path = os.path.join(directory, shard)
            if not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                if name.endswith(suffix):
                    paths.append(os.path.join(shard_path, name))
        return paths

    def _entry_paths(self) -> List[str]:
        return self._walk_entries(self.directory)

    def _temp_paths(self) -> List[str]:
        """Leftover ``*.tmp`` files from publishes that died before replace."""
        return self._walk_entries(self.directory, suffix=".tmp")

    @staticmethod
    def disk_stats(directory: str) -> Dict[str, object]:
        """Read-only usage report of a store directory.

        Unlike constructing an :class:`AutomatonStore`, this neither creates
        the directory nor validates/wipes it on a schema-stamp mismatch, so
        it is safe for pure inspection (the ``cache stats`` CLI).  Reports
        the on-disk stamp next to the current schema so a pending
        invalidation is visible before it happens.
        """
        entries = 0
        total_bytes = 0
        for path in AutomatonStore._walk_entries(directory):
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                continue
            entries += 1
        temp_files = 0
        for path in AutomatonStore._walk_entries(directory, suffix=".tmp"):
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                continue
            temp_files += 1
        quarantined = 0
        try:
            for name in os.listdir(os.path.join(directory, QUARANTINE_DIR)):
                if name.endswith(".json"):
                    quarantined += 1
        except OSError:
            pass
        try:
            with open(os.path.join(directory, _VERSION_FILE), "r", encoding="utf-8") as handle:
                stamp = json.load(handle)
        except (OSError, ValueError):
            stamp = None
        return {
            "directory": directory,
            "store_schema": STORE_SCHEMA_VERSION,
            "payload_schema": serialization.PAYLOAD_SCHEMA,
            "disk_stamp": stamp,
            "entries": entries,
            "temp_files": temp_files,
            "quarantined_entries": quarantined,
            "total_bytes": total_bytes,
        }

    def stats(self) -> Dict[str, object]:
        """On-disk + in-process view: entry count, bytes, session counters."""
        return {
            **self.disk_stats(self.directory),
            "memory_entries": len(self._memory),
            **self.counters,
        }

    def counter_snapshot(self) -> Dict[str, object]:
        """Session counters + LRU size only — no disk walk, so cheap enough
        to take on every metrics scrape of a long-running service."""
        return {
            "directory": self.directory,
            "memory_entries": len(self._memory),
            "disabled": self.disabled,
            **self.counters,
        }

    def _discard_temps(self) -> int:
        """Delete orphaned temp files; returns the bytes reclaimed.

        Racing a concurrent in-flight publish is harmless: its ``os.replace``
        fails with ``OSError``, which ``put`` already treats as a lost
        (best-effort) write.
        """
        reclaimed = 0
        for path in self._temp_paths():
            try:
                reclaimed += os.path.getsize(path)
            except OSError:
                pass
            self._discard(path)
        return reclaimed

    def gc(self, max_bytes: int) -> Dict[str, int]:
        """Evict least-recently-*touched* entries until under ``max_bytes``.

        Both publishing and a successful disk hit refresh an entry's mtime,
        so frequently reused entries (shared circuit prefixes) survive and
        entries no campaign has asked for in a while go first.  Orphaned
        ``*.tmp`` files from interrupted publishes are removed outright.
        Only the evicted keys are dropped from the in-process LRU — a no-op
        gc (already under budget) must not cool a warm memo.
        Returns how many entries and bytes were removed and what remains.
        """
        removed_bytes = self._discard_temps()
        entries = []
        total = 0
        for path in self._entry_paths():
            try:
                status = os.stat(path)
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
            total += status.st_size
        entries.sort()
        removed = 0
        for _mtime, size, path in entries:
            if total <= max_bytes:
                break
            self._discard(path)
            key = os.path.basename(path)[: -len(".json")]
            self._memory.pop(key, None)
            total -= size
            removed += 1
            removed_bytes += size
        return {
            "removed_entries": removed,
            "removed_bytes": removed_bytes,
            "remaining_bytes": total,
        }

    def clear(self) -> int:
        """Delete every entry, orphaned temp file, and quarantined file (the
        version stamp survives); returns the number of entries removed."""
        self._discard_temps()
        removed = 0
        for path in self._entry_paths():
            self._discard(path)
            removed += 1
        quarantine_dir = os.path.join(self.directory, QUARANTINE_DIR)
        try:
            for name in os.listdir(quarantine_dir):
                self._discard(os.path.join(quarantine_dir, name))
        except OSError:
            pass
        self._memory.clear()
        return removed

    def __len__(self) -> int:
        return len(self._entry_paths())
