"""Builders for tree automata encoding common sets of quantum states.

These cover the constructions used throughout the paper:

* a single computational basis state (Fig. 1a),
* the set of *all* basis states :math:`Q_n` (Example 3.1),
* "product-form" sets where every qubit independently ranges over a set of
  classical values (used for the pre-conditions of Grover-All and MCToffoli,
  Appendix E),
* an arbitrary finite set of explicit quantum states (used for
  post-conditions such as the Bell state or the Grover output).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..algebraic import ONE, ZERO, AlgebraicNumber
from ..states import QuantumState
from .automaton import TreeAutomaton, make_symbol

__all__ = [
    "basis_state_ta",
    "all_basis_states_ta",
    "basis_product_ta",
    "from_quantum_state",
    "from_quantum_states",
]


def basis_state_ta(num_qubits: int, basis) -> TreeAutomaton:
    """TA accepting exactly the basis state ``|basis>`` (amplitude 1)."""
    state = QuantumState.basis_state(num_qubits, basis)
    return from_quantum_state(state)


def all_basis_states_ta(num_qubits: int) -> TreeAutomaton:
    """The linear-sized TA :math:`A_n` of Example 3.1 accepting every basis state."""
    return basis_product_ta(num_qubits, [(0, 1)] * num_qubits)


def basis_product_ta(num_qubits: int, allowed: Sequence[Iterable[int]]) -> TreeAutomaton:
    """TA accepting every basis state whose qubit ``i`` value lies in ``allowed[i]``.

    The automaton follows the shape of Example 3.1: ``one`` states generate a
    subtree with a single 1-leaf placed at any allowed position, ``zero``
    states generate the all-zero subtree.  Its size is linear in ``num_qubits``.
    """
    if len(allowed) != num_qubits:
        raise ValueError("allowed must have one entry per qubit")
    allowed_sets: List[Set[int]] = []
    for index, values in enumerate(allowed):
        value_set = {int(v) for v in values}
        if not value_set or not value_set.issubset({0, 1}):
            raise ValueError(f"allowed[{index}] must be a non-empty subset of {{0, 1}}")
        allowed_sets.append(value_set)

    # State numbering: level i in 0..num_qubits; "one" state = 2*i, "zero" state = 2*i+1.
    def one_state(level: int) -> int:
        return 2 * level

    def zero_state(level: int) -> int:
        return 2 * level + 1

    internal: Dict[int, List] = {}
    for level in range(num_qubits):
        symbol = make_symbol(level)
        one_transitions = []
        if 0 in allowed_sets[level]:
            one_transitions.append((symbol, one_state(level + 1), zero_state(level + 1)))
        if 1 in allowed_sets[level]:
            one_transitions.append((symbol, zero_state(level + 1), one_state(level + 1)))
        internal[one_state(level)] = one_transitions
        internal[zero_state(level)] = [(symbol, zero_state(level + 1), zero_state(level + 1))]
    leaves = {one_state(num_qubits): ONE, zero_state(num_qubits): ZERO}
    automaton = TreeAutomaton(num_qubits, {one_state(0)}, internal, leaves)
    return automaton.remove_useless()


def from_quantum_state(state: QuantumState) -> TreeAutomaton:
    """TA accepting exactly the given quantum state.

    The construction hash-conses identical subtrees, so the automaton size is
    ``O(num_qubits * nonzero_count)`` rather than ``O(2^n)``.
    """
    num_qubits = state.num_qubits
    internal: Dict[int, List] = {}
    leaves: Dict[int, AlgebraicNumber] = {}
    node_cache: Dict[Tuple[int, frozenset], int] = {}
    leaf_cache: Dict[AlgebraicNumber, int] = {}
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0] - 1

    def leaf_state(amplitude: AlgebraicNumber) -> int:
        if amplitude not in leaf_cache:
            state_id = fresh()
            leaf_cache[amplitude] = state_id
            leaves[state_id] = amplitude
        return leaf_cache[amplitude]

    def build(depth: int, submap: frozenset) -> int:
        key = (depth, submap)
        if key in node_cache:
            return node_cache[key]
        if depth == num_qubits:
            amplitude = ZERO
            for _suffix, value in submap:
                amplitude = value
            state_id = leaf_state(amplitude)
        else:
            left_items = frozenset((suffix[1:], value) for suffix, value in submap if suffix[0] == 0)
            right_items = frozenset((suffix[1:], value) for suffix, value in submap if suffix[0] == 1)
            left = build(depth + 1, left_items)
            right = build(depth + 1, right_items)
            state_id = fresh()
            internal[state_id] = [(make_symbol(depth), left, right)]
        node_cache[key] = state_id
        return state_id

    initial = frozenset((bits, amplitude) for bits, amplitude in state.items())
    root = build(0, initial)
    return TreeAutomaton(num_qubits, {root}, internal, leaves)


def from_quantum_states(states: Iterable[QuantumState], reduce: bool = True) -> TreeAutomaton:
    """TA accepting exactly the given finite set of quantum states."""
    states = list(states)
    if not states:
        raise ValueError("cannot build an automaton for the empty set of states")
    num_qubits = states[0].num_qubits
    if any(s.num_qubits != num_qubits for s in states):
        raise ValueError("all states must have the same number of qubits")
    automaton: Optional[TreeAutomaton] = None
    for state in states:
        singleton = from_quantum_state(state)
        automaton = singleton if automaton is None else automaton.union(singleton)
    assert automaton is not None
    return automaton.reduce() if reduce else automaton
