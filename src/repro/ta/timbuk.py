"""Timbuk-style import/export of quantum-state tree automata.

VATA (the TA library the paper builds on) and the AutoQ artifact exchange
automata in the *Timbuk* text format.  This module reads and writes that
format so condition automata produced by this library can be inspected with —
or imported from — the original tool chain::

    Ops x1:2 x2:2 [0,0,0,0,0]:0 [1,0,0,0,0]:0

    Automaton bell_pre
    States q0 q1 q2 q3 q4
    Final States q0
    Transitions
    [1,0,0,0,0] -> q3
    [0,0,0,0,0] -> q4
    x2(q3, q4) -> q1
    x2(q4, q4) -> q2
    x1(q1, q2) -> q0

Internal symbols are ``x1 .. xn`` (1-based, matching the paper's notation);
leaf symbols are the algebraic five-tuples ``[a,b,c,d,k]`` written as nullary
constants.  Transitions are written bottom-up (children on the left of the
arrow), which is the Timbuk convention; the library's own compact format in
:mod:`repro.ta.serialization` stays available for quick round-trips.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..algebraic import AlgebraicNumber
from .automaton import TreeAutomaton, make_symbol, symbol_qubit

__all__ = ["dumps_timbuk", "loads_timbuk", "save_timbuk", "load_timbuk"]

_LEAF_SYMBOL_RE = re.compile(r"^\[(-?\d+),(-?\d+),(-?\d+),(-?\d+),(-?\d+)\]$")
_INTERNAL_RULE_RE = re.compile(
    r"^(?P<symbol>x\d+)\s*\(\s*(?P<left>\S+?)\s*,\s*(?P<right>\S+?)\s*\)\s*->\s*(?P<parent>\S+)$"
)
_LEAF_RULE_RE = re.compile(r"^(?P<symbol>\[[^\]]*\])\s*->\s*(?P<parent>\S+)$")


def _leaf_symbol(amplitude: AlgebraicNumber) -> str:
    return "[" + ",".join(str(v) for v in amplitude.as_tuple()) + "]"


def _parse_leaf_symbol(text: str) -> AlgebraicNumber:
    match = _LEAF_SYMBOL_RE.match(text)
    if not match:
        raise ValueError(f"not a leaf symbol: {text!r}")
    return AlgebraicNumber(*(int(group) for group in match.groups()))


def dumps_timbuk(automaton: TreeAutomaton, name: str = "aut") -> str:
    """Serialize an untagged automaton to the Timbuk format."""
    if automaton.is_tagged():
        raise ValueError("only untagged automata can be exported to Timbuk")
    state_names = {state: f"q{state}" for state in sorted(automaton.states)}
    leaf_symbols = sorted(
        {_leaf_symbol(amplitude) for amplitude in automaton.leaves.values()}
    )
    ops = [f"x{qubit + 1}:2" for qubit in range(automaton.num_qubits)]
    ops += [f"{symbol}:0" for symbol in leaf_symbols]

    lines = ["Ops " + " ".join(ops), "", f"Automaton {name}"]
    lines.append("States " + " ".join(state_names[state] for state in sorted(automaton.states)))
    lines.append(
        "Final States " + " ".join(state_names[root] for root in sorted(automaton.roots))
    )
    lines.append("Transitions")
    for state in sorted(automaton.leaves):
        lines.append(f"{_leaf_symbol(automaton.leaves[state])} -> {state_names[state]}")
    for parent in sorted(automaton.internal):
        for symbol, left, right in automaton.internal[parent]:
            lines.append(
                f"x{symbol_qubit(symbol) + 1}({state_names[left]}, {state_names[right]})"
                f" -> {state_names[parent]}"
            )
    return "\n".join(lines) + "\n"


def loads_timbuk(text: str) -> TreeAutomaton:
    """Parse an automaton from the Timbuk format.

    The number of qubits is taken from the largest ``x<i>`` symbol declared in
    the ``Ops`` section (or used in a transition).
    """
    state_ids: Dict[str, int] = {}

    def state_id(name: str) -> int:
        if name not in state_ids:
            state_ids[name] = len(state_ids)
        return state_ids[name]

    num_qubits = 0
    roots: List[int] = []
    leaves: Dict[int, AlgebraicNumber] = {}
    internal: Dict[int, List[Tuple]] = {}
    in_transitions = False

    for raw_line in text.splitlines():
        line = raw_line.split("%", 1)[0].strip()
        if not line:
            continue
        if line.startswith("Ops"):
            for token in line[len("Ops"):].split():
                symbol = token.rsplit(":", 1)[0]
                if symbol.startswith("x") and symbol[1:].isdigit():
                    num_qubits = max(num_qubits, int(symbol[1:]))
            continue
        if line.startswith("Automaton"):
            continue
        if line.startswith("Final States"):
            roots = [state_id(name) for name in line[len("Final States"):].split()]
            continue
        if line.startswith("States"):
            for name in line[len("States"):].split():
                state_id(name)
            continue
        if line.startswith("Transitions"):
            in_transitions = True
            continue
        if not in_transitions:
            raise ValueError(f"unexpected line outside the Transitions section: {raw_line!r}")
        internal_match = _INTERNAL_RULE_RE.match(line)
        if internal_match:
            qubit = int(internal_match.group("symbol")[1:]) - 1
            num_qubits = max(num_qubits, qubit + 1)
            parent = state_id(internal_match.group("parent"))
            left = state_id(internal_match.group("left"))
            right = state_id(internal_match.group("right"))
            internal.setdefault(parent, []).append((make_symbol(qubit), left, right))
            continue
        leaf_match = _LEAF_RULE_RE.match(line)
        if leaf_match:
            parent = state_id(leaf_match.group("parent"))
            amplitude = _parse_leaf_symbol(leaf_match.group("symbol"))
            if parent in leaves and leaves[parent] != amplitude:
                raise ValueError(
                    f"leaf state {leaf_match.group('parent')!r} carries two different amplitudes"
                )
            leaves[parent] = amplitude
            continue
        raise ValueError(f"cannot parse transition: {raw_line!r}")

    if num_qubits == 0:
        raise ValueError("no qubit symbols (x1, x2, ...) found")
    return TreeAutomaton(num_qubits, roots, internal, leaves)


def save_timbuk(automaton: TreeAutomaton, path: str, name: str = "aut") -> None:
    """Write an automaton to a Timbuk file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps_timbuk(automaton, name=name))


def load_timbuk(path: str) -> TreeAutomaton:
    """Read an automaton from a Timbuk file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads_timbuk(handle.read())
