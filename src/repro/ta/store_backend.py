"""Pluggable raw-I/O backends behind the content-addressed automaton store.

:class:`~repro.ta.store.AutomatonStore` owns everything *semantic* about the
store tier — content addressing, the in-process LRU, quarantine, retry and
self-degradation.  What varies between deployments is only where the raw
entry text lives, and that is this module's job: a :class:`StoreBackend` maps
a store key to entry text and back, nothing more.

Two backends ship:

* :class:`LocalDirectoryBackend` — the original sharded-directory layout
  (``<root>/<key[:2]>/<key>.json``, atomic temp-file + ``os.replace``
  publishes), extracted verbatim from ``AutomatonStore`` so single-host
  behaviour is unchanged.
* :class:`HTTPStoreBackend` — speaks the serve daemon's
  ``/api/v1/store/{digest}`` GET/PUT endpoints, so every host joined to a
  campaign (``campaign --join``) shares one store of verified
  gate-application prefixes instead of recomputing them per machine.

Backends translate *their* failure vocabulary into the store's: a missing
entry is ``None`` (never an exception — misses are the common case and must
not trip retry loops), and every transport fault is an ``OSError`` so the
store's existing :class:`~repro.faults.RetryPolicy` + degrade-to-disabled
machinery applies unmodified.  :func:`backend_for` picks the backend from the
location string (``http(s)://`` → HTTP, anything else → local directory),
which is how ``--store-dir http://host:8642`` works end to end without any
caller learning about backends.
"""

from __future__ import annotations

import os
import tempfile
import urllib.error
import urllib.request
from abc import ABC, abstractmethod
from typing import List, Optional

__all__ = [
    "StoreBackend",
    "LocalDirectoryBackend",
    "HTTPStoreBackend",
    "backend_for",
    "is_remote_location",
]

#: path prefix of the daemon's store endpoints (shared with the service layer)
STORE_ENDPOINT_PREFIX = "/api/v1/store/"

#: transport timeout of one HTTP store round-trip; the store is an
#: optimisation, so a slow coordinator must degrade (miss) quickly rather
#: than stall the verification it was meant to speed up
DEFAULT_HTTP_TIMEOUT = 10.0


def is_remote_location(location: Optional[str]) -> bool:
    """Whether a store location names a remote daemon instead of a directory."""
    return bool(location) and (
        location.startswith("http://") or location.startswith("https://")
    )


def backend_for(location: str) -> "StoreBackend":
    """The backend matching a store location string."""
    if is_remote_location(location):
        return HTTPStoreBackend(location)
    return LocalDirectoryBackend(location)


class StoreBackend(ABC):
    """Raw key → entry-text transport behind :class:`AutomatonStore`.

    Contract: :meth:`read_text` returns ``None`` for a plain miss and raises
    ``OSError`` for transport faults; :meth:`write_text` raises ``OSError``
    when the publish failed.  Neither method parses or validates the entry —
    schema checks stay in the store, where quarantine lives.
    """

    #: remote backends have no local files to quarantine, gc, or stamp, and
    #: their successful reads count as fabric ``backend_hits``
    remote = False

    #: the location string the backend was built from (directory or URL)
    location = ""

    @abstractmethod
    def read_text(self, key: str) -> Optional[str]:
        """Entry text for ``key``; ``None`` when the entry does not exist."""

    @abstractmethod
    def write_text(self, key: str, text: str) -> None:
        """Publish entry text under ``key`` (atomic w.r.t. readers)."""

    def describe(self) -> str:
        return f"{type(self).__name__}({self.location})"


class LocalDirectoryBackend(StoreBackend):
    """Sharded local directory: ``<root>/<key[:2]>/<key>.json``.

    Writes go to a temp file in the target shard and are published with
    ``os.replace``, so concurrent writers of one key race benignly (last
    writer wins with identical content) and readers never see a torn file.
    """

    def __init__(self, directory: str):
        self.location = directory
        self.directory = directory

    def path_for(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def read_text(self, key: str) -> Optional[str]:
        try:
            with open(self.path_for(key), "r", encoding="utf-8") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def write_text(self, key: str, text: str) -> None:
        self.write_text_at(self.path_for(key), text)

    @staticmethod
    def write_text_at(path: str, text: str) -> None:
        """Atomic text write to an explicit path (also used for the version
        stamp, which lives outside the sharded key space)."""
        directory = os.path.dirname(path) or "."
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def entry_paths(self, suffix: str = ".json") -> List[str]:
        """Every entry file under the sharded layout (quarantine excluded)."""
        # local import: repro.ta.store owns the quarantine-directory name
        from .store import QUARANTINE_DIR

        paths: List[str] = []
        try:
            shards = sorted(os.listdir(self.directory))
        except OSError:
            return paths
        for shard in shards:
            if shard == QUARANTINE_DIR:
                continue
            shard_path = os.path.join(self.directory, shard)
            if not os.path.isdir(shard_path):
                continue
            for name in sorted(os.listdir(shard_path)):
                if name.endswith(suffix):
                    paths.append(os.path.join(shard_path, name))
        return paths


class HTTPStoreBackend(StoreBackend):
    """Store entries served by a verification daemon over HTTP.

    ``GET /api/v1/store/{key}`` → 200 with the entry text, or 404 for a miss;
    ``PUT`` publishes.  Every transport or server-side failure becomes an
    ``OSError``, which the owning store retries and eventually degrades on —
    a dead coordinator turns the shared tier off, never the verification.
    """

    remote = True

    def __init__(self, base_url: str, timeout: float = DEFAULT_HTTP_TIMEOUT):
        self.location = base_url.rstrip("/")
        self.timeout = timeout

    def _url(self, key: str) -> str:
        return f"{self.location}{STORE_ENDPOINT_PREFIX}{key}"

    def read_text(self, key: str) -> Optional[str]:
        request = urllib.request.Request(self._url(key), method="GET")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as error:
            if error.code == 404:
                error.close()
                return None
            raise OSError(f"store GET {key[:12]}… failed: HTTP {error.code}") from error
        except urllib.error.URLError as error:
            raise OSError(f"store GET {key[:12]}… unreachable: {error.reason}") from error

    def write_text(self, key: str, text: str) -> None:
        request = urllib.request.Request(
            self._url(key),
            data=text.encode("utf-8"),
            method="PUT",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                response.read()
        except urllib.error.HTTPError as error:
            code = error.code
            error.close()
            raise OSError(f"store PUT {key[:12]}… failed: HTTP {code}") from error
        except urllib.error.URLError as error:
            raise OSError(f"store PUT {key[:12]}… unreachable: {error.reason}") from error
