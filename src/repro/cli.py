"""Command-line interface for the AutoQ reproduction.

Subcommands::

    autoq-repro verify --family bv --size 20          # run a Table 2 style verification
    autoq-repro simulate circuit.qasm --input 0011    # exact simulation of one basis input
    autoq-repro equivalence a.qasm b.qasm             # TA-based output-set comparison
    autoq-repro bughunt a.qasm b.qasm                 # incremental bug hunt (Section 7.2)
    autoq-repro bughunt a.qasm --inject-seed 5        # hunt against a freshly mutated copy
    autoq-repro generate --family ghz --size 8 out.qasm   # dump a benchmark circuit as QASM
    autoq-repro inject a.qasm buggy.qasm --seed 7     # write a mutated copy (one extra gate)
    autoq-repro stats a.qasm                          # circuit summary and gate histogram
    autoq-repro export-ta --family bv --size 6 --which post out.timbuk
                                                      # dump a condition automaton (Timbuk)
    autoq-repro baselines a.qasm b.qasm               # run every baseline checker on a pair
    autoq-repro campaign --family grover --mutants 100 --workers 4
                                                      # parallel bug-hunting campaign
    autoq-repro campaign --matrix sweep.toml --workers 4
                                                      # families x sizes x modes sweep
    autoq-repro campaign --families grover,bv --sizes 2-4 --modes hybrid,composition
                                                      # the same, from inline flags
    autoq-repro campaign --resume mx-b123be7f30a4     # continue an interrupted sweep
    autoq-repro campaign --join mx-b123be7f30a4       # attach as an extra fabric worker
    autoq-repro campaign ls                           # list campaigns in the manifest dir
    autoq-repro fuzz --budget 60 --seed 0             # differential fuzzing of the engine
    autoq-repro fuzz --corpus corpus/                 # ... storing minimized divergences
    autoq-repro fuzz replay corpus/                   # re-verify the regression corpus
    autoq-repro cache stats                           # automaton store + result cache usage
    autoq-repro cache gc --max-bytes 100000000        # shrink the store to a byte budget
    autoq-repro cache clear                           # drop every automaton-store entry
    autoq-repro serve --port 8642                     # verification service daemon (HTTP + JSON)
    autoq-repro verify --family bv --size 20 --server http://127.0.0.1:8642
                                                      # run a subcommand on a running daemon

The CLI is a thin adapter over the typed service layer (:mod:`repro.api`):
each subcommand parses its flags into a ``Problem``, runs it through a
``Session`` (which owns the worker count, cache and store configuration),
and formats the typed ``Result``.  Because of that, **every** subcommand
accepts ``--json``, which prints the result as a versioned JSON document
(``api_version`` + ``kind`` envelope, see ``docs/api.md``) instead of the
text report — the same schema campaign JSONL records use, and the output
round-trips through ``repro.api.Result.from_json`` unchanged.  Under
``--json``, *failures* are documents too: every error path prints a
versioned ``error`` envelope (kind ``"error"``: slug, message, exit code)
on stdout, so machine callers never parse stderr.

The problem subcommands (verify / simulate / equivalence / bughunt /
campaign) also accept ``--server URL`` (default: ``$AUTOQ_REPRO_SERVER``
when set), which sends the problem document to a running ``serve`` daemon
(see ``docs/service.md``) instead of analysing in-process — same flags,
same output, but the daemon's warm gate memo and store answer repeated
queries far faster than a cold process.

All commands print a short human-readable report to stdout and exit with a
non-zero status when a property is violated / a bug is found, so they can be
scripted.  The exception is ``campaign``, whose *purpose* is catching mutants:
it exits 0 when the sweep completes (however many mutants were violated) and
non-zero only when the sweep cannot be trusted — jobs crashed, the unmutated
reference circuit itself violates the specification, or the configuration is
invalid; read the violation counts from its JSONL report.  ``campaign`` streams one JSON line
per verified mutant into that report file and caches verdicts on disk, so
re-running the same campaign is nearly free.

``campaign`` has two shapes.  With ``--family`` it sweeps mutants of ONE
family instance (the PR-1 workflow).  With ``--matrix <spec.toml>``, inline
``--families``/``--sizes``/``--modes`` flags, or ``--resume <id>`` it runs a
whole benchmark *matrix*: every (family, size, mode) cell becomes its own
campaign, cells run cheapest-first over a shared worker pool, per-cell JSONL
reports land under ``--report-dir``, and progress checkpoints into a resumable
manifest (``--manifest-dir``) keyed by the campaign id printed at the start.
Interrupt a sweep with Ctrl-C and ``campaign --resume <id>`` finishes it
without re-verifying completed cells.  ``campaign ls`` lists every manifest in
the manifest directory with its per-verdict cell counts, the owner and
heartbeat age of the freshest running lease, the maximum per-cell attempt
count, and whether ``--resume`` would pick up remaining work.

A running matrix sweep is also a **distributed campaign** (see
``docs/distributed.md``): the scheduler claims every cell through a
lease-based job queue next to the manifest, so ``campaign --join <id>`` from
any process sharing the manifest directory attaches as an extra worker —
it drains claimable cells, writes its own per-cell JSONL reports, and
publishes idempotent completion records the coordinating sweep merges into
the manifest and ``summary.json``.  Kill a joiner at any point: its leases
expire (``$AUTOQ_REPRO_LEASE_TTL``, immediately for a dead same-host pid)
and the surviving workers steal and finish its cells.

``verify`` and ``campaign`` accept ``--profile``, which prints the per-phase
engine breakdown (tag/terms/bin/untag for the composition pipeline, plus
permutation, reduce, and on-disk store time) after the run; campaign JSONL
records always carry the same breakdown under ``statistics.phase_seconds``.

Campaigns additionally share a cross-process **automaton store** (see
``docs/caching.md``): reduced gate applications are content-addressed on disk
under ``$AUTOQ_REPRO_CACHE_DIR/store`` (or ``~/.cache/autoq-repro/store``) so
pool workers — and entirely separate campaign runs — reuse each other's
circuit prefixes.  ``--store-dir`` relocates it, ``--no-store`` disables it
for one run, and the ``cache`` subcommand (``stats`` / ``gc --max-bytes`` /
``clear``) inspects and maintains it.

``fuzz`` (see ``docs/fuzzing.md``) differentially fuzzes the engine itself:
seeded mutant circuits are checked across all engine modes against the exact
simulator baselines, and the boolean TA layer against brute-force tree
enumeration.  Every divergence is shrunk to a local minimum and stored as a
content-addressed JSON entry in the ``--corpus`` directory (default:
``$AUTOQ_REPRO_FUZZ_CORPUS`` when set); ``fuzz replay <dir>`` re-executes
every committed entry as a regression gate, as does ``campaign --corpus``
before paying for a mutant sweep.  ``fuzz`` exits non-zero exactly when a
divergence (or replay regression) was found.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from .api import (
    BugHuntProblem,
    CampaignProblem,
    CircuitSource,
    ConditionSpec,
    EquivalenceProblem,
    ErrorResult,
    FuzzProblem,
    Session,
    SessionConfig,
    SimulateProblem,
    ToolResult,
    VerifyProblem,
)
from .baselines import (
    PathSumChecker,
    RandomStimuliChecker,
    StabilizerChecker,
    check_unitary_equivalence,
)
from .benchgen import build_family, family_names
from .campaign import (
    CampaignManifest,
    ManifestError,
    MatrixSpec,
    default_cache_dir,
    default_manifest_dir,
    format_cell_table,
    list_campaign_ids,
)
from .campaign.plan import MUTATION_KINDS
from .circuits import inject_random_gate, load_qasm_file, save_qasm_file
from .circuits.metrics import summarise as circuit_summary
from .core import AnalysisMode
from .ta.kernel import backend_names as kernel_backend_names
from .ta.store import AutomatonStore, default_store_dir
from .ta.timbuk import save_timbuk

__all__ = ["main", "build_parser"]


def _add_json_flag(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--json", action="store_true",
        help="print the versioned machine-readable result document "
             "(api_version-stamped JSON, see docs/api.md) instead of the text report",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse command-line parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="autoq-repro",
        description="Automata-based verification and bug hunting for quantum circuits",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify = subparsers.add_parser("verify", help="verify a generated benchmark family")
    verify.add_argument("--family", choices=family_names(), required=True)
    verify.add_argument("--size", type=int, required=True, help="family parameter n")
    verify.add_argument("--mode", choices=AnalysisMode.ALL, default=AnalysisMode.HYBRID)
    verify.add_argument("--profile", action="store_true",
                        help="print the per-phase engine breakdown (tag/terms/bin/reduce)")

    simulate = subparsers.add_parser("simulate", help="exact simulation of one basis input")
    simulate.add_argument("circuit", help="OpenQASM 2.0 file")
    simulate.add_argument("--input", default=None, help="basis input bits (default all zeros)")

    equivalence = subparsers.add_parser(
        "equivalence", help="compare the output-state sets of two circuits over all basis inputs"
    )
    equivalence.add_argument("first", help="OpenQASM 2.0 file")
    equivalence.add_argument("second", help="OpenQASM 2.0 file")
    equivalence.add_argument("--mode", choices=AnalysisMode.ALL, default=AnalysisMode.HYBRID)
    equivalence.add_argument(
        "--single-input", default=None, help="restrict the comparison to one basis input"
    )

    bughunt = subparsers.add_parser("bughunt", help="incremental bug hunt between two circuits")
    bughunt.add_argument("first", help="OpenQASM 2.0 file (reference)")
    bughunt.add_argument("second", nargs="?", default=None, help="OpenQASM 2.0 file (candidate)")
    bughunt.add_argument("--inject-seed", type=int, default=None,
                         help="mutate the reference instead of reading a second file")
    bughunt.add_argument("--mode", choices=AnalysisMode.ALL, default=AnalysisMode.HYBRID)
    bughunt.add_argument("--seed", type=int, default=0)
    bughunt.add_argument("--max-iterations", type=int, default=None)

    generate = subparsers.add_parser("generate", help="dump a benchmark circuit as OpenQASM 2.0")
    generate.add_argument("--family", choices=family_names(), required=True)
    generate.add_argument("--size", type=int, required=True, help="family parameter n")
    generate.add_argument("output", help="path of the QASM file to write")

    inject = subparsers.add_parser("inject", help="write a copy with one random extra gate")
    inject.add_argument("circuit", help="OpenQASM 2.0 file")
    inject.add_argument("output", help="path of the mutated QASM file to write")
    inject.add_argument("--seed", type=int, default=0)

    stats = subparsers.add_parser("stats", help="print a circuit summary and gate histogram")
    stats.add_argument("circuit", help="OpenQASM 2.0 file")

    export_ta = subparsers.add_parser(
        "export-ta", help="dump a benchmark pre- or post-condition automaton in Timbuk format"
    )
    export_ta.add_argument("--family", choices=family_names(), required=True)
    export_ta.add_argument("--size", type=int, required=True, help="family parameter n")
    export_ta.add_argument("--which", choices=("pre", "post"), default="pre")
    export_ta.add_argument("output", help="path of the Timbuk file to write")

    baselines = subparsers.add_parser(
        "baselines", help="run every baseline equivalence checker on a pair of circuits"
    )
    baselines.add_argument("first", help="OpenQASM 2.0 file")
    baselines.add_argument("second", help="OpenQASM 2.0 file")
    baselines.add_argument("--stimuli", type=int, default=16, help="number of random stimuli")
    baselines.add_argument("--seed", type=int, default=0)

    campaign = subparsers.add_parser(
        "campaign",
        help="parallel bug-hunting campaign: sweep mutants of one family, or a whole "
             "families x sizes x modes matrix (--matrix / --families / --resume); "
             "'campaign ls' lists the manifests",
    )
    campaign.add_argument("action", nargs="?", choices=("ls",), default=None,
                          help="'ls' lists every campaign manifest (cells by verdict, "
                               "resumability) instead of running a sweep")
    campaign.add_argument("--family", choices=family_names(), default=None,
                          help="single-campaign mode: the one family to sweep")
    campaign.add_argument("--size", type=int, default=None,
                          help="family parameter n (default: a per-family campaign size)")
    campaign.add_argument("--mutants", type=int, default=None,
                          help="mutated copies to verify, per family instance "
                               "(default: 100, or 25 per matrix cell)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes (1 = run everything in-process)")
    campaign.add_argument("--mode", choices=AnalysisMode.ALL, default=AnalysisMode.HYBRID,
                          help="engine mode for single-campaign mode (matrix sweeps "
                               "use --modes)")
    campaign.add_argument("--seed", type=int, default=None,
                          help="base seed of the mutation plan (default 0)")
    campaign.add_argument("--mutations", default=None,
                          help=f"comma-separated mutation kinds from {MUTATION_KINDS} "
                               "(default: insert)")
    campaign.add_argument("--report", default="campaign_report.jsonl",
                          help="single-campaign JSONL report path (one line per job)")
    campaign.add_argument("--cache-dir", default=None,
                          help="result cache directory (default: $AUTOQ_REPRO_CACHE_DIR "
                               "or ~/.cache/autoq-repro/campaign)")
    campaign.add_argument("--no-cache", action="store_true",
                          help="disable the persistent result cache (and the automaton "
                               "store, unless --store-dir is given) for this run")
    campaign.add_argument("--store-dir", default=None,
                          help="cross-process automaton store directory shared by all "
                               "workers (default: <cache-dir>/store, i.e. "
                               "$AUTOQ_REPRO_CACHE_DIR/store or "
                               "~/.cache/autoq-repro/store)")
    campaign.add_argument("--no-store", action="store_true",
                          help="disable the cross-process automaton store for this run")
    campaign.add_argument("--skip-reference", action="store_true",
                          help="do not verify the unmutated reference circuit")
    campaign.add_argument("--matrix", metavar="SPEC", default=None,
                          help="matrix mode: sweep spec file (TOML or JSON; see "
                               "examples/matrix_sweep.toml)")
    campaign.add_argument("--families", default=None,
                          help="matrix mode: comma-separated families to sweep "
                               "(overrides the spec file)")
    campaign.add_argument("--sizes", default=None,
                          help="matrix mode: sizes for every family, e.g. '3', '2-4' "
                               "or '2,4' (per-family sizes: use a spec file)")
    campaign.add_argument("--modes", default=None,
                          help="matrix mode: comma-separated engine modes "
                               f"from {AnalysisMode.ALL}")
    campaign.add_argument("--join", metavar="ID", default=None,
                          help="attach to the campaign with this id as an extra fabric "
                               "worker: claim cells from its lease queue, publish "
                               "completions, never touch the manifest (the coordinating "
                               "sweep merges them; see docs/distributed.md)")
    campaign.add_argument("--resume", metavar="ID", default=None,
                          help="resume the campaign with this id: completed cells are "
                               "skipped, interrupted ones re-queued")
    campaign.add_argument("--campaign-id", default=None,
                          help="matrix mode: explicit campaign id (default: derived "
                               "from the spec fingerprint)")
    campaign.add_argument("--report-dir", default="campaign_reports",
                          help="matrix mode: directory for per-cell JSONL reports and "
                               "the summary.json roll-up")
    campaign.add_argument("--manifest-dir", default=None,
                          help="matrix mode: manifest directory (default: "
                               "$AUTOQ_REPRO_MANIFEST_DIR or "
                               "~/.cache/autoq-repro/manifests)")
    campaign.add_argument("--profile", action="store_true",
                          help="print the aggregated per-phase engine breakdown of the "
                               "sweep (freshly verified jobs only)")
    campaign.add_argument("--corpus", default=None, metavar="DIR",
                          help="single-campaign mode: replay this fuzz regression corpus "
                               "as a gate before the sweep (default: "
                               "$AUTOQ_REPRO_FUZZ_CORPUS when set); any replay failure "
                               "fails the campaign")
    campaign.add_argument("--faults", default=None, metavar="PLAN",
                          help="deterministic fault-injection plan for chaos testing: "
                               "inline JSON (starts with '{') or a JSON plan file "
                               "(default: $AUTOQ_REPRO_FAULTS when set; see "
                               "docs/robustness.md)")

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing of the engine: seeded mutants checked across "
             "modes against exact baselines, boolean TA layer against brute "
             "force; 'fuzz replay <dir>' re-verifies the regression corpus",
    )
    fuzz.add_argument("action", nargs="?", choices=("replay",), default=None,
                      help="'replay' re-executes every corpus entry as a regression "
                           "gate instead of fuzzing")
    fuzz.add_argument("corpus_path", nargs="?", default=None,
                      help="replay: the corpus directory to re-verify (default: "
                           "--corpus / $AUTOQ_REPRO_FUZZ_CORPUS)")
    fuzz.add_argument("--budget", type=float, default=10.0,
                      help="fuzzing time budget in seconds (default 10)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="run seed; the whole case stream is deterministic under it")
    fuzz.add_argument("--cases", type=int, default=None,
                      help="stop after this many cases even if budget remains")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="store minimized divergences in this corpus directory "
                           "(default: $AUTOQ_REPRO_FUZZ_CORPUS when set)")
    fuzz.add_argument("--checks", default=None,
                      help="comma-separated oracle families from "
                           "('boolean', 'cross-mode', 'kernel-parity') "
                           "(default: boolean + cross-mode)")
    fuzz.add_argument("--modes", default=None,
                      help="comma-separated engine modes for the cross-mode oracle "
                           f"from {AnalysisMode.ALL} (default: all)")
    fuzz.add_argument("--mutations", default=None,
                      help=f"comma-separated mutation kinds from {MUTATION_KINDS} "
                           "(default: the full taxonomy)")
    fuzz.add_argument("--max-qubits", type=int, default=4,
                      help="largest seed-circuit width to generate (default 4)")
    fuzz.add_argument("--max-gates", type=int, default=10,
                      help="largest seed-circuit gate count to generate (default 10)")
    fuzz.add_argument("--path-sum", action="store_true",
                      help="also evaluate the (slow) path-sum baseline in the "
                           "cross-mode oracle")

    cache = subparsers.add_parser(
        "cache",
        help="inspect and maintain the on-disk caches: 'stats' reports the "
             "automaton store and campaign result cache, 'gc' shrinks the store "
             "to a byte budget, 'clear' drops every store entry",
    )
    cache.add_argument("action", choices=("stats", "gc", "clear"),
                       help="stats: usage report; gc: evict least-recently-used "
                            "store entries down to --max-bytes; clear: delete "
                            "every automaton-store entry")
    cache.add_argument("--store-dir", default=None,
                       help="automaton store directory (default: "
                            "$AUTOQ_REPRO_CACHE_DIR/store or "
                            "~/.cache/autoq-repro/store)")
    cache.add_argument("--cache-dir", default=None,
                       help="campaign result cache directory, reported by 'stats' "
                            "(default: $AUTOQ_REPRO_CACHE_DIR or "
                            "~/.cache/autoq-repro/campaign)")
    cache.add_argument("--max-bytes", type=int, default=None,
                       help="gc: target store size in bytes (required for gc)")

    serve = subparsers.add_parser(
        "serve",
        help="run the verification service daemon: answer problem documents "
             "over HTTP + JSON from one warm runtime (see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: loopback only)")
    serve.add_argument("--port", type=int, default=8642,
                       help="TCP port (0 binds an OS-assigned port, printed at startup)")
    serve.add_argument("--workers", type=int, default=4,
                       help="request worker threads sharing the warm runtime")
    serve.add_argument("--timeout", type=float, default=300.0,
                       help="per-request seconds before the daemon answers 504 "
                            "(the work still runs to completion)")
    serve.add_argument("--max-in-flight", type=int, default=8,
                       help="admission budget: concurrent requests beyond this "
                            "are refused with 429")
    serve.add_argument("--cache-dir", default=None,
                       help="campaign result cache directory (default: "
                            "$AUTOQ_REPRO_CACHE_DIR or ~/.cache/autoq-repro/campaign)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the campaign result cache (and the automaton "
                            "store, unless --store-dir is given)")
    serve.add_argument("--store-dir", default=None,
                       help="cross-process automaton store warmed by every request "
                            "(default: <cache-dir>/store)")
    serve.add_argument("--no-store", action="store_true",
                       help="disable the cross-process automaton store")

    for subparser in subparsers.choices.values():
        _add_json_flag(subparser)
    for name in ("verify", "simulate", "equivalence", "bughunt", "campaign"):
        subparsers.choices[name].add_argument(
            "--server", metavar="URL", default=None,
            help="send this problem to a running 'serve' daemon instead of "
                 "analysing in-process (default: $AUTOQ_REPRO_SERVER when set)",
        )
    for name in ("verify", "simulate", "equivalence", "bughunt", "campaign", "fuzz"):
        subparsers.choices[name].add_argument(
            "--kernel", choices=(*kernel_backend_names(), "auto"), default=None,
            help="TA kernel backend for this run (default: $AUTOQ_REPRO_KERNEL "
                 "or auto-detection; 'numpy' requires numpy)",
        )
    return parser


def _format_phases(phase_seconds) -> str:
    """Render a per-phase timing dict as ``name=1.234s`` pairs, slowest first."""
    if not phase_seconds:
        return "(no per-phase timings recorded)"
    ordered = sorted(phase_seconds.items(), key=lambda item: (-item[1], item[0]))
    return "  ".join(f"{name}={seconds:.3f}s" for name, seconds in ordered)


def _emit(result) -> int:
    """Shared ``--json`` tail: print the document, return the result's exit code."""
    print(result.to_json())
    return result.exit_code


def _fail(args, error: str, message: str, code: int = 2) -> int:
    """Uniform failure tail for every subcommand error path.

    Under ``--json`` prints a versioned ``error`` envelope on stdout (machine
    callers never parse stderr); otherwise the classic ``error: …`` stderr
    line.  Returns the exit code either way.
    """
    if getattr(args, "json", False):
        return _emit(ErrorResult(error=error, message=message, code=code))
    print(f"error: {message}", file=sys.stderr)
    return code


def _resolve_server(args) -> Optional[str]:
    """The daemon URL this invocation should use: --server, else the env."""
    server = getattr(args, "server", None)
    if server:
        return server
    from .api.client import default_server_url

    return default_server_url()


def _run_remote(args, server: str, problem):
    """Run ``problem`` on the daemon at ``server``.

    Returns the typed result on success, or an ``int`` exit code after a
    failure (the error envelope / stderr line is already emitted — the
    daemon's error document is relayed verbatim under ``--json``).
    """
    from .api.client import ServiceClient, ServiceError

    client = ServiceClient(server)
    try:
        if isinstance(problem, CampaignProblem):
            on_record = None
            if not args.json:
                def on_record(record):
                    print(f"  [{record['job_id']}] {record['verdict']}")
            return client.run_campaign(problem, on_record=on_record)
        return client.run(problem)
    except ServiceError as error:
        if args.json:
            return _emit(error.result)
        print(f"error: {error}", file=sys.stderr)
        return error.result.exit_code


def _answer(args, problem):
    """Typed result for a problem — locally, or on the daemon ``--server``
    names.  Callers must treat an ``int`` return as an already-reported
    failure exit code."""
    server = _resolve_server(args)
    if server is not None:
        return _run_remote(args, server, problem)
    with _session(args) as session:
        return session.run(problem)


def _parse_fault_plan(value):
    """A ``--faults`` value as a :class:`~repro.faults.FaultPlan`:
    inline JSON when the value starts with ``{``, else a plan file path."""
    if not value:
        return None
    from .faults import FaultPlan

    value = value.strip()
    if value.startswith("{"):
        return FaultPlan.from_json(value)
    return FaultPlan.from_file(value)


def _session(args, **overrides) -> Session:
    """Build the session from the runtime-configuration flags a command has."""
    config = SessionConfig(
        cache_dir="" if getattr(args, "no_cache", False) else getattr(args, "cache_dir", None),
        store_dir="" if getattr(args, "no_store", False) else getattr(args, "store_dir", None),
        workers=getattr(args, "workers", 1),
        profile=getattr(args, "profile", False),
        manifest_dir=getattr(args, "manifest_dir", None),
        report_dir=getattr(args, "report_dir", "campaign_reports"),
        fault_plan=_parse_fault_plan(getattr(args, "faults", None)),
        kernel_backend=getattr(args, "kernel", None),
    )
    from dataclasses import replace

    return Session(replace(config, **overrides) if overrides else config)


# --------------------------------------------------------------- problem runs


def _command_verify(args) -> int:
    problem = VerifyProblem(
        circuit=CircuitSource.from_family(args.family, args.size), mode=args.mode
    )
    result = _answer(args, problem)
    if isinstance(result, int):
        return result
    if args.json:
        return _emit(result)
    print(f"benchmark: {result.benchmark} ({result.description})")
    print(f"circuit:   {result.circuit_qubits} qubits, {result.circuit_gates} gates")
    print(f"pre  TA:   {result.precondition_summary}")
    print(f"output TA: {result.output_summary}")
    print(f"analysis:  {result.statistics.analysis_seconds:.2f}s, "
          f"comparison: {result.comparison_seconds:.2f}s")
    if args.profile:
        print(f"phases:    {_format_phases(result.statistics.phase_seconds)}")
    print(f"verdict:   {'HOLDS' if result.holds else 'VIOLATED'}")
    if result.witness is not None:
        print(f"witness ({result.witness_kind}): {result.witness}")
    return result.exit_code


def _command_simulate(args) -> int:
    problem = SimulateProblem(
        circuit=CircuitSource.from_path(args.circuit), input_bits=args.input
    )
    result = _answer(args, problem)
    if isinstance(result, int):
        return result
    if args.json:
        return _emit(result)
    print(f"circuit: {result.num_qubits} qubits, {result.num_gates} gates")
    for entry in result.amplitudes:
        approx = complex(entry["approx"][0], entry["approx"][1])
        print(f"  |{entry['basis']}>  {entry['amplitude']}   ({approx:.4f})")
    return result.exit_code


def _command_equivalence(args) -> int:
    inputs = None
    if args.single_input is not None:
        inputs = ConditionSpec(kind="basis", value=args.single_input)
    problem = EquivalenceProblem(
        first=CircuitSource.from_path(args.first),
        second=CircuitSource.from_path(args.second),
        inputs=inputs,
        mode=args.mode,
    )
    result = _answer(args, problem)
    if isinstance(result, int):
        return result
    if args.json:
        return _emit(result)
    print(f"analysis: {result.analysis_seconds:.2f}s, comparison: {result.comparison_seconds:.2f}s")
    if result.non_equivalent:
        print(f"NOT EQUIVALENT ({result.witness_side}); witness: {result.witness}")
        return 1
    print("output sets coincide (circuits may be equivalent)")
    return 0


def _command_bughunt(args) -> int:
    if args.second is None and args.inject_seed is None:
        return _fail(args, "invalid-request", "provide a second circuit or --inject-seed")
    problem = BugHuntProblem(
        reference=CircuitSource.from_path(args.first),
        candidate=None if args.second is None else CircuitSource.from_path(args.second),
        inject_seed=args.inject_seed if args.second is None else None,
        mode=args.mode,
        seed=args.seed,
        max_iterations=args.max_iterations,
    )
    result = _answer(args, problem)
    if isinstance(result, int):
        return result
    if args.json:
        return _emit(result)
    if result.injected_mutation is not None:
        print(f"injected bug: {result.injected_mutation}")
    print(f"iterations: {result.iterations}, time: {result.total_seconds:.2f}s")
    if result.bug_found:
        print(f"BUG FOUND; witness ({result.witness_side}): {result.witness}")
        return 1
    print("no difference found within the iteration budget")
    return 0


# ------------------------------------------------------------- tool commands


def _command_generate(args) -> int:
    benchmark = build_family(args.family, args.size)
    save_qasm_file(benchmark.circuit, args.output)
    result = ToolResult(tool="generate", data={
        "benchmark": benchmark.name,
        "family": args.family,
        "size": args.size,
        "qubits": benchmark.circuit.num_qubits,
        "gates": benchmark.circuit.num_gates,
        "output": args.output,
    })
    if args.json:
        return _emit(result)
    print(f"wrote {benchmark.name}: {benchmark.circuit.num_qubits} qubits, "
          f"{benchmark.circuit.num_gates} gates -> {args.output}")
    return 0


def _command_inject(args) -> int:
    circuit = load_qasm_file(args.circuit)
    mutated, mutation = inject_random_gate(circuit, seed=args.seed)
    save_qasm_file(mutated, args.output)
    result = ToolResult(tool="inject", data={
        "mutation": str(mutation),
        "seed": args.seed,
        "gates": mutated.num_gates,
        "output": args.output,
    })
    if args.json:
        return _emit(result)
    print(f"injected bug: {mutation}")
    print(f"wrote mutated circuit ({mutated.num_gates} gates) -> {args.output}")
    return 0


def _command_stats(args) -> int:
    circuit = load_qasm_file(args.circuit)
    summary = circuit_summary(circuit)
    if args.json:
        return _emit(ToolResult(tool="stats", data={"circuit": args.circuit, **summary}))
    print(f"circuit:  {args.circuit}")
    print(f"qubits:   {summary['qubits']}")
    print(f"gates:    {summary['gates']}", end="")
    if summary["gates_decomposed"] != summary["gates"]:
        print(f"  ({summary['gates_decomposed']} after swap/cswap decomposition)")
    else:
        print()
    print(f"depth:    {summary['depth']}")
    print(f"T-count:  {summary['t_count']}   two-qubit gates: {summary['two_qubit_count']}")
    for kind, count in summary["histogram"].items():
        print(f"  {kind:<6} {count}")
    print(f"gates handled by the permutation-based encoding:  {summary['permutation_gates']}")
    print(f"gates needing the composition-based encoding:     {summary['composition_gates']}")
    return 0


def _command_export_ta(args) -> int:
    benchmark = build_family(args.family, args.size)
    automaton = benchmark.precondition if args.which == "pre" else benchmark.postcondition
    save_timbuk(automaton, args.output, name=f"{args.family}_{args.size}_{args.which}")
    result = ToolResult(tool="export-ta", data={
        "benchmark": benchmark.name,
        "which": args.which,
        "summary": automaton.size_summary(),
        "states": automaton.num_states,
        "transitions": automaton.num_transitions,
        "output": args.output,
    })
    if args.json:
        return _emit(result)
    print(f"wrote {args.which}-condition TA of {benchmark.name} "
          f"({automaton.size_summary()}) -> {args.output}")
    return 0


def _command_baselines(args) -> int:
    first = load_qasm_file(args.first)
    second = load_qasm_file(args.second)
    data = {}
    any_difference = False

    pathsum = PathSumChecker().check_equivalence(first, second)
    data["pathsum"] = pathsum.verdict
    stabilizer = StabilizerChecker().check_equivalence(first, second)
    data["stabilizer"] = {"verdict": stabilizer.verdict.value, "reason": stabilizer.reason}
    stimuli = RandomStimuliChecker(num_stimuli=args.stimuli, seed=args.seed).check_equivalence(
        first, second
    )
    data["stimuli"] = stimuli.verdict
    data["unitary"] = None
    if max(first.num_qubits, second.num_qubits) <= 10:
        unitary = check_unitary_equivalence(first, second)
        data["unitary"] = "equal" if unitary.equivalent else "not_equal"
        any_difference |= not unitary.equivalent
    any_difference |= pathsum.verdict == "not_equal"
    any_difference |= stabilizer.verdict.value == "not_equal"
    any_difference |= stimuli.verdict == "not_equal"
    data["any_difference"] = any_difference
    if args.json:
        return _emit(ToolResult(tool="baselines", data=data))
    print(f"path-sum:    {data['pathsum']}")
    print(f"stabilizer:  {data['stabilizer']['verdict']} ({data['stabilizer']['reason']})")
    print(f"stimuli:     {data['stimuli']}")
    if data["unitary"] is not None:
        print(f"unitary:     {data['unitary']}")
    return 1 if any_difference else 0


def _command_cache(args) -> int:
    """``cache stats`` / ``cache gc --max-bytes`` / ``cache clear``."""
    store_dir = args.store_dir or default_store_dir()
    if args.action == "gc" and args.max_bytes is None:
        return _fail(args, "invalid-request", "cache gc needs --max-bytes <target size>")
    if args.action == "stats":
        # pure inspection: must not create directories, nor trigger the
        # schema-stamp invalidation that opening a store performs
        stats = AutomatonStore.disk_stats(store_dir)
        cache_dir = args.cache_dir or default_cache_dir()
        try:
            result_entries = sum(
                1 for name in os.listdir(cache_dir) if name.endswith(".json")
            )
        except OSError:
            result_entries = 0
        if args.json:
            return _emit(ToolResult(tool="cache-stats", data={
                "store": stats,
                "result_cache": {"directory": cache_dir, "entries": result_entries},
            }))
        print(f"store:        {stats['directory']}")
        print(f"schema:       store v{stats['store_schema']}, payload v{stats['payload_schema']}")
        if stats["disk_stamp"] is not None and stats["disk_stamp"] != {
            "store_schema": stats["store_schema"],
            "payload_schema": stats["payload_schema"],
        }:
            print(f"stamp:        {stats['disk_stamp']} (INCOMPATIBLE — next open wipes "
                  "the entries)")
        print(f"entries:      {stats['entries']} ({stats['total_bytes']} bytes"
              + (f", {stats['temp_files']} orphaned temp file(s)"
                 if stats["temp_files"] else "") + ")")
        if stats.get("quarantined_entries"):
            print(f"quarantine:   {stats['quarantined_entries']} corrupt entry(ies) "
                  "set aside (see <store>/quarantine/)")
        print(f"result cache: {cache_dir} ({result_entries} entry(ies))")
        return 0
    try:
        store = AutomatonStore(store_dir)
    except OSError as error:
        return _fail(args, "os-error", f"cannot open store {store_dir!r}: {error}")
    if args.action == "gc":
        outcome = store.gc(args.max_bytes)
        if args.json:
            return _emit(ToolResult(tool="cache-gc", data={
                "store": store_dir, "budget_bytes": args.max_bytes, **outcome,
            }))
        print(f"store:    {store_dir}")
        print(f"evicted:  {outcome['removed_entries']} entry(ies) "
              f"({outcome['removed_bytes']} bytes)")
        print(f"remains:  {outcome['remaining_bytes']} bytes "
              f"(budget {args.max_bytes})")
        return 0
    removed = store.clear()
    if args.json:
        return _emit(ToolResult(tool="cache-clear", data={
            "store": store_dir, "removed_entries": removed,
        }))
    print(f"store:    {store_dir}")
    print(f"cleared:  {removed} entry(ies)")
    return 0


# ----------------------------------------------------------------- campaigns


def _matrix_spec_from_args(args):
    """Assemble (spec, campaign_id, resume?) from a spec file, inline flags,
    and/or a manifest to resume (flags override the file; a bare ``--resume``
    rebuilds the spec from the manifest alone)."""
    overrides = {
        "families": args.families,
        "sizes": args.sizes,
        "modes": args.modes,
        "mutants": args.mutants,
        "mutations": args.mutations,
        "seed": args.seed,
    }
    overrides = {key: value for key, value in overrides.items() if value is not None}
    if args.skip_reference:
        overrides["include_reference"] = False

    if args.matrix is None and "families" not in overrides:
        # no spec source except the manifest: plain resume
        if args.resume is None:
            raise ValueError(
                "campaign needs --family (single sweep), or --matrix/--families "
                "(matrix sweep), or --resume <id>"
            )
        if overrides:
            raise ValueError(
                f"cannot change {sorted(overrides)} while resuming from a manifest "
                "alone; pass the original --matrix spec if you must re-check it"
            )
        return None, args.resume, True

    if args.campaign_id and args.resume and args.campaign_id != args.resume:
        raise ValueError(
            f"--campaign-id {args.campaign_id!r} conflicts with --resume "
            f"{args.resume!r}; pass a single id"
        )
    mapping = MatrixSpec.from_file(args.matrix).to_dict() if args.matrix else {}
    mapping.update(overrides)
    spec = MatrixSpec.from_mapping(mapping)
    campaign_id = args.campaign_id or args.resume
    return spec, campaign_id, args.resume is not None


def _command_campaign_matrix(args) -> int:
    progress = (lambda message: None) if args.json else print
    try:
        spec, campaign_id, resume = _matrix_spec_from_args(args)
        with _session(args) as session:
            if spec is None:
                scheduler = session.resume_matrix_scheduler(campaign_id)
            else:
                scheduler = session.matrix_scheduler(spec, campaign_id=campaign_id)
            progress(f"campaign:  {scheduler.campaign_id} "
                     f"({len(scheduler.spec.cells())} cell(s), {args.workers} worker(s))")
            progress(f"manifest:  {scheduler.manifest_dir}")
            for family, mode in scheduler.spec.skipped_combinations():
                print(f"warning:   skipping {family} x {mode} (unsupported mode)",
                      file=sys.stderr)
            result = scheduler.run(resume=resume, progress=progress,
                                   runtime=session.runtime)
    except ManifestError as error:
        return _fail(args, "manifest-error", str(error))
    except ValueError as error:
        return _fail(args, "invalid-request", str(error))
    except OSError as error:
        return _fail(args, "os-error",
                     f"cannot write report, cache, or manifest: {error}")
    exit_code = 0 if result.trustworthy else 1
    if args.json:
        return _emit(ToolResult(tool="campaign-matrix", data={
            "campaign_id": result.campaign_id,
            "manifest_path": result.manifest_path,
            "summary_path": result.summary_path,
            "cells": result.rows,
            "totals": result.totals,
            "reused_cells": result.reused_cells,
            "skipped_combinations": [list(pair) for pair in result.skipped_combinations],
            "wall_seconds": result.wall_seconds,
            "trustworthy": result.trustworthy,
        }))
    print(format_cell_table(result.rows, result.totals))
    if result.reused_cells:
        print(f"resumed:   {result.reused_cells} cell(s) reused from the manifest")
    if result.totals.get("store_hits") or result.totals.get("store_publishes"):
        print(f"store:     {result.totals['store_hits']} hit(s), "
              f"{result.totals['store_misses']} miss(es), "
              f"{result.totals['store_publishes']} publish(es)")
    if (result.totals.get("faults_injected") or result.totals.get("retries")
            or result.totals.get("quarantined_entries")
            or result.totals.get("store_disabled")):
        degraded = (", store DISABLED after repeated faults"
                    if result.totals.get("store_disabled") else "")
        print(f"faults:    {result.totals.get('faults_injected', 0)} injected, "
              f"{result.totals.get('retries', 0)} retry(ies), "
              f"{result.totals.get('quarantined_entries', 0)} quarantined{degraded}")
    if session.config.profile:
        phase_totals: dict = {}
        for row in result.rows:
            for phase, seconds in (row.get("phase_seconds") or {}).items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + seconds
        print(f"phases:    {_format_phases(phase_totals)}")
    print(f"time:      {result.wall_seconds:.2f}s wall this run")
    print(f"reports:   {result.summary_path}")
    for row in result.rows:
        if row["reference_violated"]:
            print(f"warning:   {row['cell']}: the UNMUTATED reference circuit violates "
                  "the specification — its mutant verdicts are suspect", file=sys.stderr)
    return exit_code


def _command_campaign_join(args) -> int:
    """``campaign --join <id>``: drain an existing campaign's fabric queue."""
    progress = (lambda message: None) if args.json else print
    try:
        with _session(args) as session:
            scheduler = session.join_matrix_scheduler(args.join)
            progress(f"join:      {scheduler.campaign_id} as worker "
                     f"{os.getpid()} ({args.workers} worker(s))")
            progress(f"manifest:  {scheduler.manifest_dir}")
            result = scheduler.run_join(progress=progress, runtime=session.runtime)
    except ManifestError as error:
        return _fail(args, "manifest-error", str(error))
    except ValueError as error:
        return _fail(args, "invalid-request", str(error))
    except OSError as error:
        return _fail(args, "os-error",
                     f"cannot write report, cache, or queue files: {error}")
    exit_code = 0 if result.trustworthy else 1
    if args.json:
        return _emit(ToolResult(tool="campaign-join", data={
            "campaign_id": result.campaign_id,
            "manifest_path": result.manifest_path,
            "queue_dir": result.queue_dir,
            "cells": result.rows,
            "totals": result.totals,
            "counters": result.counters,
            "cells_executed": result.cells_executed,
            "wall_seconds": result.wall_seconds,
            "trustworthy": result.trustworthy,
        }))
    if result.rows:
        print(format_cell_table(result.rows, result.totals))
    else:
        print("no claimable cells: the campaign is complete or every "
              "remaining cell is held by another live worker")
    counters = result.counters
    print(f"fabric:    {counters.get('cells_claimed', 0)} claim(s), "
          f"{counters.get('cells_stolen', 0)} stolen, "
          f"{counters.get('lease_renewals', 0)} renewal(s), "
          f"{counters.get('duplicates', 0)} duplicate completion(s), "
          f"{counters.get('conflicts', 0)} conflict(s)")
    print(f"time:      {result.wall_seconds:.2f}s wall this run")
    if counters.get("conflicts"):
        print("warning:   conflicting completion fingerprints — deterministic "
              "verification should make this impossible; inspect the queue "
              f"records under {result.queue_dir}", file=sys.stderr)
    return exit_code


def _command_campaign_ls(args) -> int:
    """``campaign ls``: list every manifest with cell counts by verdict."""
    directory = args.manifest_dir or default_manifest_dir()
    campaign_ids = list_campaign_ids(directory)
    listing = []
    unreadable = []
    for campaign_id in campaign_ids:
        try:
            manifest = CampaignManifest.load(directory, campaign_id)
        except ManifestError as error:
            unreadable.append((campaign_id, str(error)))
            continue
        progress = manifest.progress()
        totals = manifest.verdict_totals()
        leases = manifest.lease_overview()
        listing.append({
            "campaign_id": campaign_id,
            "cells_done": progress["done"],
            "cells_total": len(manifest.cells),
            "cells_running": progress["running"],
            "cells_pending": progress["pending"],
            "complete": manifest.is_complete(),
            # fabric/lease columns: who holds the freshest running lease,
            # how stale its heartbeat is, and the worst per-cell claim count
            "owner": leases["owner"],
            "heartbeat_age": leases["heartbeat_age"],
            "owner_live": leases["live"],
            "attempts": leases["attempts"],
            **totals,
        })
    if args.json:
        for campaign_id, error in unreadable:
            print(f"{campaign_id:<24} (unreadable: {error})", file=sys.stderr)
        return _emit(ToolResult(tool="campaign-ls", data={
            "manifest_dir": directory,
            "campaigns": listing,
            # corruption must be visible to document consumers, not stderr-only
            "unreadable": [
                {"campaign_id": campaign_id, "error": error}
                for campaign_id, error in unreadable
            ],
        }))
    print(f"manifests: {directory}")
    if not campaign_ids:
        print("(no campaign manifests)")
        return 0
    header = (f"{'campaign':<24} {'cells':>9} {'jobs':>7} {'holds':>7} "
              f"{'violated':>8} {'unsup':>6} {'errors':>6} {'owner':>16} "
              f"{'hb-age':>7} {'att':>4}  status")
    print(header)
    print("-" * len(header))
    for campaign_id, error in unreadable:
        print(f"{campaign_id:<24} (unreadable: {error})", file=sys.stderr)
    for row in listing:
        if row["complete"]:
            status = "complete"
        else:
            pieces = []
            if row["cells_running"]:
                label = "running" if row.get("owner_live") else "interrupted"
                pieces.append(f"{row['cells_running']} {label}")
            if row["cells_pending"]:
                pieces.append(f"{row['cells_pending']} pending")
            status = f"resumable ({', '.join(pieces)})"
        done_total = f"{row['cells_done']}/{row['cells_total']}"
        owner = row.get("owner") or "-"
        age = row.get("heartbeat_age")
        age_text = "-" if age is None else f"{age:.0f}s"
        print(f"{row['campaign_id']:<24} {done_total:>9} {row['jobs']:>7} "
              f"{row['holds']:>7} {row['violated']:>8} {row['unsupported']:>6} "
              f"{row['errors']:>6} {owner:>16} {age_text:>7} "
              f"{row.get('attempts', 0):>4}  {status}")
    return 0


def _command_campaign(args) -> int:
    if args.action == "ls":
        conflicting = [flag for flag, value in (
            ("--family", args.family), ("--families", args.families),
            ("--matrix", args.matrix), ("--resume", args.resume),
            ("--join", args.join),
            ("--sizes", args.sizes), ("--modes", args.modes),
            ("--mutants", args.mutants), ("--mutations", args.mutations),
            ("--corpus", args.corpus),
        ) if value is not None]
        if conflicting:
            return _fail(args, "invalid-request",
                         f"campaign ls only lists manifests; drop {', '.join(conflicting)}")
        return _command_campaign_ls(args)
    if args.join is not None:
        conflicting = [flag for flag, value in (
            ("--family", args.family), ("--families", args.families),
            ("--matrix", args.matrix), ("--resume", args.resume),
            ("--sizes", args.sizes), ("--modes", args.modes),
            ("--mutants", args.mutants), ("--mutations", args.mutations),
            ("--corpus", args.corpus), ("--campaign-id", args.campaign_id),
            ("--server", args.server),
        ) if value is not None]
        if conflicting:
            return _fail(args, "invalid-request",
                         "--join attaches to an existing campaign (its spec comes from "
                         f"the manifest); drop {', '.join(conflicting)}")
        return _command_campaign_join(args)
    if args.matrix or args.families or args.resume or args.sizes or args.modes:
        if args.family is not None:
            return _fail(args, "invalid-request",
                         "--family selects a single campaign; use --families for a "
                         "matrix sweep")
        if args.corpus is not None:
            return _fail(args, "invalid-request",
                         "--corpus gates single-family sweeps only; replay the corpus "
                         "with 'fuzz replay' before a matrix sweep")
        if args.server is not None:
            return _fail(args, "invalid-request",
                         "matrix campaigns run locally (they own a manifest on this "
                         "host); --server only supports single-family sweeps")
        return _command_campaign_matrix(args)
    if args.family is None:
        return _fail(args, "invalid-request",
                     "campaign needs --family (single sweep), or --matrix/--families "
                     "(matrix sweep), or --resume <id>")
    mutations = args.mutations if args.mutations is not None else "insert"
    kinds = tuple(kind.strip() for kind in mutations.split(",") if kind.strip())
    from .fuzz.corpus import default_corpus_dir

    corpus_dir = args.corpus or default_corpus_dir()
    try:
        problem = CampaignProblem(
            family=args.family,
            size=args.size,
            mutants=args.mutants if args.mutants is not None else 100,
            mutation_kinds=kinds,
            mode=args.mode,
            seed=args.seed if args.seed is not None else 0,
            include_reference=not args.skip_reference,
            report_path=args.report,
            corpus_dir=corpus_dir,
        )
        result = _answer(args, problem)
    except ValueError as error:
        return _fail(args, "invalid-request", str(error))
    except OSError as error:
        return _fail(args, "os-error", f"cannot write report or cache: {error}")
    if isinstance(result, int):
        return result
    if args.json:
        return _emit(result)
    print(f"campaign:  {result.benchmark} ({result.mode} mode, {result.workers} worker(s))")
    unsupported = f", unsupported: {result.unsupported}" if result.unsupported else ""
    print(f"jobs:      {result.jobs}  (holds: {result.holds}, violated: {result.violated}, "
          f"errors: {result.errors}{unsupported})")
    print(f"cache:     {result.cache_hits} hit(s)")
    if result.corpus_replayed or result.corpus_failures:
        print(f"corpus:    {result.corpus_replayed} entry(ies) replayed, "
              f"{result.corpus_failures} failed")
    if result.store_hits or result.store_misses or result.store_publishes:
        print(f"store:     {result.store_hits} hit(s), {result.store_misses} miss(es), "
              f"{result.store_publishes} publish(es)")
    if (result.faults_injected or result.retries or result.quarantined_entries
            or result.store_disabled):
        degraded = ", store DISABLED after repeated faults" if result.store_disabled else ""
        print(f"faults:    {result.faults_injected} injected, {result.retries} "
              f"retry(ies), {result.quarantined_entries} quarantined{degraded}")
    print(f"time:      {result.wall_seconds:.2f}s wall, "
          f"{result.analysis_seconds:.2f}s cumulative analysis")
    if args.profile:
        print(f"phases:    {_format_phases(result.phase_seconds)}")
    print(f"report:    {result.report_path}")
    if result.reference_violated:
        print("warning:   the UNMUTATED reference circuit violates the specification — "
              "every mutant verdict above is suspect", file=sys.stderr)
    # finding violated mutants is the campaign's purpose, but crashed jobs or a
    # broken specification mean the sweep itself cannot be trusted
    return result.exit_code


# ---------------------------------------------------------------------- fuzz


def _format_finding(row) -> str:
    """One human-readable findings line: the check, where, and what diverged."""
    pieces = [f"[{row['check']}]"]
    if row.get("mutation"):
        pieces.append(f"{row['mutation']}:")
    pieces.append(row.get("detail") or "(no detail)")
    if row.get("localised_gate") is not None:
        pieces.append(f"(localised to gate {row['localised_gate']})")
    if row.get("entry_id"):
        pieces.append(f"-> corpus {row['entry_id']}")
    return " ".join(pieces)


def _command_fuzz(args) -> int:
    """``fuzz``: budgeted differential run; ``fuzz replay <dir>``: regression gate."""
    from .fuzz.corpus import default_corpus_dir

    corpus_dir = args.corpus or default_corpus_dir()
    try:
        if args.action == "replay":
            target = args.corpus_path or corpus_dir
            if target is None:
                return _fail(args, "invalid-request",
                             "fuzz replay needs a corpus directory (positional, "
                             "--corpus, or $AUTOQ_REPRO_FUZZ_CORPUS)")
            problem = FuzzProblem(replay=True, corpus_dir=target)
        else:
            extra = {}
            if args.checks is not None:
                extra["checks"] = tuple(
                    check.strip() for check in args.checks.split(",") if check.strip()
                )
            if args.modes is not None:
                extra["modes"] = tuple(
                    mode.strip() for mode in args.modes.split(",") if mode.strip()
                )
            if args.mutations is not None:
                extra["mutation_kinds"] = tuple(
                    kind.strip() for kind in args.mutations.split(",") if kind.strip()
                )
            problem = FuzzProblem(
                budget_seconds=args.budget,
                seed=args.seed,
                max_qubits=args.max_qubits,
                max_gates=args.max_gates,
                corpus_dir=corpus_dir,
                max_cases=args.cases,
                include_path_sum=args.path_sum,
                **extra,
            )
        with _session(args) as session:
            result = session.run(problem)
    except ValueError as error:  # includes CorpusError (malformed entries)
        return _fail(args, "invalid-request", str(error))
    except OSError as error:
        return _fail(args, "os-error", f"cannot read or write the corpus: {error}")
    if args.json:
        return _emit(result)
    if result.replay:
        print(f"replayed:  {result.replayed} corpus entry(ies) "
              f"in {result.elapsed_seconds:.2f}s")
    else:
        print(f"fuzzed:    {result.cases} case(s) in {result.elapsed_seconds:.2f}s "
              f"(budget {result.budget_seconds:.0f}s, seed {result.seed})")
        print(f"triage:    {result.prefiltered} prefiltered before any automaton was built")
        if corpus_dir is not None:
            print(f"corpus:    {len(result.corpus_entries)} new entry(ies) -> {corpus_dir}")
    if result.divergences:
        label = "regressions" if result.replay else "divergences"
        print(f"{label}: {result.divergences}")
        for row in result.findings:
            print(f"  {_format_finding(row)}")
    elif result.replay:
        print("corpus clean: every entry re-verified on this tree")
    else:
        print("no divergences: every oracle agreed on every case")
    return result.exit_code


# ------------------------------------------------------------------- service


def _command_serve(args) -> int:
    """``serve``: answer problem documents over HTTP from one warm runtime."""
    import signal

    from .campaign import resolve_store_dir
    from .service import ServiceConfig, ServiceServer

    # a plain Session only attaches a store when one is named explicitly, but
    # the daemon's whole point is a warm shared cache — resolve the campaign
    # default eagerly so every request (not just campaigns) hits the store
    cache_dir = "" if args.no_cache else args.cache_dir
    store_dir = resolve_store_dir(cache_dir, "" if args.no_store else args.store_dir)
    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            request_timeout=args.timeout,
            max_in_flight=args.max_in_flight,
            session=SessionConfig(
                cache_dir=cache_dir,
                store_dir="" if store_dir is None else store_dir,
            ),
        )
    except ValueError as error:
        return _fail(args, "invalid-request", str(error))
    try:
        server = ServiceServer(config)
    except OSError as error:
        return _fail(args, "os-error",
                     f"cannot bind {args.host}:{args.port}: {error}")

    # the URL line is the daemon's startup contract: wrappers (the smoke
    # script, CI) pass --port 0 and parse it to discover the bound port
    if args.json:
        print(json.dumps({"serving": server.url}), flush=True)
    else:
        print(f"serving on {server.url}", flush=True)
        print("(ctrl-c to stop; in-flight requests drain before exit)", flush=True)

    def _on_sigterm(_signum, _frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.stop(drain=True)

    metrics = server.service.metrics
    summary = ToolResult(tool="serve", data={
        "url": server.url,
        "uptime_seconds": round(server.service.uptime_seconds, 3),
        "requests": dict(metrics.requests_total),
        "failures": dict(metrics.failures_total),
        "rejected": metrics.rejected_total,
        "timeouts": metrics.timeouts_total,
        "sse_records": metrics.sse_records_total,
    })
    if args.json:
        return _emit(summary)
    served = sum(metrics.requests_total.values())
    failed = sum(metrics.failures_total.values())
    print(f"served:    {served} request(s), {failed} failure(s), "
          f"{metrics.rejected_total} rejected")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``autoq-repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "verify": _command_verify,
        "simulate": _command_simulate,
        "equivalence": _command_equivalence,
        "bughunt": _command_bughunt,
        "generate": _command_generate,
        "inject": _command_inject,
        "stats": _command_stats,
        "export-ta": _command_export_ta,
        "baselines": _command_baselines,
        "campaign": _command_campaign,
        "fuzz": _command_fuzz,
        "cache": _command_cache,
        "serve": _command_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
