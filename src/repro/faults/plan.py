"""Deterministic, seed-driven fault injection (see ``docs/robustness.md``).

A :class:`FaultPlan` names *sites* — fixed strings the production code calls
:func:`inject` with (``store.get``, ``store.put``, ``worker.cell``,
``service.request``, ``queue.claim``) — and gives each one a
:class:`FaultSpec`: what failure
to produce (``raise``, ``crash-process``, ``corrupt-payload``, ``delay``),
how often, and for how long.  Everything is driven by a per-site
``random.Random`` seeded from ``(plan.seed, site)``, so a plan replays the
same fault schedule in every process that installs it — chaos tests assert
*verdict equality* against the fault-free run, not flakiness.

Activation paths (all equivalent):

* ``install_fault_plan(plan)`` in-process,
* ``SessionConfig(fault_plan=...)`` / ``CampaignConfig(fault_plan=...)``
  which also forward the plan to pool workers via ``initialise_worker``,
* the ``AUTOQ_REPRO_FAULTS`` environment variable — either inline JSON
  (value starts with ``{``) or a path to a JSON plan file — which is how
  the ``serve`` daemon and spawned subprocesses pick a plan up.

The module is import-cheap and dependency-free: with no plan installed,
:func:`inject` is a dictionary miss and an early return.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "active_injector",
    "corrupt_text",
    "inject",
    "install_fault_plan",
    "install_injector",
    "plan_from_env",
]

#: the failure kinds a site can be armed with
FAULT_KINDS = ("raise", "crash-process", "corrupt-payload", "delay")

#: environment variable carrying a plan (inline JSON or a file path)
FAULTS_ENV_VAR = "AUTOQ_REPRO_FAULTS"


class InjectedFault(OSError):
    """The error a ``raise``-kind fault site produces.

    Subclasses :class:`OSError` deliberately: the store treats I/O errors as
    retryable/degradable, and OSError pickles cleanly across process pools,
    so an injected fault exercises exactly the recovery paths a real torn
    disk or dead worker would.
    """

    def __init__(self, site: str, ordinal: int):
        super().__init__(f"injected fault at {site!r} (ordinal {ordinal})")
        self.site = site
        self.ordinal = ordinal

    def __reduce__(self):  # keep site/ordinal across pickling (pool workers)
        return (type(self), (self.site, self.ordinal))


@dataclass(frozen=True)
class FaultSpec:
    """One armed site: what to do, how often, and how hard.

    ``rate`` fires probabilistically per invocation (seeded, so still
    deterministic); ``every`` fires on every Nth invocation (1-based, so
    ``every=10`` hits invocations 10, 20, ...).  ``limit`` caps the total
    number of firings; ``delay_seconds`` is the sleep for ``delay`` kind.
    """

    site: str
    kind: str = "raise"
    rate: float = 0.0
    every: int = 0
    limit: Optional[int] = None
    delay_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"fault rate must be within [0, 1], got {self.rate!r}")
        if self.every < 0:
            raise ValueError(f"fault 'every' must be >= 0, got {self.every!r}")
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"fault 'limit' must be >= 0, got {self.limit!r}")
        if self.delay_seconds < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay_seconds!r}")

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
            "every": self.every,
            "limit": self.limit,
            "delay_seconds": self.delay_seconds,
        }

    @classmethod
    def from_mapping(cls, site: str, mapping: Mapping) -> "FaultSpec":
        known = {"site", "kind", "rate", "every", "limit", "delay_seconds"}
        unknown = set(mapping) - known
        if unknown:
            raise ValueError(f"fault site {site!r}: unknown keys {sorted(unknown)}")
        return cls(
            site=site,
            kind=str(mapping.get("kind", "raise")),
            rate=float(mapping.get("rate", 0.0)),
            every=int(mapping.get("every", 0)),
            limit=mapping.get("limit"),
            delay_seconds=float(mapping.get("delay_seconds", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of armed fault sites; picklable and JSON round-trippable."""

    seed: int = 0
    sites: Tuple[FaultSpec, ...] = ()

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        for spec in self.sites:
            if spec.site == site:
                return spec
        return None

    def to_dict(self) -> dict:
        return {"seed": self.seed, "sites": {spec.site: {
            key: value for key, value in spec.to_dict().items() if key != "site"
        } for spec in self.sites}}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_mapping(cls, mapping: Mapping) -> "FaultPlan":
        known = {"seed", "sites"}
        unknown = set(mapping) - known
        if unknown:
            raise ValueError(f"fault plan: unknown keys {sorted(unknown)}")
        sites_mapping = mapping.get("sites", {})
        if not isinstance(sites_mapping, Mapping):
            raise ValueError("fault plan: 'sites' must be a mapping of site -> spec")
        sites = tuple(
            FaultSpec.from_mapping(site, spec)
            for site, spec in sorted(sites_mapping.items())
        )
        return cls(seed=int(mapping.get("seed", 0)), sites=sites)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"fault plan is not valid JSON: {error}") from error
        if not isinstance(document, dict):
            raise ValueError("fault plan JSON must be an object")
        return cls.from_mapping(document)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def plan_from_env(environ: Optional[Mapping[str, str]] = None) -> Optional[FaultPlan]:
    """The plan named by ``AUTOQ_REPRO_FAULTS``: inline JSON or a file path."""
    value = (environ if environ is not None else os.environ).get(FAULTS_ENV_VAR)
    if not value:
        return None
    value = value.strip()
    if value.startswith("{"):
        return FaultPlan.from_json(value)
    return FaultPlan.from_file(value)


class FaultInjector:
    """Per-process executor of a :class:`FaultPlan`.

    Keeps one seeded RNG and invocation/injection counter pair per site, so
    the fault schedule is a pure function of ``(plan.seed, site, invocation
    ordinal)`` within a process.  Thread-safe: the daemon's worker threads
    share one injector.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._invocations: Dict[str, int] = {}
        self._injected: Dict[str, int] = {}
        self._rngs: Dict[str, random.Random] = {}

    def _rng(self, site: str) -> random.Random:
        rng = self._rngs.get(site)
        if rng is None:
            rng = self._rngs[site] = random.Random(f"{self.plan.seed}:{site}")
        return rng

    def should_fire(self, site: str) -> Optional[FaultSpec]:
        """Count one invocation of ``site``; the spec to apply if it fires."""
        spec = self.plan.spec_for(site)
        with self._lock:
            if spec is None:
                return None
            ordinal = self._invocations.get(site, 0) + 1
            self._invocations[site] = ordinal
            injected = self._injected.get(site, 0)
            if spec.limit is not None and injected >= spec.limit:
                return None
            fire = False
            if spec.every and ordinal % spec.every == 0:
                fire = True
            # drawn unconditionally so the schedule is invocation-indexed,
            # independent of whether 'every' already fired this round
            draw = self._rng(site).random()
            if spec.rate and draw < spec.rate:
                fire = True
            if not fire:
                return None
            self._injected[site] = injected + 1
            return spec

    def fire(self, site: str) -> Optional[FaultSpec]:
        """Apply the site's fault if armed: raise / crash / delay.

        Returns the spec for kinds the *caller* must apply
        (``corrupt-payload``) or that already completed (``delay``);
        ``raise`` raises :class:`InjectedFault` and ``crash-process`` does
        not return at all.
        """
        spec = self.should_fire(site)
        if spec is None:
            return None
        if spec.kind == "delay":
            if spec.delay_seconds:
                time.sleep(spec.delay_seconds)
            return spec
        if spec.kind == "raise":
            raise InjectedFault(site, self._invocations.get(site, 0))
        if spec.kind == "crash-process":
            # simulate SIGKILL: no cleanup, no atexit, no exception —
            # exactly what a dead pool worker looks like from the parent
            os._exit(137)
        return spec  # corrupt-payload: the caller mangles its own payload

    def corrupt(self, site: str, text: str) -> str:
        """Deterministically mangle ``text`` using the site's RNG."""
        with self._lock:
            rng = self._rng(site)
            return corrupt_text(text, rng)

    def counters(self) -> Dict[str, int]:
        """Injected-fault counts per site (only sites that fired)."""
        with self._lock:
            return dict(self._injected)

    def total_injected(self) -> int:
        with self._lock:
            return sum(self._injected.values())


def corrupt_text(text: str, rng: random.Random) -> str:
    """A deterministic torn/corrupt variant of ``text``.

    Alternates between truncation (a torn write) and in-place garbage (bit
    rot), both of which the store must quarantine rather than trust.
    """
    if not text:
        return "\x00corrupt"
    if rng.random() < 0.5:
        return text[: rng.randrange(0, max(1, len(text) // 2))]
    cut = rng.randrange(0, len(text))
    return text[:cut] + "\x00garbage\x00" + text[cut + 1:]


# ------------------------------------------------------------ process global

_ACTIVE_LOCK = threading.Lock()
_ACTIVE_INJECTOR: Optional[FaultInjector] = None
_ENV_CHECKED = False


def install_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultInjector]:
    """Make ``plan`` the process-wide active plan (``None`` disarms);
    returns the newly installed injector."""
    injector = None if plan is None else FaultInjector(plan)
    install_injector(injector)
    return injector


def install_injector(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Swap the process-wide injector in place; returns the *previous* one.

    The save/restore primitive behind scoped activation: a campaign arms its
    configured plan for the run and reinstalls whatever was active before.
    """
    global _ACTIVE_INJECTOR, _ENV_CHECKED
    with _ACTIVE_LOCK:
        _ENV_CHECKED = True  # explicit installs beat the ambient env var
        previous = _ACTIVE_INJECTOR
        _ACTIVE_INJECTOR = injector
        return previous


def active_injector() -> Optional[FaultInjector]:
    """The process-wide injector, lazily arming ``AUTOQ_REPRO_FAULTS``."""
    global _ACTIVE_INJECTOR, _ENV_CHECKED
    if _ENV_CHECKED:
        # lock-free fast path: this sits on every store read/write, and a
        # plain attribute read is atomic under the GIL; the flag only ever
        # flips False -> True, so the worst case is one redundant lock trip
        return _ACTIVE_INJECTOR
    with _ACTIVE_LOCK:
        if not _ENV_CHECKED:
            plan = plan_from_env()
            if plan is not None:
                _ACTIVE_INJECTOR = FaultInjector(plan)
            _ENV_CHECKED = True
        return _ACTIVE_INJECTOR


def inject(site: str) -> Optional[FaultSpec]:
    """Production hook: apply the active plan's fault for ``site``, if any.

    A no-op (fast dictionary miss) without an installed plan.  Returns the
    spec when the caller has work left to do (``corrupt-payload``) or the
    fault already completed in-line (``delay``); raises or kills the process
    for the other kinds.
    """
    injector = active_injector()
    if injector is None:
        return None
    return injector.fire(site)
