"""Shared bounded-retry policy (see ``docs/robustness.md``).

One :class:`RetryPolicy` shape serves every layer: `AutomatonStore` disk
I/O, `ServiceClient` HTTP calls, and campaign cell execution.  Retries are
bounded, backoff is exponential with deterministic seeded jitter (chaos
tests must replay identically), and only the exception classes a caller
explicitly allowlists are retried — everything else propagates on the
first attempt.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Tuple, Type

__all__ = ["RetryPolicy", "DEFAULT_STORE_RETRY", "DEFAULT_CLIENT_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts + exponential backoff + per-exception-class allowlist."""

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.25
    retryable: Tuple[Type[BaseException], ...] = (OSError,)
    seed: int = 0
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"retry attempts must be >= 1, got {self.attempts!r}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"retry multiplier must be >= 1, got {self.multiplier!r}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"retry jitter must be within [0, 1], got {self.jitter!r}")

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        delay = min(self.max_delay, self.base_delay * (self.multiplier ** (attempt - 1)))
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, delay)

    def call(self, fn: Callable, *args, on_retry: Callable = None, **kwargs):
        """``fn(*args, **kwargs)`` with up to ``attempts`` tries.

        ``on_retry(attempt, error)`` (when given) observes each failed
        attempt that will be retried — callers use it to count retries.
        """
        rng = None  # built only on the first retry: call() wraps hot I/O
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn(*args, **kwargs)
            except self.retryable as error:
                if attempt >= self.attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                if rng is None:
                    rng = random.Random(self.seed)
                delay = self.delay_for(attempt, rng)
                if delay:
                    self.sleep(delay)


#: store disk I/O: cheap local retries, tiny backoff
DEFAULT_STORE_RETRY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.25)

#: HTTP client: fewer, slower retries; the allowlist is set by the client
#: (ServiceUnavailable only) so 4xx application errors never loop
DEFAULT_CLIENT_RETRY = RetryPolicy(attempts=3, base_delay=0.2, max_delay=5.0)
