"""Deterministic fault injection and the shared retry policy.

See ``docs/robustness.md`` for the fault-site catalogue, plan format,
retry/backoff defaults, and the quarantine/degradation rules this package
proves out.
"""

from .plan import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_injector,
    corrupt_text,
    inject,
    install_fault_plan,
    install_injector,
    plan_from_env,
)
from .retry import DEFAULT_CLIENT_RETRY, DEFAULT_STORE_RETRY, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryPolicy",
    "DEFAULT_CLIENT_RETRY",
    "DEFAULT_STORE_RETRY",
    "active_injector",
    "corrupt_text",
    "inject",
    "install_fault_plan",
    "install_injector",
    "plan_from_env",
]
