"""Distributed campaign fabric: many workers, one campaign.

The paper's Table 2/3 sweeps are embarrassingly parallel, and the pieces
built by earlier PRs — the resumable manifest with pid/host/heartbeat leases,
the content-addressed automaton store — were designed as coordination
substrate.  This package turns them into an actual multi-process fabric:

* :mod:`repro.dist.queue` — a lease-based job queue layered on the campaign
  manifest directory.  Atomic claims with fencing tokens, heartbeat renewal,
  idempotent first-writer-wins completion, and TTL-based re-queue of cells
  owned by dead workers.

Workers attach with ``campaign --join <id>`` (see
:meth:`repro.campaign.scheduler.MatrixScheduler.join`); the coordinator's
``summary.json`` roll-up merges whatever the fabric produced.  The store side
of the fabric — every joined host sharing one daemon's verified
gate-application prefixes — lives in :mod:`repro.ta.store_backend`.
"""

from .queue import (
    CLAIM_DIR,
    LEASE_TTL_ENV,
    QUEUE_SUFFIX,
    RESULT_DIR,
    JobQueue,
    QueueLease,
    queue_dir_for,
    result_fingerprint,
)

__all__ = [
    "CLAIM_DIR",
    "LEASE_TTL_ENV",
    "QUEUE_SUFFIX",
    "RESULT_DIR",
    "JobQueue",
    "QueueLease",
    "queue_dir_for",
    "result_fingerprint",
]
